//! A live terminal dashboard over the host profiler and the `watch`
//! telemetry stream: windowed commit/restart/event rates as scrolling
//! sparklines, the profiler's phase shares, and the sharded engine's
//! barrier stats, redrawn in place as the simulation advances.
//!
//! ```text
//! cargo run --release --example live_dashboard
//! cargo run --release --example live_dashboard -- --connect 127.0.0.1:7070
//! ```
//!
//! With no arguments the dashboard drives an in-process sharded engine
//! (Exp-1, 16 files, λ = 1.1, GOW) and reads its profile directly.
//! With `--connect HOST:PORT` it attaches to a running
//! `bds-serve --listen` session instead, configures one if the session
//! is empty, issues a `watch` command, and renders the NDJSON deltas as
//! they stream in — the same numbers, produced server-side.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::time::SimTime;
use batchsched::des::Duration;
use batchsched::engine::engine::Engine;
use batchsched::obs::Profiler;
use batchsched::telemetry::{parse, sparkline, JsonValue};
use bds_sched::SchedulerKind;
use std::io::{BufRead, BufReader, IsTerminal, Write};

/// Sparkline history width (points kept per rate).
const WIDTH: usize = 60;

/// One rendered tick of telemetry, source-agnostic: the in-process
/// engine and the `watch` stream both reduce to this.
#[derive(Default)]
struct Frame {
    t_ms: u64,
    horizon_ms: u64,
    completed: u64,
    in_flight: u64,
    commits_per_s: f64,
    restarts_per_s: f64,
    events_per_s: f64,
    /// (phase label, share of attributed time).
    phases: Vec<(String, f64)>,
    shards: u64,
    windows: u64,
    imbalance: Option<f64>,
    min_attribution: Option<f64>,
}

/// Scrolling rate histories plus in-place terminal redraw.
struct Dashboard {
    scheduler: String,
    commits: Vec<f64>,
    restarts: Vec<f64>,
    events: Vec<f64>,
    in_flight: Vec<f64>,
    drawn_lines: usize,
    tty: bool,
}

impl Dashboard {
    fn new(scheduler: &str) -> Dashboard {
        Dashboard {
            scheduler: scheduler.to_string(),
            commits: Vec::new(),
            restarts: Vec::new(),
            events: Vec::new(),
            in_flight: Vec::new(),
            drawn_lines: 0,
            tty: std::io::stdout().is_terminal(),
        }
    }

    fn push(&mut self, f: &Frame) {
        for (hist, v) in [
            (&mut self.commits, f.commits_per_s),
            (&mut self.restarts, f.restarts_per_s),
            (&mut self.events, f.events_per_s),
            (&mut self.in_flight, f.in_flight as f64),
        ] {
            hist.push(v);
            if hist.len() > WIDTH {
                hist.remove(0);
            }
        }
        self.render(f);
    }

    fn render(&mut self, f: &Frame) {
        let mut out = String::new();
        out.push_str(&format!(
            "live dashboard — {}  t = {:.0}s / {:.0}s  committed {}\n",
            self.scheduler,
            f.t_ms as f64 / 1e3,
            f.horizon_ms as f64 / 1e3,
            f.completed
        ));
        for (label, hist) in [
            ("commits/s", &self.commits),
            ("restarts/s", &self.restarts),
            ("events/s", &self.events),
            ("in flight", &self.in_flight),
        ] {
            let last = hist.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "  {label:<10} {:<WIDTH$} {last:>9.2}\n",
                sparkline(hist)
            ));
        }
        if !f.phases.is_empty() {
            let shares = f
                .phases
                .iter()
                .filter(|(_, s)| *s >= 0.005)
                .map(|(p, s)| format!("{p} {:.0}%", s * 100.0))
                .collect::<Vec<_>>()
                .join("  ");
            out.push_str(&format!("  phases:    {shares}\n"));
        }
        if f.shards > 0 {
            out.push_str(&format!(
                "  shards: {}  windows {}  imbalance {}  attribution {}\n",
                f.shards,
                f.windows,
                match f.imbalance {
                    Some(r) => format!("{r:.2}x"),
                    None => "n/a".into(),
                },
                match f.min_attribution {
                    Some(a) => format!("{:.1}%", a * 100.0),
                    None => "n/a".into(),
                }
            ));
        }
        if self.tty && self.drawn_lines > 0 {
            // Redraw over the previous frame.
            print!("\x1b[{}A\x1b[J", self.drawn_lines);
        }
        print!("{out}");
        std::io::stdout().flush().expect("flush dashboard");
        self.drawn_lines = out.lines().count();
    }
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_num).unwrap_or(0.0)
}

/// One request/reply round-trip over the NDJSON session socket.
fn ask(
    w: &mut std::net::TcpStream,
    reader: &mut BufReader<std::net::TcpStream>,
    req: &str,
) -> JsonValue {
    writeln!(w, "{req}").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    parse(&line).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

/// Attach to a `bds-serve --listen` session: configure it if empty,
/// issue one full-horizon `watch`, and render the streamed deltas.
fn run_connected(addr: &str) {
    let stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("connect {addr}: {e} (start `bds-serve --listen {addr}`)"));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut status = ask(&mut writer, &mut reader, r#"{"cmd":"status"}"#);
    if status.get("ok") != Some(&JsonValue::Bool(true)) {
        println!("no session on {addr}; configuring the demo point");
        ask(
            &mut writer,
            &mut reader,
            r#"{"cmd":"configure","scheduler":"gow","lambda":1.1,"horizon_s":600,"seed":7,"shards":2}"#,
        );
        status = ask(&mut writer, &mut reader, r#"{"cmd":"status"}"#);
    }
    let scheduler = status
        .get("scheduler")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_string();
    let horizon_ms = num(&status, "horizon_ms") as u64;
    let mut dash = Dashboard::new(&scheduler);
    writeln!(writer, r#"{{"cmd":"watch","interval_ms":10000}}"#).expect("send watch");
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("recv delta") == 0 {
            break;
        }
        let v = parse(&line).unwrap_or_else(|e| panic!("bad stream line {line:?}: {e}"));
        if v.get("watch") != Some(&JsonValue::Bool(true)) {
            // Final reply: the watch is complete.
            println!("watch finished: {} delta(s)", num(&v, "deltas") as u64);
            break;
        }
        let rates = v.get("rates").cloned().unwrap_or(JsonValue::Null);
        let obs = v.get("obs").cloned().unwrap_or(JsonValue::Null);
        let phases = match v.get("phases") {
            Some(JsonValue::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, s)| s.as_num().map(|n| (k.clone(), n)))
                .collect(),
            _ => Vec::new(),
        };
        dash.push(&Frame {
            t_ms: num(&v, "now_ms") as u64,
            horizon_ms,
            completed: num(&v, "completed") as u64,
            in_flight: num(&v, "in_flight") as u64,
            commits_per_s: num(&rates, "commits_per_s"),
            restarts_per_s: num(&rates, "restarts_per_s"),
            events_per_s: num(&rates, "events_per_s"),
            phases,
            shards: num(&obs, "shards") as u64,
            windows: num(&obs, "windows") as u64,
            imbalance: obs.get("imbalance").and_then(JsonValue::as_num),
            min_attribution: obs.get("min_attribution").and_then(JsonValue::as_num),
        });
    }
}

/// Drive a profiled sharded engine in-process and render its telemetry
/// at every sim-time chunk — no server required.
fn run_in_process() {
    let shards = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let mut cfg = SimConfig::new(SchedulerKind::Gow, WorkloadKind::Exp1 { num_files: 16 });
    cfg.lambda_tps = 1.1;
    cfg.horizon = Duration::from_secs(600);
    let horizon_ms = cfg.horizon.as_millis();
    let interval_ms = 10_000u64;
    let mut engine = Engine::new(&cfg);
    engine.set_profiler(Profiler::on());
    let mut dash = Dashboard::new(engine.label());
    let mut prev = (0u64, 0u64, 0u64, 0u64); // (t_ms, completed, restarts, events)
    let mut cursor = 0u64;
    while cursor < horizon_ms {
        cursor = (cursor + interval_ms).min(horizon_ms);
        engine.run_until_sharded(SimTime::from_millis(cursor), shards);
        let r = engine.report();
        let dt_s = (cursor - prev.0) as f64 / 1e3;
        let prof = engine.profile().expect("profiler is on");
        dash.push(&Frame {
            t_ms: cursor,
            horizon_ms,
            completed: r.completed,
            in_flight: engine.in_flight(),
            commits_per_s: (r.completed - prev.1) as f64 / dt_s,
            restarts_per_s: (r.restarts - prev.2) as f64 / dt_s,
            events_per_s: (r.events - prev.3) as f64 / dt_s,
            phases: prof
                .phase_shares()
                .iter()
                .map(|(p, s)| (p.to_string(), *s))
                .collect(),
            shards: prof.shards.len() as u64,
            windows: prof.windows,
            imbalance: prof.imbalance(),
            min_attribution: prof.min_attribution(),
        });
        prev = (cursor, r.completed, r.restarts, r.events);
        // Pace the demo so the redraw is visible as a live stream.
        if std::io::stdout().is_terminal() {
            std::thread::sleep(std::time::Duration::from_millis(120));
        }
    }
    let r = engine.report();
    println!(
        "done: {} arrived, {} committed, {} restarts over {:.0}s simulated",
        r.arrived, r.completed, r.restarts, r.horizon_secs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--connect") => {
            let addr = args.get(1).unwrap_or_else(|| {
                eprintln!("--connect requires HOST:PORT");
                std::process::exit(2);
            });
            run_connected(addr);
        }
        Some(other) => {
            eprintln!("unknown argument {other:?} (usage: live_dashboard [--connect HOST:PORT])");
            std::process::exit(2);
        }
        None => run_in_process(),
    }
}

//! Extending the library: plug a *custom scheduler* into the simulator.
//!
//! This example implements plain strict two-phase locking with
//! timestamp-based deadlock avoidance (wait-die flavored on declared
//! demand): a request blocked by a holder is allowed to wait only if
//! the requester started earlier, otherwise it is delayed. It is not
//! one of the paper's schedulers — it demonstrates the `Scheduler`
//! trait as an extension point and compares the result against LOW.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::lock_table::LockTable;
use batchsched::sched::{Outcome, ReqDecision, Scheduler, SchedulerKind, StartDecision};
use batchsched::sim::Simulator;
use batchsched::workload::{BatchSpec, FileId};
use batchsched::wtpg::TxnId;
use std::collections::BTreeMap;

/// Strict 2PL with wait-die ordering on transaction ids (arrival order).
#[derive(Debug, Default)]
struct WaitDie2pl {
    table: LockTable,
    specs: BTreeMap<TxnId, BatchSpec>,
    live: std::collections::BTreeSet<TxnId>,
}

impl Scheduler for WaitDie2pl {
    fn name(&self) -> &'static str {
        "WD2PL"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        self.specs.insert(id, spec);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.live.insert(id);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.specs[&id].steps[step];
        if self.table.can_grant(id, s.file, s.mode) {
            self.table.grant(id, s.file, s.mode);
            return Outcome::free(ReqDecision::Granted);
        }
        // Wait-die: older transactions (smaller id = earlier arrival)
        // may wait; younger ones are pushed back (delayed, not aborted —
        // batches are too expensive to roll back).
        let oldest_holder = self
            .table
            .conflicting_holders(id, s.file, s.mode)
            .into_iter()
            .min()
            .expect("incompatible grant implies a conflicting holder");
        if id < oldest_holder {
            Outcome::free(ReqDecision::Blocked)
        } else {
            Outcome::free(ReqDecision::Delayed)
        }
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        self.live.remove(&id);
        self.specs.remove(&id);
        self.table.release_all(id)
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        self.live.remove(&id);
        self.table.release_all(id)
    }

    fn live_count(&self) -> usize {
        self.live.len()
    }
}

fn main() {
    let workload = WorkloadKind::Exp1 { num_files: 16 };
    let horizon = Duration::from_millis(1_000_000);
    let lambda = 0.7;

    // Run the custom scheduler by driving the Simulator manually with a
    // scheduler override: build the config for LOW (any kind works — we
    // replace the scheduler object through the public test hook below).
    //
    // The library's `SchedulerKind` covers the paper's set; custom
    // schedulers run through `Simulator::with_scheduler`.
    let mut cfg = SimConfig::new(SchedulerKind::Low(2), workload.clone());
    cfg.lambda_tps = lambda;
    cfg.horizon = horizon;

    let low = Simulator::run(&cfg);

    let mut master = batchsched::des::rng::Xoshiro256::seed_from_u64(cfg.seed);
    let arrival_rng = master.fork();
    let gen_rng = master.fork();
    let genr = workload.build(gen_rng);
    let mut sim = Simulator::with_generator(&cfg, genr, arrival_rng);
    sim.replace_scheduler(Box::new(WaitDie2pl::default()));
    sim.run_to_horizon();
    let wd = sim.report();

    println!("Custom scheduler vs LOW (Exp.1, λ = {lambda}, DD = 1)");
    println!();
    println!(
        "{:>7} {:>10} {:>10} {:>10}",
        "sched", "completed", "meanRT(s)", "TPS"
    );
    for r in [&wd, &low] {
        println!(
            "{:>7} {:>10} {:>10.1} {:>10.2}",
            if r.scheduler == "LOW" { "LOW" } else { "WD2PL" },
            r.completed,
            r.mean_rt_secs(),
            r.throughput_tps()
        );
    }
    println!();
    println!("Wait-die 2PL still builds blocking chains, so LOW's");
    println!("contention-aware grants keep a lower response time.");
}

//! Shards-vs-wallclock sweep: run the scan-heavy 100-DPN point at
//! 1/2/4/8 shards and print an ASCII speedup table, so the scaling
//! curve is reproducible without the full bench harness.
//!
//! ```text
//! cargo run --release --example shard_speedup [horizon_secs]
//! ```
//!
//! Every row's report is asserted byte-identical to the serial run —
//! sharding changes wall clock, never results. Expect real speedup only
//! with ≥ 2 cores free; the table prints the machine's available
//! parallelism so a flat curve on a small box explains itself.

use batchsched::des::Duration;
use batchsched::experiments::scan_heavy_point;
use batchsched::sim::Simulator;
use std::time::Instant;

fn main() {
    let horizon_secs: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("horizon_secs must be an integer"))
        .unwrap_or(100_000);
    let cfg = scan_heavy_point(Duration::from_secs(horizon_secs));
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    println!(
        "shard speedup — {} DPNs, {} files, λ = {} TPS, horizon {horizon_secs}s, {cores} core(s)",
        cfg.costs.num_nodes,
        cfg.workload.num_files(),
        cfg.lambda_tps
    );
    println!();

    let t0 = Instant::now();
    let serial = Simulator::run(&cfg);
    let serial_secs = t0.elapsed().as_secs_f64();
    println!(
        "serial: {} arrived, {} committed, {} events in {serial_secs:.2}s",
        serial.arrived, serial.completed, serial.events
    );
    println!();
    println!(
        "{:>6} {:>9} {:>9} {:>12}",
        "shards", "wall(s)", "speedup", "M events/s"
    );
    for shards in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let report = Simulator::run_sharded(&cfg, shards);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(report, serial, "sharded run diverged at shards={shards}");
        println!(
            "{shards:>6} {secs:>9.2} {:>8.2}x {:>12.2}",
            serial_secs / secs,
            report.events as f64 / secs / 1e6
        );
    }
}

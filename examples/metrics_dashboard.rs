//! A terminal dashboard for the metrics sampler: one high-contention
//! Exp-1 run per paper scheduler, with the sampled time series rendered
//! as ASCII sparklines — the simulated run's utilization, backlog and
//! commit-rate shapes at a glance (the same columns `repro --metrics`
//! writes as CSV).
//!
//! ```text
//! cargo run --release --example metrics_dashboard
//! ```

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sim::Simulator;
use batchsched::telemetry::sparkline;
use bds_sched::SchedulerKind;

/// Downsample a column to at most `width` points (mean per chunk) so the
/// sparkline fits one terminal line.
fn shrink(col: &[f64], width: usize) -> Vec<f64> {
    if col.len() <= width {
        return col.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * col.len() / width;
            let hi = ((i + 1) * col.len() / width).max(lo + 1);
            col[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

fn main() {
    let lambda = 1.1;
    let horizon_secs = 600;
    let dt = Duration::from_secs(5);
    println!(
        "Metrics dashboard: Exp-1 (16 files), DD = 1, lambda = {lambda} TPS, \
         {horizon_secs} s horizon, dt = 5 s"
    );
    for kind in SchedulerKind::PAPER_SET {
        let mut cfg = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        cfg.lambda_tps = lambda;
        cfg.horizon = Duration::from_secs(horizon_secs);
        let (report, series) = Simulator::run_with_metrics(&cfg, dt);
        println!();
        println!(
            "== {:<5} committed {:>4}  mean RT {:>6.1} s  p99 {:>6.1} s",
            report.scheduler,
            report.completed,
            report.mean_rt_secs(),
            report.rt_p99_secs.unwrap_or(0.0),
        );
        for (name, label) in [
            ("dpn_util", "DPN util"),
            ("cn_util", "CN util"),
            ("mpl_live", "live txns"),
            ("start_queue", "start queue"),
            ("locks_held", "locks held"),
            ("commits_ps", "commits/s"),
        ] {
            let col = series.column(name).expect("known column");
            let max = col.iter().copied().fold(0.0_f64, f64::max);
            println!(
                "  {label:<12} {} max {max:.2}",
                sparkline(&shrink(&col, 72))
            );
        }
    }
}

//! Extension study: wait-depth limited locking (WDL) against the
//! paper's schedulers.
//!
//! WDL shares ASL/GOW/LOW's freedom from blocking chains, but enforces
//! it with *rollbacks* — exactly the cost the paper's requirement (3)
//! ("making no rollback of transactions") warns about for batch
//! transactions, whose I/O is expensive to redo. This example shows
//! where WDL lands between the blocking-chain regime (C2PL) and the
//! no-rollback regime (LOW).
//!
//! Run with: `cargo run --release --example wait_depth`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn main() {
    let horizon = Duration::from_millis(1_000_000);

    println!("Wait-depth limited locking vs the paper's schedulers");
    println!("(Exp.1: 16 files, DD = 1)");
    println!();
    println!(
        "{:>6} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "λ(TPS)", "sched", "meanRT(s)", "TPS", "restarts", "p90 RT(s)"
    );
    for lambda in [0.4, 0.6, 0.8] {
        for kind in [
            SchedulerKind::Wdl,
            SchedulerKind::Low(2),
            SchedulerKind::C2pl,
            SchedulerKind::Opt,
        ] {
            let mut cfg = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            cfg.lambda_tps = lambda;
            cfg.horizon = horizon;
            let r = Simulator::run(&cfg);
            println!(
                "{:>6.1} {:>7} {:>10.1} {:>10.2} {:>9} {:>10.1}",
                lambda,
                r.scheduler,
                r.mean_rt_secs(),
                r.throughput_tps(),
                r.restarts,
                r.rt_p90_secs.unwrap_or(f64::NAN),
            );
        }
        println!();
    }
    println!("WDL keeps chains short like LOW, but every restart redoes");
    println!("bulk I/O — with batch transactions that wasted work grows");
    println!("with contention, so the no-rollback WTPG schedulers win.");
}

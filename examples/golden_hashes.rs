//! Print the FNV-1a hash of every quick-mode artifact rendering.
//!
//! Used to (re)generate the golden hashes pinned by
//! `tests/parallel_determinism.rs`: the scheduler hot-path optimizations
//! must reproduce the seed engine's outputs byte-for-byte, so the hashes
//! printed here are checked in and asserted against on every run.
//!
//! ```text
//! cargo run --release --example golden_hashes
//! ```

use batchsched::experiments::{run_artifact_with, ExpOptions, ARTIFACT_IDS};
use batchsched::parallel::ExecCtx;

/// FNV-1a 64-bit, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let opts = ExpOptions::quick();
    let ctx = ExecCtx::new(ExpOptions::default().jobs.max(1));
    for id in ARTIFACT_IDS {
        let artifact = run_artifact_with(id, &opts, &ctx);
        let rendered = artifact.table.render();
        println!("(\"{id}\", 0x{:016x}),", fnv1a(rendered.as_bytes()));
    }
}

//! Quickstart: simulate one batch workload under two schedulers and
//! compare their response times.
//!
//! Run with: `cargo run --release --example quickstart`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn main() {
    // Experiment 1 of the paper: batch transactions following
    // Pattern 1 (r(F1:1) → r(F2:5) → w(F1:0.2) → w(F2:1)) over 16 files
    // on an 8-node shared-nothing machine.
    let workload = WorkloadKind::Exp1 { num_files: 16 };

    println!("Batch scheduling quickstart — Pattern 1, λ = 0.8 TPS, DD = 2");
    println!();
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "sched", "completed", "meanRT(s)", "TPS", "CN util", "DPN util"
    );

    for kind in [
        SchedulerKind::Low(2),
        SchedulerKind::Gow,
        SchedulerKind::Asl,
        SchedulerKind::C2pl,
    ] {
        let mut cfg = SimConfig::new(kind, workload.clone());
        cfg.lambda_tps = 0.8;
        cfg.dd = 2;
        cfg.horizon = Duration::from_millis(2_000_000); // the paper's 2,000 s

        let report = Simulator::run(&cfg);
        println!(
            "{:>6} {:>10} {:>10.1} {:>10.2} {:>8.0}% {:>8.0}%",
            report.scheduler,
            report.completed,
            report.mean_rt_secs(),
            report.throughput_tps(),
            report.cn_utilization * 100.0,
            report.dpn_utilization * 100.0,
        );
    }

    println!();
    println!("LOW and GOW avoid chains of blocking, so their response");
    println!("times stay close to ASL's while starting more transactions;");
    println!("C2PL blocks transaction after transaction and falls behind.");
}

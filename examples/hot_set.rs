//! Experiment 2 in miniature: updating a *hot set* of master files
//! (§5.2 of the paper).
//!
//! Every transaction reads one of 8 read-only files then updates two of
//! 8 hot files (Pattern 2: r(B:5) → w(F1:1) → w(F2:1)). ASL must lock
//! both hot files before starting, so it starts few transactions; LOW
//! starts many while still avoiding chains of blocking — the paper's
//! Table 4 ranks LOW best, then C2PL, GOW, ASL.
//!
//! Run with: `cargo run --release --example hot_set`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn main() {
    let horizon = Duration::from_millis(2_000_000);

    println!("Hot-set update workload (Exp.2), λ = 1.2 TPS");
    println!();
    println!(
        "{:>6} {:>4} {:>10} {:>10} {:>9} {:>8}",
        "sched", "DD", "meanRT(s)", "TPS", "started", "live avg"
    );
    for dd in [1u32, 2, 4] {
        for kind in [
            SchedulerKind::Low(2),
            SchedulerKind::Gow,
            SchedulerKind::C2pl,
            SchedulerKind::Asl,
            SchedulerKind::Opt,
            SchedulerKind::Nodc,
        ] {
            let mut cfg = SimConfig::new(kind, WorkloadKind::Exp2);
            cfg.lambda_tps = 1.2;
            cfg.dd = dd;
            cfg.horizon = horizon;
            let r = Simulator::run(&cfg);
            println!(
                "{:>6} {:>4} {:>10.1} {:>10.2} {:>9} {:>8.1}",
                r.scheduler,
                dd,
                r.mean_rt_secs(),
                r.throughput_tps(),
                r.started,
                r.mean_live,
            );
        }
        println!();
    }
    println!("LOW starts many transactions on the hot files without");
    println!("building blocking chains; ASL's atomic lock set on two hot");
    println!("files admits few transactions and performs worst (Table 4).");
}

//! Experiment 1 in miniature: how schedulers behave when batch
//! transactions block each other frequently (§5.1 of the paper).
//!
//! Sweeps the arrival rate for all six schedulers at DD = 1 and prints
//! the response-time curves of Fig. 8, then shows the effect of
//! parallelism (DD = 1 → 8) at a heavy load as in Table 3.
//!
//! Run with: `cargo run --release --example batch_blocking`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn main() {
    let horizon = Duration::from_millis(1_000_000);
    let workload = WorkloadKind::Exp1 { num_files: 16 };

    // --- Fig. 8 shape: RT vs arrival rate at DD = 1 ------------------
    println!("Response time (s) vs arrival rate (Exp.1, DD=1, 16 files)");
    print!("{:>8}", "λ(TPS)");
    for kind in SchedulerKind::PAPER_SET {
        print!("{:>9}", kind.label());
    }
    println!();
    for lambda in [0.4, 0.6, 0.8, 1.0, 1.2] {
        print!("{lambda:>8.1}");
        for kind in SchedulerKind::PAPER_SET {
            let mut cfg = SimConfig::new(kind, workload.clone());
            cfg.lambda_tps = lambda;
            cfg.horizon = horizon;
            let r = Simulator::run(&cfg);
            print!("{:>9.1}", r.mean_rt_secs());
        }
        println!();
    }

    // --- Table 3 shape: RT vs DD at λ = 1.2 --------------------------
    println!();
    println!("Response time (s) vs declustering at λ = 1.2 TPS (heavy load)");
    print!("{:>8}", "DD");
    for kind in SchedulerKind::PAPER_SET {
        print!("{:>9}", kind.label());
    }
    println!();
    for dd in [1u32, 2, 4, 8] {
        print!("{dd:>8}");
        for kind in SchedulerKind::PAPER_SET {
            let mut cfg = SimConfig::new(kind, workload.clone());
            cfg.lambda_tps = 1.2;
            cfg.dd = dd;
            cfg.horizon = horizon;
            let r = Simulator::run(&cfg);
            print!("{:>9.1}", r.mean_rt_secs());
        }
        println!();
    }
    println!();
    println!("ASL/GOW/LOW gain nearly linear speedup from declustering even");
    println!("at heavy load; C2PL's chains of blocking and OPT's restarts");
    println!("waste the added parallelism (observations #3/#4, §5.1.3).");
}

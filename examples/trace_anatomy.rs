//! Where does the time go? One high-contention Exp-1 run per paper
//! scheduler, traced, with the response time decomposed into start-queue
//! wait, lock wait, step execution and time lost to aborted attempts —
//! the anatomy behind Fig. 8's response-time ordering.
//!
//! ```text
//! cargo run --release --example trace_anatomy
//! ```

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sim::Simulator;
use batchsched::trace::Analysis;
use bds_sched::SchedulerKind;

fn main() {
    let lambda = 1.1;
    println!("Trace anatomy: Exp-1 (16 files), DD = 1, lambda = {lambda} TPS, 400 s horizon");
    println!();
    let tail = "hottest file (wait)";
    println!(
        "{:<6} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}  {:<20} {tail}",
        "sched",
        "commit",
        "abort",
        "queue_s",
        "wait_s",
        "exec_s",
        "lost_s",
        "resp_s",
        "top denial reason",
    );
    for kind in SchedulerKind::PAPER_SET {
        let mut cfg = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        cfg.lambda_tps = lambda;
        cfg.horizon = Duration::from_secs(400);
        let (report, data) = Simulator::run_traced(&cfg, 1 << 20);
        let a = Analysis::from_data(&data);
        let b = a.breakdown();
        let top_reason = a
            .deny_reasons
            .first()
            .map(|&(r, n)| format!("{r} ({n}x)"))
            .unwrap_or_else(|| "-".into());
        let hottest = a
            .files
            .iter()
            .max_by_key(|f| f.wait)
            .filter(|f| !f.wait.is_zero())
            .map(|f| format!("F{} ({:.1} s)", f.file.0, f.wait.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<6} {:>7} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}  {:<20} {}",
            report.scheduler,
            b.committed,
            b.aborted_attempts,
            b.mean_queue_secs,
            b.mean_wait_secs,
            b.mean_exec_secs,
            b.mean_lost_secs,
            b.mean_response_secs,
            top_reason,
            hottest
        );
        if kind == SchedulerKind::C2pl {
            let cp = a.wait_critical_path();
            let chain: Vec<String> = cp.path.iter().map(|t| format!("T{}", t.0)).collect();
            println!(
                "       C2PL wait-critical path ({:.1} s over {} txns): {}",
                cp.total_wait.as_secs_f64(),
                cp.path.len(),
                chain.join(" -> ")
            );
        }
    }
    println!();
    println!("Columns are means over committed transactions; queue = arrival to first");
    println!("admission, wait = lock request to grant, exec = cohort dispatch to step");
    println!("completion, lost = work thrown away by aborted attempts (OPT restarts).");
}

//! Throughput under failure: how each paper scheduler degrades when
//! data-processing nodes crash and recover.
//!
//! Part 1 runs one fixed fault plan (two scripted crashes plus a
//! Poisson crash/recovery process) against every paper scheduler on the
//! Exp. 1 workload and prints the availability /
//! throughput-under-failure table — the same table `repro --faults`
//! produces.
//!
//! Part 2 sweeps the mean time between failures while holding the mean
//! time to repair fixed, showing how committed throughput and the kill
//! rate respond as outages become more frequent. Everything is
//! deterministic in (seed, plan): rerunning this example reproduces the
//! tables byte for byte.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::fault::FaultPlan;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

const HORIZON_SECS: u64 = 400;

fn point(kind: SchedulerKind, plan: FaultPlan) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = 0.9;
    c.horizon = Duration::from_secs(HORIZON_SECS);
    c.with_faults(plan)
}

fn main() {
    let spec = "crash=1@60x20,crash=5@150x25,mtbf=150,mttr=12,retry=1000:8000:4,seed=7";
    let plan = FaultPlan::parse(spec).expect("plan parses");
    println!("== Availability / throughput under failure ==");
    println!("plan: {spec}");
    println!(
        "{:<10} {:>9} {:>7} {:>12} {:>10} {:>12} {:>9}",
        "scheduler", "committed", "killed", "fault-aborts", "tput(tps)", "availability", "down(s)"
    );
    for kind in SchedulerKind::PAPER_SET {
        let r = Simulator::run(&point(kind, plan.clone()));
        println!(
            "{:<10} {:>9} {:>7} {:>12} {:>10.3} {:>12.4} {:>9.1}",
            r.scheduler,
            r.completed,
            r.killed,
            r.aborts_fault,
            r.completed as f64 / r.horizon_secs,
            r.availability,
            r.downtime_secs
        );
    }

    println!();
    println!("== Availability vs MTBF (MTTR fixed at 12 s) ==");
    println!(
        "{:<10} {:>6} {:>12} {:>9} {:>7} {:>10}",
        "scheduler", "mtbf", "availability", "committed", "killed", "tput(tps)"
    );
    for kind in [SchedulerKind::Nodc, SchedulerKind::Gow, SchedulerKind::Opt] {
        for mtbf_secs in [60u64, 120, 240, 480] {
            let sweep_spec = format!("mtbf={mtbf_secs},mttr=12,retry=1000:8000:4,seed=7");
            let plan = FaultPlan::parse(&sweep_spec).expect("plan parses");
            let r = Simulator::run(&point(kind, plan));
            println!(
                "{:<10} {:>6} {:>12.4} {:>9} {:>7} {:>10.3}",
                r.scheduler,
                mtbf_secs,
                r.availability,
                r.completed,
                r.killed,
                r.completed as f64 / r.horizon_secs
            );
        }
    }
    println!();
    println!(
        "Availability is a property of the crash timeline alone, so it is\n\
         identical across schedulers for the same plan; what differs is how\n\
         much committed work each scheduler salvages from the up-time."
    );
}

//! Experiment 3 in miniature: how sensitive are GOW and LOW to wrong
//! I/O-demand declarations (§5.3 of the paper)?
//!
//! Each step's declared demand is perturbed to `C = C0 · (1 + x)` with
//! `x ~ N(0, σ²)`. The WTPG schedulers decide lock grants from these
//! (wrong) weights; the paper's Table 5 reports how little their
//! throughput degrades even at σ = 10.
//!
//! Run with: `cargo run --release --example sensitivity`

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn main() {
    let horizon = Duration::from_millis(1_000_000);
    let lambda = 0.7; // near the RT=70s operating point at DD=1

    println!("Declaration-error sensitivity (Exp.3), λ = {lambda} TPS, DD = 1");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "σ", "GOW RT(s)", "LOW RT(s)", "C2PL RT(s)"
    );
    for sigma in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let workload = if sigma == 0.0 {
            WorkloadKind::Exp1 { num_files: 16 }
        } else {
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma,
            }
        };
        let mut row = format!("{sigma:>8.1}");
        for kind in [
            SchedulerKind::Gow,
            SchedulerKind::Low(2),
            SchedulerKind::C2pl,
        ] {
            let mut cfg = SimConfig::new(kind, workload.clone());
            cfg.lambda_tps = lambda;
            cfg.horizon = horizon;
            let r = Simulator::run(&cfg);
            row.push_str(&format!(" {:>12.1}", r.mean_rt_secs()));
        }
        println!("{row}");
    }
    println!();
    println!("C2PL ignores declarations, so its row is flat and defines the");
    println!("lower bound: GOW and LOW must stay better than C2PL even with");
    println!("σ = 10 declarations (the paper's observation #4, §5.3).");
}

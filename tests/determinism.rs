//! Reproducibility: identical configurations produce bit-identical
//! reports; the RNG streams are isolated so unrelated knobs do not
//! perturb the arrival sequence.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn base(kind: SchedulerKind) -> SimConfig {
    let mut cfg = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    cfg.lambda_tps = 0.8;
    cfg.horizon = Duration::from_secs(600);
    cfg
}

#[test]
fn identical_configs_are_bit_identical() {
    for kind in SchedulerKind::PAPER_SET {
        let a = Simulator::run(&base(kind));
        let b = Simulator::run(&base(kind));
        assert_eq!(a, b, "{kind} is nondeterministic");
    }
}

#[test]
fn seeds_change_outcomes() {
    let a = Simulator::run(&base(SchedulerKind::Low(2)));
    let b = Simulator::run(&base(SchedulerKind::Low(2)).with_seed(999));
    assert_ne!(
        (a.completed, a.rt),
        (b.completed, b.rt),
        "different seeds should give different sample paths"
    );
}

#[test]
fn arrival_stream_is_common_across_schedulers() {
    // Common random numbers: with the same seed every scheduler faces
    // the same arrival count (arrivals are generated from a stream
    // independent of scheduling decisions).
    let counts: Vec<u64> = SchedulerKind::PAPER_SET
        .iter()
        .map(|&k| Simulator::run(&base(k)).arrived)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "arrival counts differ across schedulers: {counts:?}"
    );
}

#[test]
fn workload_knobs_do_not_perturb_arrivals() {
    // Changing the declustering degree must not change the arrival
    // sequence (stream isolation).
    let dd1 = Simulator::run(&base(SchedulerKind::Nodc).with_dd(1));
    let dd8 = Simulator::run(&base(SchedulerKind::Nodc).with_dd(8));
    assert_eq!(dd1.arrived, dd8.arrived);
}

#[test]
fn exp3_sigma_does_not_change_true_work() {
    // The estimation error perturbs declarations only; with NODC (which
    // ignores declarations entirely) results must match Exp1 exactly.
    let mut clean = base(SchedulerKind::Nodc);
    clean.workload = WorkloadKind::Exp1 { num_files: 16 };
    let mut noisy = base(SchedulerKind::Nodc);
    noisy.workload = WorkloadKind::Exp3 {
        num_files: 16,
        sigma: 5.0,
    };
    let a = Simulator::run(&clean);
    let b = Simulator::run(&noisy);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rt, b.rt, "NODC must be blind to declared demands");
}

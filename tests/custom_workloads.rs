//! The library beyond the paper: custom patterns, skewed popularity and
//! custom schedulers through the public extension points.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::rng::Xoshiro256;
use batchsched::des::Duration;
use batchsched::sched::{Outcome, ReqDecision, Scheduler, SchedulerKind, StartDecision};
use batchsched::sim::Simulator;
use batchsched::workload::gen::CustomPattern;
use batchsched::workload::pattern::{Pattern, StepTemplate};
use batchsched::workload::spec::Access;
use batchsched::workload::{BatchSpec, FileId, LockMode};
use batchsched::wtpg::TxnId;

/// A read-mostly analysis pattern: scan three files, update none.
fn scan_pattern() -> Pattern {
    Pattern::new(
        3,
        (0..3)
            .map(|slot| StepTemplate {
                slot,
                mode: LockMode::Shared,
                access: Access::Read,
                cost: 2.0,
            })
            .collect(),
    )
}

#[test]
fn read_only_workload_has_no_contention() {
    // S locks never conflict: every scheduler behaves like NODC.
    let workload = WorkloadKind::Custom {
        pattern: scan_pattern(),
        num_files: 16,
    };
    let mut reference = SimConfig::new(SchedulerKind::Nodc, workload.clone());
    reference.lambda_tps = 0.8;
    reference.horizon = Duration::from_secs(600);
    let nodc = Simulator::run(&reference);
    for kind in [
        SchedulerKind::Asl,
        SchedulerKind::C2pl,
        SchedulerKind::Low(2),
    ] {
        let mut cfg = reference.clone();
        cfg.scheduler = kind;
        let r = Simulator::run(&cfg);
        assert_eq!(
            r.completed, nodc.completed,
            "{kind} should match NODC on a read-only workload"
        );
        assert!((r.mean_rt_secs() - nodc.mean_rt_secs()).abs() < 2.0);
    }
}

#[test]
fn skewed_popularity_increases_contention() {
    // A Zipf-ish skew concentrates updates on two files: response time
    // under LOW must exceed the uniform case.
    let pattern = Pattern::pattern1();
    let uniform = {
        let mut cfg = SimConfig::new(
            SchedulerKind::Low(2),
            WorkloadKind::Custom {
                pattern: pattern.clone(),
                num_files: 16,
            },
        );
        cfg.lambda_tps = 0.6;
        cfg.horizon = Duration::from_secs(600);
        Simulator::run(&cfg)
    };
    let skewed = {
        let mut weights = vec![0.2f64; 16];
        weights[0] = 10.0;
        weights[1] = 10.0;
        let genr = CustomPattern::skewed(pattern, &weights, Xoshiro256::seed_from_u64(42));
        let mut cfg = SimConfig::new(
            SchedulerKind::Low(2),
            WorkloadKind::Exp1 { num_files: 16 }, // placeholder; generator overrides
        );
        cfg.lambda_tps = 0.6;
        cfg.horizon = Duration::from_secs(600);
        let mut sim =
            Simulator::with_generator(&cfg, Box::new(genr), Xoshiro256::seed_from_u64(cfg.seed));
        sim.run_to_horizon();
        sim.report()
    };
    assert!(
        skewed.mean_rt_secs() > uniform.mean_rt_secs(),
        "skewed RT {:.1} must exceed uniform RT {:.1}",
        skewed.mean_rt_secs(),
        uniform.mean_rt_secs()
    );
}

/// A minimal scheduler: delays every contended request until a wakeup
/// or the retry tick. It has no deadlock avoidance, so the test drives
/// it with single-lock transactions (deadlock-free by construction) to
/// check liveness through timer-driven retries.
#[derive(Debug, Default)]
struct LazyLocker {
    table: batchsched::sched::lock_table::LockTable,
    specs: std::collections::BTreeMap<TxnId, BatchSpec>,
    live: std::collections::BTreeSet<TxnId>,
}

impl Scheduler for LazyLocker {
    fn name(&self) -> &'static str {
        "LAZY"
    }
    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        self.specs.insert(id, spec);
    }
    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.live.insert(id);
        Outcome::free(StartDecision::Admit)
    }
    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.specs[&id].steps[step];
        if self.table.can_grant(id, s.file, s.mode) {
            self.table.grant(id, s.file, s.mode);
            Outcome::free(ReqDecision::Granted)
        } else {
            Outcome::free(ReqDecision::Delayed)
        }
    }
    fn step_complete(&mut self, _id: TxnId, _step: usize) {}
    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }
    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        self.live.remove(&id);
        self.specs.remove(&id);
        self.table.release_all(id)
    }
    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        self.live.remove(&id);
        self.table.release_all(id)
    }
    fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[test]
fn custom_scheduler_runs_through_public_api() {
    // One exclusive scan per transaction: contention without deadlock.
    let single_lock = Pattern::new(
        1,
        vec![StepTemplate {
            slot: 0,
            mode: LockMode::Exclusive,
            access: Access::Write,
            cost: 3.0,
        }],
    );
    let workload = WorkloadKind::Custom {
        pattern: single_lock,
        num_files: 16,
    };
    let mut cfg = SimConfig::new(SchedulerKind::Nodc, workload.clone());
    cfg.lambda_tps = 0.4;
    cfg.horizon = Duration::from_secs(600);
    let mut master = Xoshiro256::seed_from_u64(cfg.seed);
    let arrivals = master.fork();
    let genr = workload.build(master.fork());
    let mut sim = Simulator::with_generator(&cfg, genr, arrivals);
    sim.replace_scheduler(Box::new(LazyLocker::default()));
    sim.run_to_horizon();
    let r = sim.report();
    assert_eq!(r.scheduler, "LAZY");
    assert!(
        r.completed > 100,
        "custom scheduler completed only {}",
        r.completed
    );
    assert_eq!(r.restarts, 0);
}

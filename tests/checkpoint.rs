//! Checkpoint/restore identity: a run that is snapshotted at an
//! arbitrary event index, serialized to JSON, deserialized, restored and
//! run to the horizon must produce a report byte-identical to the
//! uninterrupted run — for every scheduler of the paper, with and
//! without fault injection, and across two hops (a snapshot of a
//! restored run).

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::{Duration, SimTime};
use batchsched::engine::{Engine, Snapshot};
use batchsched::fault::FaultPlan;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

const CRASHY: &str = "crash=1@40x20,crash=4@90x15,retry=1000:8000:4";

fn cfg(kind: SchedulerKind, faults: bool) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = 0.6;
    c.horizon = Duration::from_secs(300);
    if faults {
        c = c.with_faults(FaultPlan::parse(CRASHY).expect("plan parses"));
    }
    c
}

/// Tiny deterministic generator for the snapshot event index — the test
/// must not depend on wall-clock entropy.
fn pick(seed: u64, bound: u64) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    1 + x % bound.max(1)
}

/// Snapshot at `split` events, round-trip through JSON, restore and run
/// to the horizon; the restored report must equal `bulk` exactly.
/// Returns the mid-run snapshot for further checks.
///
/// `split_seed` is the [`pick`] seed that produced `split`: every
/// assertion carries it so a failing randomized split point can be
/// replayed exactly instead of guessed at.
fn check_one_hop(c: &SimConfig, split_seed: u64, split: u64) -> Snapshot {
    let ctx = format!("{} split_seed={split_seed:#x} split={split}", c.scheduler);
    let bulk = Simulator::run(c);
    let mut e = Engine::new(c);
    e.enable_checkpointing();
    for _ in 0..split {
        if e.step().is_none() {
            break;
        }
    }
    let snap = e.snapshot();

    // The wire format is lossless and deterministic.
    let text = snap.to_json();
    let back = Snapshot::from_json(&text)
        .unwrap_or_else(|err| panic!("{ctx}: snapshot JSON does not parse: {err}"));
    assert_eq!(
        back.to_json(),
        text,
        "{ctx}: re-encode must be byte-identical"
    );

    let mut restored = Engine::restore(c, &back);
    restored.run_to_horizon();
    assert_eq!(
        restored.report(),
        bulk,
        "{ctx}: restored run diverged from uninterrupted run"
    );

    // The engine that produced the snapshot also finishes identically.
    e.run_to_horizon();
    assert_eq!(e.report(), bulk, "{ctx}: snapshotting perturbed the run");
    snap
}

#[test]
fn snapshot_restore_identity_all_schedulers() {
    for (i, kind) in SchedulerKind::EXTENDED_SET.into_iter().enumerate() {
        let c = cfg(kind, false);
        let events = Simulator::run(&c).events;
        let split_seed = i as u64 + 1;
        let split = pick(split_seed, events);
        check_one_hop(&c, split_seed, split);
    }
}

#[test]
fn snapshot_restore_identity_under_faults() {
    for (i, kind) in SchedulerKind::EXTENDED_SET.into_iter().enumerate() {
        let c = cfg(kind, true);
        let events = Simulator::run(&c).events;
        let split_seed = 0x0fa1_7000 + i as u64;
        let split = pick(split_seed, events);
        check_one_hop(&c, split_seed, split);
    }
}

#[test]
fn restore_then_snapshot_is_byte_identical() {
    // A restored engine, snapshotted immediately, must reproduce the
    // original snapshot byte for byte (two-hop wire identity).
    let c = cfg(SchedulerKind::Gow, true);
    let mut e = Engine::new(&c);
    e.enable_checkpointing();
    e.run_until(SimTime::from_millis(90_000));
    let snap = e.snapshot();
    let mut hop = Engine::restore(&c, &snap);
    assert_eq!(hop.snapshot().to_json(), snap.to_json());
}

#[test]
fn two_hop_restore_matches_bulk() {
    // snapshot → restore → run a while → snapshot again → restore →
    // run to horizon: still identical to the uninterrupted run.
    let c = cfg(SchedulerKind::C2pl, true);
    let bulk = Simulator::run(&c);

    let mut e = Engine::new(&c);
    e.enable_checkpointing();
    e.run_until(SimTime::from_millis(60_000));
    let first = e.snapshot();

    let mut mid = Engine::restore(&c, &first);
    mid.run_until(SimTime::from_millis(180_000));
    let second = mid.snapshot();
    let text = second.to_json();
    let back = Snapshot::from_json(&text).expect("second-hop JSON parses");

    let mut last = Engine::restore(&c, &back);
    last.run_to_horizon();
    assert_eq!(last.report(), bulk);
}

#[test]
fn restore_preserves_observables() {
    // Mid-run observables (clock, counts, in-flight) survive the trip.
    let c = cfg(SchedulerKind::Wdl, false);
    let mut e = Engine::new(&c);
    e.enable_checkpointing();
    e.run_until(SimTime::from_millis(120_000));
    let snap = e.snapshot();
    let restored = Engine::restore(&c, &snap);
    assert_eq!(restored.now(), e.now());
    assert_eq!(restored.events_processed(), e.events_processed());
    assert_eq!(restored.arrived(), e.arrived());
    assert_eq!(restored.completed(), e.completed());
    assert_eq!(restored.killed(), e.killed());
    assert_eq!(restored.in_flight(), e.in_flight());
    // Conservation holds on the restored side too.
    assert_eq!(
        restored.arrived(),
        restored.completed() + restored.killed() + restored.in_flight()
    );
}

//! Parallel execution must not change results: every paper artifact
//! rendered with a single worker must be byte-identical to the same
//! artifact rendered with eight workers.
//!
//! This holds because each simulation cell derives its RNG stream solely
//! from its own `SimConfig` (including `seed`), so the order in which
//! cells execute — or which thread runs them — cannot leak into the
//! output. Row assembly is by index, never by completion order.

use batchsched::experiments::{self, ExpOptions, ARTIFACT_IDS};
use batchsched::parallel::ExecCtx;

#[test]
fn artifacts_identical_at_jobs_1_and_jobs_8() {
    let opts = ExpOptions::quick();
    // One context per job level, shared across artifacts exactly like the
    // repro binary, so later artifacts replay earlier cells from cache.
    let serial = ExecCtx::new(1);
    let parallel = ExecCtx::new(8);
    for id in ARTIFACT_IDS {
        let a = experiments::run_artifact_with(id, &opts, &serial);
        let b = experiments::run_artifact_with(id, &opts, &parallel);
        let ra = a.table.render();
        let rb = b.table.render();
        assert_eq!(
            ra, rb,
            "artifact '{id}' differs between --jobs 1 and --jobs 8"
        );
    }
    // Both contexts must have simulated the same set of distinct points.
    assert_eq!(serial.cache().len(), parallel.cache().len());
}

//! Parallel execution must not change results: every paper artifact
//! rendered with a single worker must be byte-identical to the same
//! artifact rendered with eight workers.
//!
//! This holds because each simulation cell derives its RNG stream solely
//! from its own `SimConfig` (including `seed`), so the order in which
//! cells execute — or which thread runs them — cannot leak into the
//! output. Row assembly is by index, never by completion order.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::experiments::{self, ExpOptions, ARTIFACT_IDS};
use batchsched::fault::FaultPlan;
use batchsched::parallel::{map_jobs, ExecCtx};
use batchsched::sim::Simulator;
use batchsched::trace::{chrome_trace, Analysis};
use bds_sched::SchedulerKind;

/// FNV-1a 64-bit, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes of every quick-mode artifact rendering produced by the *seed*
/// engine, before the arena/incremental-engine optimizations landed.
/// The hot-path work is required to be a pure performance change, so
/// these are frozen; regenerate with
/// `cargo run --release --example golden_hashes` only when an
/// intentional output change is made.
const GOLDEN: [(&str, u64); 12] = [
    ("fig8", 0xcd26cd3df8091310),
    ("table2", 0xd134324c420ce3ed),
    ("fig9", 0xfbd69094188e993c),
    ("table3", 0x1a35c8cc818750e6),
    ("fig10", 0xb032eaca38824799),
    ("fig11", 0x9d893e80b4cca078),
    ("table4", 0x073f6876f26412f9),
    ("fig12", 0xda21eafa3dd26982),
    ("fig13", 0x54ecc37c9d5d5325),
    ("table5", 0xf2c13016c980e8ea),
    // Extended-set artifacts (DGCC + BROOK columns), pinned when the
    // batch/epoch scheduler family landed. The six legacy columns
    // inside them replay the exact cells of fig8/fig10 above.
    ("fig8x", 0xa7627f7f0b500e46),
    ("fig10x", 0xd96c06ed62640cc6),
];

#[test]
fn artifacts_identical_at_jobs_1_and_jobs_8() {
    let opts = ExpOptions::quick();
    // One context per job level, shared across artifacts exactly like the
    // repro binary, so later artifacts replay earlier cells from cache.
    let serial = ExecCtx::new(1);
    let parallel = ExecCtx::new(8);
    for (i, id) in ARTIFACT_IDS.iter().enumerate() {
        let a = experiments::run_artifact_with(id, &opts, &serial);
        let b = experiments::run_artifact_with(id, &opts, &parallel);
        let ra = a.table.render();
        let rb = b.table.render();
        assert_eq!(
            ra, rb,
            "artifact '{id}' differs between --jobs 1 and --jobs 8"
        );
        // The output must also be byte-identical to the pre-optimization
        // engine: the hot-path rewrite may not change a single decision.
        let (gid, want) = GOLDEN[i];
        assert_eq!(gid, *id, "golden table out of sync with ARTIFACT_IDS");
        assert_eq!(
            fnv1a(ra.as_bytes()),
            want,
            "artifact '{id}' diverged from the seed engine's output"
        );
    }
    // Both contexts must have simulated the same set of distinct points.
    assert_eq!(serial.cache().len(), parallel.cache().len());
}

/// Traces are part of the determinism contract too: a traced run must
/// produce byte-identical report JSON, Chrome trace and span summary no
/// matter how many workers execute the batch.
#[test]
fn traced_exports_identical_at_jobs_1_and_jobs_8() {
    let cells: Vec<SimConfig> = SchedulerKind::PAPER_SET
        .iter()
        .map(|&kind| {
            let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            c.lambda_tps = 1.1;
            c.horizon = Duration::from_secs(200);
            c
        })
        .collect();
    let render = |jobs: usize| -> Vec<[String; 3]> {
        map_jobs(&cells, jobs, |_, cfg| {
            let (report, data) = Simulator::run_traced(cfg, 1 << 20);
            let summary = Analysis::from_data(&data).summary_json();
            [report.to_json(), chrome_trace(&data), summary]
        })
    };
    let serial = render(1);
    let parallel = render(8);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a,
            b,
            "traced exports for {} differ between --jobs 1 and --jobs 8",
            SchedulerKind::PAPER_SET[i]
        );
    }
}

/// Metrics exports join the determinism contract: a sampled run's report
/// JSON, CSV time series and column JSON must be byte-identical whether
/// one worker or eight execute the batch — and the report must match the
/// unsampled run of the same cell.
#[test]
fn metrics_exports_identical_at_jobs_1_and_jobs_8() {
    let cells: Vec<SimConfig> = SchedulerKind::PAPER_SET
        .iter()
        .map(|&kind| {
            let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            c.lambda_tps = 1.1;
            c.horizon = Duration::from_secs(200);
            c
        })
        .collect();
    let render = |jobs: usize| -> Vec<[String; 3]> {
        map_jobs(&cells, jobs, |_, cfg| {
            let (report, series) = Simulator::run_with_metrics(cfg, Duration::from_secs(5));
            [report.to_json(), series.to_csv(), series.to_json()]
        })
    };
    let serial = render(1);
    let parallel = render(8);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a,
            b,
            "metrics exports for {} differ between --jobs 1 and --jobs 8",
            SchedulerKind::PAPER_SET[i]
        );
        // Sampling must not perturb the report itself.
        let plain = Simulator::run(&cells[i]);
        assert_eq!(
            plain.to_json(),
            a[0],
            "sampling changed the report for {}",
            SchedulerKind::PAPER_SET[i]
        );
    }
}

/// Fault injection joins the determinism contract: the same seed and the
/// same fault plan must yield byte-identical report JSON and metrics
/// exports whether one worker or eight execute the batch. Faults are
/// ordinary DES events drawn from a plan-derived RNG, so worker count
/// cannot leak into crash timing, loss draws or retry backoff.
#[test]
fn fault_exports_identical_at_jobs_1_and_jobs_8() {
    let plan = FaultPlan::parse(
        "crash=1@40x20,crash=5@110x15,delay=4,loss=50,redeliver=350,stall=70x6,retry=800:6400:3",
    )
    .expect("plan parses");
    let cells: Vec<SimConfig> = SchedulerKind::PAPER_SET
        .iter()
        .map(|&kind| {
            let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            c.lambda_tps = 0.9;
            c.horizon = Duration::from_secs(200);
            c.with_faults(plan.clone())
        })
        .collect();
    let render = |jobs: usize| -> Vec<[String; 3]> {
        map_jobs(&cells, jobs, |_, cfg| {
            let (report, series) = Simulator::run_with_metrics(cfg, Duration::from_secs(5));
            [report.to_json(), series.to_csv(), series.to_json()]
        })
    };
    let serial = render(1);
    let parallel = render(8);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a,
            b,
            "faulted exports for {} differ between --jobs 1 and --jobs 8",
            SchedulerKind::PAPER_SET[i]
        );
    }
}

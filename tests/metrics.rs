//! Integration tests for the metrics subsystem: sub-second percentile
//! resolution (the bug the log-bucketed histogram fixes), report purity
//! under sampling, and the shape/determinism of sampled time series.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sim::Simulator;
use bds_sched::SchedulerKind;

fn light_load_cfg() -> SimConfig {
    let mut c = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
    // Light load: transactions barely queue, so every response time sits
    // near the 7.2 s total scan demand of Pattern 1 — squarely inside
    // one 1-second bucket of the legacy histogram.
    c.lambda_tps = 0.02;
    c.horizon = Duration::from_secs(2_000);
    c
}

/// Regression test for the percentile-resolution bug: the legacy
/// 1-second-bin histogram snapped `rt_p50/p90/p99` to bucket midpoints
/// (7.5 s for anything in [7, 8)), erasing sub-second differences. The
/// log-bucketed engine must resolve the actual ≈ 7.2 s value.
#[test]
fn percentiles_have_sub_second_resolution() {
    let cfg = light_load_cfg();
    let new = Simulator::run(&cfg);
    let legacy = Simulator::run(&cfg.clone().with_legacy_percentiles(true));

    // Identical runs aside from the percentile engine.
    assert_eq!(new.completed, legacy.completed);
    assert_eq!(new.mean_rt_secs(), legacy.mean_rt_secs());

    let p50_legacy = legacy.rt_p50_secs.unwrap();
    let p50_new = new.rt_p50_secs.unwrap();
    // The legacy engine can only say "7.5": the bucket midpoint.
    assert_eq!(p50_legacy, 7.5, "legacy bin midpoint");
    // The new engine must agree with the exact mean to well under the
    // legacy bucket width — the response times cluster at ≈ 7.2 s.
    let mean = new.mean_rt_secs();
    assert!(
        (p50_new - mean).abs() < 0.1,
        "p50 {p50_new} should sit near the ≈ {mean} s cluster"
    );
    assert!(
        (p50_new - p50_legacy).abs() > 0.2,
        "new p50 {p50_new} must not be quantized to the legacy midpoint"
    );
    // The new p90 is also off the legacy half-second grid.
    let p90 = new.rt_p90_secs.unwrap();
    assert!(
        (p90 * 2.0 - (p90 * 2.0).round()).abs() > 1e-3,
        "p90 {p90} looks quantized to a half-second midpoint"
    );
}

/// Sampling must be a pure observer: the report of a metrics-on run is
/// byte-identical to the metrics-off run of the same config.
#[test]
fn sampling_does_not_perturb_the_report() {
    for kind in [SchedulerKind::C2pl, SchedulerKind::Gow] {
        let mut cfg = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        cfg.lambda_tps = 1.1;
        cfg.horizon = Duration::from_secs(300);
        let off = Simulator::run(&cfg);
        let (on, series) = Simulator::run_with_metrics(&cfg, Duration::from_secs(5));
        assert_eq!(
            off.to_json(),
            on.to_json(),
            "{kind}: sampling changed the report"
        );
        assert!(!series.is_empty(), "{kind}: no samples collected");
    }
}

/// The sampled series has the documented shape: a full Δt grid over the
/// horizon, utilizations within [0, 1], and occupancy gauges consistent
/// with the run.
#[test]
fn series_shape_and_ranges() {
    let mut cfg = SimConfig::new(SchedulerKind::C2pl, WorkloadKind::Exp1 { num_files: 16 });
    cfg.lambda_tps = 1.1;
    cfg.horizon = Duration::from_secs(300);
    let (report, series) = Simulator::run_with_metrics(&cfg, Duration::from_secs(5));

    // Grid: 5 s spacing from t = 5 s through the horizon.
    assert_eq!(series.dt_ms(), 5_000);
    assert_eq!(series.len(), 60);
    assert_eq!(series.times_ms().first(), Some(&5_000));
    assert_eq!(series.times_ms().last(), Some(&300_000));

    // Per-node columns exist for all 8 DPNs plus the mean.
    for name in ["dpn_util", "dpn0_util", "dpn7_util", "cn_util"] {
        let col = series.column(name).unwrap_or_else(|| panic!("{name}"));
        assert!(
            col.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)),
            "{name} out of [0,1]"
        );
    }

    // C2PL holds locks under this contention level; the WTPG is
    // populated while transactions are live.
    let locks = series.column("locks_held").unwrap();
    assert!(locks.iter().any(|&v| v > 0.0), "no locks ever sampled");
    let nodes = series.column("wtpg_nodes").unwrap();
    let mpl = series.column("mpl_live").unwrap();
    assert!(
        nodes.iter().zip(&mpl).all(|(&n, &m)| n == m),
        "C2PL's WTPG tracks exactly the live transactions"
    );

    // Windowed commit rates integrate back to the completion count.
    let commits_ps = series.column("commits_ps").unwrap();
    let integrated: f64 = commits_ps.iter().sum::<f64>() * 5.0;
    assert_eq!(integrated.round() as u64, report.completed);
}

/// Same seed, same series: sampling is as deterministic as the
/// simulation itself, including across CSV/JSON rendering.
#[test]
fn series_is_deterministic() {
    let mut cfg = SimConfig::new(SchedulerKind::Low(2), WorkloadKind::Exp1 { num_files: 16 });
    cfg.lambda_tps = 1.0;
    cfg.horizon = Duration::from_secs(200);
    let (ra, sa) = Simulator::run_with_metrics(&cfg, Duration::from_secs(2));
    let (rb, sb) = Simulator::run_with_metrics(&cfg, Duration::from_secs(2));
    assert_eq!(ra, rb);
    assert_eq!(sa.to_csv(), sb.to_csv());
    assert_eq!(sa.to_json(), sb.to_json());
}

/// The simulator-side response-time histogram is exposed for exporters
/// and agrees with the report's percentile fields.
#[test]
fn rt_histogram_backs_the_report_percentiles() {
    let cfg = light_load_cfg();
    let mut sim = Simulator::new(&cfg);
    sim.run_to_horizon();
    let report = sim.report();
    let h = sim.rt_histogram();
    assert_eq!(h.total(), report.completed);
    assert_eq!(h.quantile(0.5), report.rt_p50_secs);
    assert_eq!(h.quantile(0.99), report.rt_p99_secs);
}

//! End-to-end serializability audit: run each locking scheduler through
//! the full simulator and verify that the precedence constraints it
//! committed to form an acyclic graph (i.e. every produced schedule has
//! a serial equivalent).
//!
//! NODC is excluded (it is non-serializable by design — the paper's
//! upper bound). OPT is audited through the certify-time precedence
//! constraints it records at commit: validated commits order after the
//! committed writers they observed, so the same acyclicity oracle
//! applies.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::fault::FaultPlan;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use batchsched::wtpg::oracle::is_serializable;

fn audit(kind: SchedulerKind, workload: WorkloadKind, lambda: f64, dd: u32, seed: u64) {
    audit_with_faults(kind, workload, lambda, dd, seed, "");
}

fn audit_with_faults(
    kind: SchedulerKind,
    workload: WorkloadKind,
    lambda: f64,
    dd: u32,
    seed: u64,
    plan: &str,
) {
    let mut cfg = SimConfig::new(kind, workload);
    cfg.lambda_tps = lambda;
    cfg.dd = dd;
    cfg.seed = seed;
    cfg.horizon = Duration::from_secs(400);
    if !plan.is_empty() {
        cfg = cfg.with_faults(FaultPlan::parse(plan).expect("plan parses"));
    }
    let mut sim = Simulator::new(&cfg);
    sim.run_to_horizon();
    let report = sim.report();
    assert!(
        report.completed > 0,
        "{kind} produced no commits — audit vacuous"
    );
    let constraints = sim.drain_constraints();
    assert!(
        is_serializable(&constraints),
        "{kind} emitted a cyclic precedence history ({} constraints)",
        constraints.len()
    );
}

const LOCKING: [SchedulerKind; 6] = [
    SchedulerKind::Asl,
    SchedulerKind::C2pl,
    SchedulerKind::Gow,
    SchedulerKind::Low(2),
    SchedulerKind::Dgcc,
    SchedulerKind::Brook,
];

/// Every scheduler with a meaningful constraint log: the locking
/// schedulers (including the batch/epoch family) plus OPT's
/// certify-time edges.
const AUDITED: [SchedulerKind; 7] = [
    SchedulerKind::Asl,
    SchedulerKind::C2pl,
    SchedulerKind::Gow,
    SchedulerKind::Low(2),
    SchedulerKind::Opt,
    SchedulerKind::Dgcc,
    SchedulerKind::Brook,
];

#[test]
fn exp1_moderate_load_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 0.6, 1, 1);
    }
}

#[test]
fn exp1_heavy_load_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 1.2, 1, 2);
    }
}

#[test]
fn exp1_small_database_is_serializable() {
    // 8 files: maximum contention in Table 2.
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 8 }, 0.8, 1, 3);
    }
}

#[test]
fn exp1_with_declustering_is_serializable() {
    for kind in LOCKING {
        for dd in [2, 8] {
            audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 0.9, dd, 4);
        }
    }
}

#[test]
fn exp2_hot_set_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp2, 1.0, 1, 5);
    }
}

#[test]
fn exp3_wrong_declarations_stay_serializable() {
    // Estimation error changes *scheduling quality*, never correctness:
    // the WTPG schedulers must stay serializable with garbage weights.
    for kind in [SchedulerKind::Gow, SchedulerKind::Low(2)] {
        audit(
            kind,
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 10.0,
            },
            0.7,
            1,
            6,
        );
    }
}

#[test]
fn opt_certification_is_serializable() {
    // OPT records precedence edges at certification time: a validated
    // commit orders after every committed writer it read behind, and a
    // validation failure records the conflicting pair in both
    // directions so the oracle rejects any history that actually
    // committed such a pair.
    audit(
        SchedulerKind::Opt,
        WorkloadKind::Exp1 { num_files: 16 },
        0.8,
        1,
        7,
    );
    audit(
        SchedulerKind::Opt,
        WorkloadKind::Exp1 { num_files: 8 },
        1.2,
        1,
        8,
    );
    audit(SchedulerKind::Opt, WorkloadKind::Exp2, 1.0, 1, 9);
}

#[test]
fn faulted_histories_stay_serializable() {
    // Fault-induced aborts and restarts must never let a committed
    // history go cyclic: an aborted attempt's constraints are void, and
    // the restarted attempt re-records its ordering from scratch.
    let plan = "crash=1@50x20,crash=4@120x15,delay=3,loss=40,redeliver=300,retry=800:6400:3";
    for kind in AUDITED {
        audit_with_faults(kind, WorkloadKind::Exp1 { num_files: 16 }, 0.8, 1, 11, plan);
    }
}

#[test]
fn faulted_hot_set_stays_serializable() {
    let plan = "mtbf=90,mttr=12,stall=60x5,retry=500:4000:2,seed=5";
    for kind in AUDITED {
        audit_with_faults(kind, WorkloadKind::Exp2, 1.0, 1, 12, plan);
    }
}

#[test]
fn many_seeds_stay_serializable() {
    for seed in 10..20 {
        audit(
            SchedulerKind::Low(2),
            WorkloadKind::Exp1 { num_files: 16 },
            0.8,
            2,
            seed,
        );
        audit(SchedulerKind::Gow, WorkloadKind::Exp2, 0.8, 2, seed);
    }
}

//! End-to-end serializability audit: run each locking scheduler through
//! the full simulator and verify that the precedence constraints it
//! committed to form an acyclic graph (i.e. every produced schedule has
//! a serial equivalent).
//!
//! NODC is excluded (it is non-serializable by design — the paper's
//! upper bound) and OPT is excluded (it certifies by validation instead
//! of precedence edges; its correctness is tested at the unit level).

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use batchsched::wtpg::oracle::is_serializable;

fn audit(kind: SchedulerKind, workload: WorkloadKind, lambda: f64, dd: u32, seed: u64) {
    let mut cfg = SimConfig::new(kind, workload);
    cfg.lambda_tps = lambda;
    cfg.dd = dd;
    cfg.seed = seed;
    cfg.horizon = Duration::from_secs(400);
    let mut sim = Simulator::new(&cfg);
    sim.run_to_horizon();
    let report = sim.report();
    assert!(
        report.completed > 0,
        "{kind} produced no commits — audit vacuous"
    );
    let constraints = sim.drain_constraints();
    assert!(
        is_serializable(&constraints),
        "{kind} emitted a cyclic precedence history ({} constraints)",
        constraints.len()
    );
}

const LOCKING: [SchedulerKind; 4] = [
    SchedulerKind::Asl,
    SchedulerKind::C2pl,
    SchedulerKind::Gow,
    SchedulerKind::Low(2),
];

#[test]
fn exp1_moderate_load_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 0.6, 1, 1);
    }
}

#[test]
fn exp1_heavy_load_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 1.2, 1, 2);
    }
}

#[test]
fn exp1_small_database_is_serializable() {
    // 8 files: maximum contention in Table 2.
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp1 { num_files: 8 }, 0.8, 1, 3);
    }
}

#[test]
fn exp1_with_declustering_is_serializable() {
    for kind in LOCKING {
        for dd in [2, 8] {
            audit(kind, WorkloadKind::Exp1 { num_files: 16 }, 0.9, dd, 4);
        }
    }
}

#[test]
fn exp2_hot_set_is_serializable() {
    for kind in LOCKING {
        audit(kind, WorkloadKind::Exp2, 1.0, 1, 5);
    }
}

#[test]
fn exp3_wrong_declarations_stay_serializable() {
    // Estimation error changes *scheduling quality*, never correctness:
    // the WTPG schedulers must stay serializable with garbage weights.
    for kind in [SchedulerKind::Gow, SchedulerKind::Low(2)] {
        audit(
            kind,
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 10.0,
            },
            0.7,
            1,
            6,
        );
    }
}

#[test]
fn many_seeds_stay_serializable() {
    for seed in 10..20 {
        audit(
            SchedulerKind::Low(2),
            WorkloadKind::Exp1 { num_files: 16 },
            0.8,
            2,
            seed,
        );
        audit(SchedulerKind::Gow, WorkloadKind::Exp2, 0.8, 2, seed);
    }
}

//! Trace/report cross-accounting: the tracer's exact event counters must
//! reconcile with the simulator's own `SimReport` statistics for every
//! scheduler, and turning tracing on must not change the simulation at
//! all (the report stays byte-identical).

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sim::Simulator;
use batchsched::trace::{chrome_trace, Analysis};
use bds_sched::SchedulerKind;

/// A moderately contended Exp-1 point: enough blocking, delays and (for
/// OPT/WDL) restarts that every counter is exercised.
fn cfg(kind: SchedulerKind) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.horizon = Duration::from_secs(400);
    c.lambda_tps = 0.9;
    c
}

const CAPACITY: usize = 1 << 20;

#[test]
fn counters_reconcile_with_report_for_paper_set() {
    for kind in SchedulerKind::PAPER_SET {
        let c = cfg(kind);
        let (r, data) = Simulator::run_traced(&c, CAPACITY);
        assert_eq!(data.dropped, 0, "{kind}: ring overflowed");
        let n = &data.counts;
        assert_eq!(n.arrivals, r.arrived, "{kind}: arrivals");
        assert_eq!(n.commits, r.completed, "{kind}: commits");
        assert_eq!(n.aborts, r.restarts, "{kind}: aborts");
        assert_eq!(n.lock_requests, r.lock_requests, "{kind}: lock requests");
        assert_eq!(
            n.lock_blocks + n.lock_denies,
            r.requests_denied,
            "{kind}: denials"
        );
        // No paper scheduler restarts at a lock request, so every
        // request is either granted or denied.
        assert_eq!(n.lock_restarts, 0, "{kind}: paper set never restarts");
        assert_eq!(
            n.lock_grants,
            r.lock_requests - r.requests_denied,
            "{kind}: grants"
        );
        assert_eq!(n.certify_ok, r.completed, "{kind}: certifications");
        assert_eq!(n.certify_fail, r.restarts, "{kind}: failed certifications");
        // A transaction is admitted at least once per commit or abort.
        assert!(n.admissions >= r.started, "{kind}: admissions");
        // Cohorts may still be running at the horizon.
        assert!(n.cohort_starts >= n.cohort_finishes, "{kind}: cohorts");
        assert!(n.quanta >= n.cohort_finishes, "{kind}: quanta");
    }
}

#[test]
fn wdl_restart_counters_balance() {
    let c = cfg(SchedulerKind::Wdl);
    let (r, data) = Simulator::run_traced(&c, CAPACITY);
    let n = &data.counts;
    assert!(n.lock_restarts > 0, "contended WDL must restart someone");
    // Every lock request resolves exactly one way.
    assert_eq!(
        n.lock_grants + n.lock_blocks + n.lock_denies + n.lock_restarts,
        n.lock_requests
    );
    // WDL restarts come only from lock requests; OPT-style certification
    // failures never happen.
    assert_eq!(n.certify_fail, 0);
    assert_eq!(n.aborts, r.restarts);
}

#[test]
fn tracing_does_not_change_the_report() {
    for kind in [
        SchedulerKind::C2pl,
        SchedulerKind::Gow,
        SchedulerKind::Opt,
        SchedulerKind::Wdl,
    ] {
        let c = cfg(kind);
        let plain = Simulator::run(&c);
        let (traced, _) = Simulator::run_traced(&c, CAPACITY);
        assert_eq!(
            plain.to_json(),
            traced.to_json(),
            "{kind}: tracing perturbed the simulation"
        );
    }
}

#[test]
fn analysis_and_exports_agree_with_report() {
    let c = cfg(SchedulerKind::C2pl);
    let (r, data) = Simulator::run_traced(&c, CAPACITY);
    let a = Analysis::from_data(&data);
    let b = a.breakdown();
    assert_eq!(b.committed, r.completed);
    assert_eq!(b.aborted_attempts, r.restarts);
    // Mean response over the trace matches the report's Welford mean.
    assert!(
        (b.mean_response_secs - r.mean_rt_secs()).abs() < 1e-6,
        "trace mean RT {} vs report {}",
        b.mean_response_secs,
        r.mean_rt_secs()
    );
    // Wait + exec never exceeds response for any committed transaction.
    for s in a.spans.iter().filter(|s| s.commit.is_some()) {
        let resp = s.response().unwrap();
        assert!(s.queue + s.wait + s.exec <= resp, "span overflow: {s:?}");
    }
    // The summary carries the reconciled totals.
    let summary = a.summary_json();
    assert!(summary.contains(&format!("\"commits\":{}", r.completed)));
    assert!(summary.contains(&format!("\"lock_requests\":{}", r.lock_requests)));
    // The Chrome export is well-formed enough to hand to Perfetto.
    let chrome = chrome_trace(&data);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("}"));
    assert!(chrome.contains("\"ph\":\"X\""), "no span events");
    assert!(chrome.contains("\"ph\":\"M\""), "no process metadata");
}

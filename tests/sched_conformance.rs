//! Scheduler-conformance suite: one parameterized set of contracts
//! that every `SchedulerKind` — paper six, WDL, and the batch/epoch
//! family (DGCC, BROOK) — must pass before it is allowed near the
//! repro tables. The workload, fault-plan, and invariant helpers are
//! shared with `chaos.rs` through `harness.rs`.
//!
//! Contracts:
//!   1. serializability under randomized workloads (NODC exempt by
//!      design — it is the paper's no-concurrency-control bound),
//!   2. conservation: arrivals = commits + in-flight + killed,
//!   3. no lock-table or WTPG-arena state retained after a full drain,
//!   4. survival of external aborts under randomized fault plans,
//!   5. checkpoint → restore → run byte-identity,
//!   6. Brook-2PL zero-deadlock, asserted structurally (ascending
//!      lock-order prefix audited mid-run) and observationally
//!      (`aborts_scheduler == 0`).

#[path = "harness.rs"]
mod harness;

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::{Duration, SimTime};
use batchsched::engine::{Engine, Snapshot};
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use batchsched::wtpg::oracle::is_serializable;
use harness::{assert_no_retained_state, check_case, run_drain};

fn load_point(kind: SchedulerKind, lambda: f64, dd: u32, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = lambda;
    c.dd = dd;
    c.seed = seed;
    c.horizon = Duration::from_secs(200);
    c
}

/// Contract 1: every committed history has a serial equivalent, at a
/// moderate and a saturating load point, across several seeds.
#[test]
fn conformance_serializability() {
    for kind in SchedulerKind::ALL {
        if kind == SchedulerKind::Nodc {
            continue;
        }
        for (lambda, dd, seed) in [(0.6, 1, 21u64), (1.2, 1, 22), (0.8, 4, 23)] {
            let c = load_point(kind, lambda, dd, seed);
            let mut sim = Simulator::new(&c);
            sim.run_to_horizon();
            let r = sim.report();
            assert!(
                r.completed > 0,
                "{kind} λ={lambda} dd={dd} seed={seed}: no commits — audit vacuous"
            );
            let constraints = sim.drain_constraints();
            assert!(
                is_serializable(&constraints),
                "{kind} λ={lambda} dd={dd} seed={seed}: cyclic precedence history \
                 ({} constraints)",
                constraints.len()
            );
        }
    }
}

/// Contract 2: arrivals are conserved — every transaction the arrival
/// process produced is committed, permanently killed, or still tracked.
#[test]
fn conformance_conservation() {
    for kind in SchedulerKind::ALL {
        for seed in 31..34u64 {
            let c = load_point(kind, 1.0, 1, seed);
            let mut sim = Simulator::new(&c);
            sim.run_to_horizon();
            let r = sim.report();
            assert_eq!(
                r.arrived,
                r.completed + r.killed + sim.in_flight(),
                "{kind} seed={seed}: conservation violated"
            );
            assert_eq!(
                r.restarts,
                r.aborts_validation + r.aborts_scheduler + r.aborts_fault,
                "{kind} seed={seed}: abort-cause partition violated"
            );
        }
    }
}

/// Contract 3: after a submit-only workload fully drains, the
/// scheduler holds zero lock rows and zero WTPG arena slots — nothing
/// keyed by a dead transaction survives.
#[test]
fn conformance_drain_leaves_no_state() {
    for kind in SchedulerKind::ALL {
        for seed in 41..44u64 {
            let e = run_drain(kind, seed, 120);
            assert_no_retained_state(&e, &format!("{kind} seed={seed:#x}"));
        }
    }
}

/// Contract 4: external aborts (crashes, link loss, retry exhaustion)
/// never corrupt scheduler state — the full chaos invariant set holds
/// for every kind, including WDL which the 200-case sweeps skip.
#[test]
fn conformance_fault_survival() {
    for kind in SchedulerKind::ALL {
        for case in 0..12u64 {
            check_case(
                kind,
                0xC0F0_0000u64
                    .wrapping_add(case)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
        }
    }
}

/// Contract 5: snapshot at a mid-run point, restore, run to horizon —
/// byte-identical report to the uninterrupted run, and the snapshot
/// JSON round-trips losslessly. This is what lets `bds-serve` migrate
/// a live run onto any scheduler kind.
#[test]
fn conformance_checkpoint_identity() {
    for (i, kind) in SchedulerKind::ALL.into_iter().enumerate() {
        let mut c = load_point(kind, 0.6, 1, 51);
        c.horizon = Duration::from_secs(300);
        let bulk = Simulator::run(&c);

        let mut e = Engine::new(&c);
        e.enable_checkpointing();
        e.run_until(SimTime::from_millis(40_000 + 10_000 * i as u64));
        let snap = e.snapshot();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("snapshot JSON parses");
        assert_eq!(
            back.to_json(),
            text,
            "{kind}: snapshot re-encode not byte-identical"
        );

        let mut restored = Engine::restore(&c, &back);
        restored.run_to_horizon();
        assert_eq!(
            restored.report(),
            bulk,
            "{kind}: restored run diverged from uninterrupted run"
        );
    }
}

/// Contract 6a: Brook-2PL's structural deadlock-freedom invariant —
/// every live transaction's held locks are exactly an ascending-FileId
/// prefix of its declared order — audited *during* the run, every few
/// hundred engine events, under load heavy enough to keep many
/// waiters blocked. A waiter always waits on a file strictly greater
/// than everything it holds, so any wait cycle would be a strictly
/// increasing cycle in a total order: impossible. The audit proves the
/// precondition of that argument on the actual mid-run state.
#[test]
fn conformance_brook_structural_deadlock_freedom() {
    let c = load_point(SchedulerKind::Brook, 1.2, 1, 61);
    let mut e = Engine::new(&c);
    let mut audits = 0u32;
    let mut exhausted = false;
    while !exhausted {
        for _ in 0..64 {
            if e.step().is_none() {
                exhausted = true;
                break;
            }
        }
        let audit = e
            .scheduler()
            .audit_invariant()
            .expect("Brook exposes a structural audit");
        audit.unwrap_or_else(|err| {
            panic!("Brook prefix invariant broken at t={:?}: {err}", e.now())
        });
        audits += 1;
    }
    assert!(audits > 10, "audit loop exited early after {audits} checks");
    assert!(e.now() >= SimTime::from_millis(190_000));
    // 6b: observational corollary over the same run — a deadlock-free
    // scheduler never issues a restart of its own.
    assert_eq!(
        e.report().aborts_scheduler,
        0,
        "Brook-2PL issued a scheduler abort under saturation"
    );
}

/// DGCC's structural audit mid-run: every live transaction belongs to
/// the current epoch's batch and no two live transactions conflict —
/// the defining property of conflict-graph coloring.
#[test]
fn conformance_dgcc_batch_disjointness() {
    let c = load_point(SchedulerKind::Dgcc, 1.0, 1, 62);
    let mut e = Engine::new(&c);
    let mut audits = 0u32;
    let mut exhausted = false;
    while !exhausted {
        for _ in 0..64 {
            if e.step().is_none() {
                exhausted = true;
                break;
            }
        }
        let audit = e
            .scheduler()
            .audit_invariant()
            .expect("DGCC exposes a structural audit");
        audit.unwrap_or_else(|err| panic!("DGCC batch invariant broken at t={:?}: {err}", e.now()));
        audits += 1;
    }
    assert!(audits > 10, "audit loop exited early after {audits} checks");
}

/// The conformance surface itself is conserved: the registry constants
/// agree, so a new kind cannot be wired into the simulator without
/// landing in this suite.
#[test]
fn conformance_covers_every_kind() {
    assert_eq!(SchedulerKind::ALL.len(), 9);
    assert_eq!(SchedulerKind::EXTENDED_SET.len(), 8);
    for kind in SchedulerKind::PAPER_SET {
        assert!(SchedulerKind::ALL.contains(&kind), "{kind} missing");
    }
    for kind in SchedulerKind::EXTENDED_SET {
        assert!(SchedulerKind::ALL.contains(&kind), "{kind} missing");
    }
    assert!(SchedulerKind::ALL.contains(&SchedulerKind::Dgcc));
    assert!(SchedulerKind::ALL.contains(&SchedulerKind::Brook));
    assert!(SchedulerKind::ALL.contains(&SchedulerKind::Wdl));
}

//! Shared helpers for the scheduler test suites. This file is included
//! as a module (`#[path = "harness.rs"] mod harness;`) by
//! `sched_conformance.rs` and `chaos.rs`, so the helpers are written
//! once and every suite sees the same workloads, fault plans, and
//! invariant checks. It also compiles stand-alone as an (empty)
//! integration-test crate, hence the crate-level `dead_code` allow.
#![allow(dead_code)]

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::rng::Xoshiro256;
use batchsched::des::time::SimTime;
use batchsched::des::Duration;
use batchsched::engine::Engine;
use batchsched::fault::{CnStall, CrashFault, DegradedMode, FaultPlan, LinkFaults, RetryPolicy};
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use batchsched::workload::spec::{BatchSpec, FileId, LockMode, Step};
use batchsched::wtpg::oracle::is_serializable;

/// Draw a random-but-reproducible fault plan over a `horizon_secs` run.
pub fn random_plan(rng: &mut Xoshiro256, horizon_secs: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.seed = rng.next_u64();
    for _ in 0..rng.next_range(4) {
        plan.crashes.push(CrashFault {
            node: rng.next_range(8) as u32,
            at: SimTime::from_millis(rng.next_range(horizon_secs * 800) + 1),
            down_for: Duration::from_millis(rng.next_range(30_000) + 1_000),
        });
    }
    if rng.next_range(2) == 1 {
        plan.cn_stalls.push(CnStall {
            at: SimTime::from_millis(rng.next_range(horizon_secs * 1000)),
            stall_for: Duration::from_millis(rng.next_range(8_000) + 500),
        });
    }
    if rng.next_range(2) == 1 {
        plan.link = LinkFaults {
            delay: Duration::from_millis(rng.next_range(20)),
            loss_per_mille: rng.next_range(80) as u32,
            redeliver_after: Duration::from_millis(rng.next_range(1500) + 100),
        };
    }
    if rng.next_range(4) == 0 {
        plan.mtbf = Some(Duration::from_secs(rng.next_range(200) + 40));
        plan.mttr = Duration::from_secs(rng.next_range(20) + 5);
    }
    plan.retry = RetryPolicy {
        base_delay: Duration::from_millis(rng.next_range(3_000) + 200),
        max_delay: Duration::from_secs(20),
        max_attempts: rng.next_range(5) as u32 + 1,
    };
    plan.degraded = if rng.next_range(2) == 0 {
        DegradedMode::Reroute
    } else {
        DegradedMode::Hold
    };
    plan
}

/// Derive a full chaos-case config (seed, load point, fault plan) from
/// one case seed.
pub fn case_config(kind: SchedulerKind, case_seed: u64) -> SimConfig {
    let mut rng = Xoshiro256::seed_from_u64(case_seed);
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.seed = rng.next_u64();
    c.lambda_tps = [0.4, 0.7, 1.0][rng.next_index(3)];
    c.horizon = Duration::from_secs(60);
    c.with_faults(random_plan(&mut rng, 60))
}

/// The invariants every scheduler must uphold under every fault plan.
/// The assertion messages carry `case_seed` so a failure replays
/// exactly.
pub fn check_case(kind: SchedulerKind, case_seed: u64) {
    let c = case_config(kind, case_seed);
    let mut sim = Simulator::new(&c);
    sim.run_to_horizon();
    let r = sim.report();
    let ctx = format!("{kind} case_seed={case_seed:#x} plan={:?}", c.faults);
    // Conservation: arrivals = committed + permanently killed + tracked.
    assert_eq!(
        r.arrived,
        r.completed + r.killed + sim.in_flight(),
        "{ctx}: conservation violated"
    );
    // Cause counters partition the abort total.
    assert_eq!(
        r.restarts,
        r.aborts_validation + r.aborts_scheduler + r.aborts_fault,
        "{ctx}: abort-cause partition violated"
    );
    // Brook-2PL is deadlock-free by construction (every transaction
    // acquires in ascending FileId order), so it must never issue a
    // scheduler-induced restart — across the whole chaos corpus.
    if kind == SchedulerKind::Brook {
        assert_eq!(
            r.aborts_scheduler, 0,
            "{ctx}: Brook-2PL issued a scheduler abort — deadlock freedom broken"
        );
    }
    // No WTPG arena slot may leak when attempts die to crashes.
    let tel = sim.scheduler().telemetry();
    assert_eq!(
        tel.wtpg_slots - tel.wtpg_free,
        tel.wtpg_nodes,
        "{ctx}: WTPG arena slot leak"
    );
    // No locks held by dead transactions: all rows belong to tracked
    // transactions (≤ 3 locks per Pattern-1 batch).
    assert!(
        tel.locks_held as u64 <= 3 * sim.in_flight(),
        "{ctx}: {} lock rows exceed what {} tracked transactions can hold",
        tel.locks_held,
        sim.in_flight()
    );
    // Schedulers that expose a structural invariant must satisfy it in
    // the final state too.
    if let Some(audit) = sim.scheduler().audit_invariant() {
        audit.unwrap_or_else(|e| panic!("{ctx}: structural invariant broken: {e}"));
    }
    assert!(
        (0.0..=1.0).contains(&r.availability),
        "{ctx}: availability {} out of range",
        r.availability
    );
    // Serializability of the committed history under faults. NODC is
    // non-serializable by design (the paper's upper bound).
    if kind != SchedulerKind::Nodc {
        let constraints = sim.drain_constraints();
        assert!(
            is_serializable(&constraints),
            "{ctx}: cyclic precedence history ({} constraints)",
            constraints.len()
        );
    }
}

/// Draw a random Pattern-1-style batch: 1–3 steps over `num_files`
/// files, mixed read/write, unique files per batch (matching the
/// generator's no-repeat discipline that the schedulers assume).
pub fn random_spec(rng: &mut Xoshiro256, num_files: u32) -> BatchSpec {
    let n = rng.next_range(3) as usize + 1;
    let mut files: Vec<u32> = Vec::new();
    while files.len() < n {
        let f = rng.next_range(num_files as u64) as u32;
        if !files.contains(&f) {
            files.push(f);
        }
    }
    let steps = files
        .into_iter()
        .map(|f| {
            let cost = 0.5 + rng.next_range(20) as f64 * 0.1;
            if rng.next_range(2) == 0 {
                Step::write(FileId(f), cost)
            } else {
                Step::read(FileId(f), LockMode::Shared, cost)
            }
        })
        .collect();
    BatchSpec::new(steps)
}

/// A config whose Poisson arrival process is effectively disabled: the
/// first generated arrival lands ~1e9 s out, so only transactions fed
/// through [`Engine::submit`] exist. This is what makes a true
/// drain-to-empty test possible.
///
/// Multiprogramming is capped at 8: an uncapped closed burst puts
/// restart-based schedulers (WDL) into a periodic restart orbit —
/// with a constant restart delay and no arrival jitter, the same
/// transactions collide forever. The FIFO admission gate under an MPL
/// cap rotates restarted transactions past each other, which is what
/// any open arrival process does for free.
pub fn submit_only_config(kind: SchedulerKind, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.seed = seed;
    c.lambda_tps = 1e-9;
    c.horizon = Duration::from_secs(100_000);
    c.mpl = Some(8);
    c
}

/// Submit `n` random batches into an otherwise-idle engine, run until
/// everything drains, and return the engine for post-drain inspection.
/// Panics if the engine wedges (drain not reached by the cutoff).
///
/// Submissions are jittered in time rather than dumped at t=0: a
/// same-instant burst puts every restart delay in lockstep, which
/// livelocks restart-based schedulers (WDL) in a way no arrival
/// process ever would.
pub fn run_drain(kind: SchedulerKind, seed: u64, n: usize) -> Engine {
    let c = submit_only_config(kind, seed);
    let mut e = Engine::new(&c);
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD5A1_70AD);
    let mut at = 0u64;
    for _ in 0..n {
        at += rng.next_range(1_500) + 1;
        e.run_until(SimTime::from_millis(at));
        e.submit(random_spec(&mut rng, 16));
    }
    // Far beyond any plausible completion time for n batches, far
    // before the ~1e9 s first Poisson arrival.
    e.run_until(SimTime::from_millis(50_000_000));
    assert_eq!(
        e.in_flight(),
        0,
        "{kind} seed={seed:#x}: {} of {n} submitted batches never drained \
         (now={:?} restarts={} completed={})",
        e.in_flight(),
        e.now(),
        e.report().restarts,
        e.report().completed,
    );
    e
}

/// Assert the scheduler retains no per-transaction state after a full
/// drain: no lock rows, no WTPG nodes, no leaked arena slots.
pub fn assert_no_retained_state(e: &Engine, ctx: &str) {
    let tel = e.scheduler().telemetry();
    assert_eq!(tel.locks_held, 0, "{ctx}: lock rows leaked after drain");
    assert_eq!(tel.wtpg_nodes, 0, "{ctx}: WTPG nodes leaked after drain");
    assert_eq!(
        tel.wtpg_slots - tel.wtpg_free,
        0,
        "{ctx}: WTPG arena slots leaked after drain"
    );
    if let Some(audit) = e.scheduler().audit_invariant() {
        audit.unwrap_or_else(|err| panic!("{ctx}: structural invariant broken: {err}"));
    }
}

//! Smoke tests of the experiment harness itself: every artifact
//! regenerates at reduced fidelity with the right table shape, and the
//! drivers behave monotonically.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::driver;
use batchsched::experiments::{run_artifact, ExpOptions, ARTIFACT_IDS};
use batchsched::parallel::ExecCtx;
use batchsched::sched::SchedulerKind;

fn tiny() -> ExpOptions {
    let mut o = ExpOptions::quick();
    o.horizon = Duration::from_secs(100);
    o.bisect_iters = 2;
    o.mpl_grid = vec![8];
    o
}

#[test]
fn every_artifact_regenerates() {
    let opts = tiny();
    for id in ARTIFACT_IDS {
        let a = run_artifact(id, &opts);
        assert_eq!(a.id, id);
        assert!(!a.table.rows.is_empty(), "{id}: empty table");
        let width = a.table.header.len();
        assert!(a.table.rows.iter().all(|r| r.len() == width));
        // Render and CSV must not panic and must contain the title/header.
        let text = a.table.render();
        assert!(text.contains(&a.table.title));
        let csv = a.table.to_csv();
        assert_eq!(csv.lines().count(), a.table.rows.len() + 1);
    }
}

#[test]
fn bisection_is_bounded_by_probe_range() {
    let mut cfg = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
    cfg.horizon = Duration::from_secs(300);
    let r = driver::throughput_at_rt(&ExecCtx::serial(), &cfg, 70.0, 0.05, 1.4, 3);
    assert!(r.lambda_tps >= 0.05 && r.lambda_tps <= 1.4);
    assert!(r.throughput_tps() <= r.lambda_tps + 1e-9);
}

#[test]
fn rt_speedup_definition() {
    // Speedup compares DD=1 vs DD=k of the *same* configuration.
    let mut cfg = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
    cfg.horizon = Duration::from_secs(400);
    cfg.lambda_tps = 0.3;
    let ctx = ExecCtx::serial();
    let s1 = driver::rt_speedup(&ctx, &cfg, 1);
    assert!(
        (s1 - 1.0).abs() < 1e-9,
        "speedup at DD=1 must be 1, got {s1}"
    );
    let s8 = driver::rt_speedup(&ctx, &cfg, 8);
    assert!(s8 > 2.0, "light-load DD=8 speedup {s8}");
}

#[test]
fn best_mpl_never_picks_worse_than_grid() {
    let mut cfg = SimConfig::new(SchedulerKind::C2pl, WorkloadKind::Exp1 { num_files: 16 });
    cfg.horizon = Duration::from_secs(400);
    cfg.lambda_tps = 1.0;
    let choice = driver::best_mpl(&ExecCtx::serial(), &cfg, &[2, 8, 32]);
    assert!(!choice.all_saturated);
    let (m, best) = (choice.mpl, choice.report);
    for probe in [2u32, 8, 32] {
        let r = batchsched::sim::Simulator::run(&cfg.clone().with_mpl(probe));
        if r.completed > 0 && best.completed > 0 {
            assert!(
                best.mean_rt_secs() <= r.mean_rt_secs() + 1e-9,
                "best_mpl chose {m} (RT {:.1}) but mpl={probe} has RT {:.1}",
                best.mean_rt_secs(),
                r.mean_rt_secs()
            );
        }
    }
}

#[test]
fn sweep_lambda_returns_one_report_per_rate() {
    let mut cfg = SimConfig::new(SchedulerKind::Asl, WorkloadKind::Exp1 { num_files: 16 });
    cfg.horizon = Duration::from_secs(200);
    let rs = driver::sweep_lambda(&ExecCtx::new(2), &cfg, &[0.2, 0.4, 0.6]);
    assert_eq!(rs.len(), 3);
    assert!((rs[0].lambda_tps - 0.2).abs() < 1e-12);
    assert!((rs[2].lambda_tps - 0.6).abs() < 1e-12);
}

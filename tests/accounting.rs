//! Conservation and accounting invariants of the simulator: no
//! transaction is lost, utilizations are consistent with completed work,
//! and the multiprogramming throttle is respected.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn cfg(kind: SchedulerKind, lambda: f64) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = lambda;
    c.horizon = Duration::from_secs(800);
    c
}

#[test]
fn no_transaction_is_lost() {
    for kind in SchedulerKind::PAPER_SET {
        for lambda in [0.3, 0.9, 1.3] {
            let r = Simulator::run(&cfg(kind, lambda));
            // arrived = completed + queued (never started or restarting)
            //         + in flight (started, uncommitted at the horizon).
            assert!(
                r.completed + r.queued_at_end <= r.arrived,
                "{kind} λ={lambda}: more finished+queued than arrived"
            );
            let in_flight = r.arrived - r.completed - r.queued_at_end;
            // In-flight transactions are bounded by what ever started.
            assert!(
                in_flight <= r.started + 5,
                "{kind} λ={lambda}: impossible in-flight count {in_flight} (started {})",
                r.started
            );
        }
    }
}

#[test]
fn light_load_completes_everything() {
    for kind in SchedulerKind::PAPER_SET {
        let r = Simulator::run(&cfg(kind, 0.05));
        // At 5 % of capacity every arrival completes except the handful
        // near the horizon.
        assert!(
            r.arrived - r.completed <= 3,
            "{kind}: {} of {} unfinished at light load",
            r.arrived - r.completed,
            r.arrived
        );
        assert_eq!(r.restarts, 0, "{kind}: restarts at light load");
    }
}

#[test]
fn utilization_bounds() {
    for kind in SchedulerKind::PAPER_SET {
        let r = Simulator::run(&cfg(kind, 1.0));
        assert!((0.0..=1.0).contains(&r.cn_utilization), "{kind} CN util");
        assert!((0.0..=1.0).contains(&r.dpn_utilization), "{kind} DPN util");
        // Completed work alone gives a lower bound on DPN utilization:
        // each Pattern-1 commit consumed 7.2 node-seconds of scans.
        let lower = (r.completed as f64 * 7.2) / (8.0 * r.horizon_secs);
        assert!(
            r.dpn_utilization >= lower * 0.95,
            "{kind}: DPN util {:.3} below committed-work bound {:.3}",
            r.dpn_utilization,
            lower
        );
    }
}

#[test]
fn mpl_cap_is_respected() {
    for mpl in [1u32, 4, 16] {
        let r = Simulator::run(&cfg(SchedulerKind::C2pl, 1.2).with_mpl(mpl));
        assert!(
            r.mean_live <= mpl as f64 + 1e-9,
            "mpl={mpl}: mean live {} exceeds the cap",
            r.mean_live
        );
    }
}

#[test]
fn restarts_only_under_opt() {
    for kind in SchedulerKind::PAPER_SET {
        let r = Simulator::run(&cfg(kind, 1.0));
        if kind == SchedulerKind::Opt {
            assert!(r.restarts > 0, "OPT at λ=1.0 must abort sometimes");
        } else {
            assert_eq!(r.restarts, 0, "{kind} must never roll back");
        }
    }
}

#[test]
fn throughput_never_exceeds_capacity() {
    // 8 nodes / 7.2 objects per transaction ≈ 1.11 TPS hard ceiling.
    for kind in SchedulerKind::PAPER_SET {
        for dd in [1, 8] {
            let mut c = cfg(kind, 1.4);
            c.dd = dd;
            let r = Simulator::run(&c);
            assert!(
                r.throughput_tps() <= 1.16,
                "{kind} DD={dd}: throughput {:.3} above machine capacity",
                r.throughput_tps()
            );
        }
    }
}

#[test]
fn cn_costs_show_up_in_utilization() {
    // GOW charges chaintime=30ms per contended request: its CN
    // utilization must clearly exceed NODC's at the same load.
    let gow = Simulator::run(&cfg(SchedulerKind::Gow, 0.9));
    let nodc = Simulator::run(&cfg(SchedulerKind::Nodc, 0.9));
    assert!(
        gow.cn_utilization > nodc.cn_utilization * 2.0,
        "GOW CN util {:.3} should dwarf NODC's {:.3}",
        gow.cn_utilization,
        nodc.cn_utilization
    );
}

//! Chaos/differential harness: property tests sweeping random
//! seed + fault-plan combinations against scheduler-independent
//! invariants, plus a differential fuzzer running all six schedulers on
//! the same seeded workload and fault plan and cross-checking the
//! NODC-bound and accounting relations.
//!
//! Every assertion message carries the failing case seed so a failure
//! can be replayed exactly: `random_plan` and the config derive all
//! randomness from it.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::rng::Xoshiro256;
use batchsched::des::time::SimTime;
use batchsched::des::Duration;
use batchsched::fault::{CnStall, CrashFault, DegradedMode, FaultPlan, LinkFaults, RetryPolicy};
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use batchsched::wtpg::oracle::is_serializable;

/// Cases per scheduler in the property sweep.
const CASES: u64 = 200;

/// Draw a random-but-reproducible fault plan over a `horizon_secs` run.
fn random_plan(rng: &mut Xoshiro256, horizon_secs: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.seed = rng.next_u64();
    for _ in 0..rng.next_range(4) {
        plan.crashes.push(CrashFault {
            node: rng.next_range(8) as u32,
            at: SimTime::from_millis(rng.next_range(horizon_secs * 800) + 1),
            down_for: Duration::from_millis(rng.next_range(30_000) + 1_000),
        });
    }
    if rng.next_range(2) == 1 {
        plan.cn_stalls.push(CnStall {
            at: SimTime::from_millis(rng.next_range(horizon_secs * 1000)),
            stall_for: Duration::from_millis(rng.next_range(8_000) + 500),
        });
    }
    if rng.next_range(2) == 1 {
        plan.link = LinkFaults {
            delay: Duration::from_millis(rng.next_range(20)),
            loss_per_mille: rng.next_range(80) as u32,
            redeliver_after: Duration::from_millis(rng.next_range(1500) + 100),
        };
    }
    if rng.next_range(4) == 0 {
        plan.mtbf = Some(Duration::from_secs(rng.next_range(200) + 40));
        plan.mttr = Duration::from_secs(rng.next_range(20) + 5);
    }
    plan.retry = RetryPolicy {
        base_delay: Duration::from_millis(rng.next_range(3_000) + 200),
        max_delay: Duration::from_secs(20),
        max_attempts: rng.next_range(5) as u32 + 1,
    };
    plan.degraded = if rng.next_range(2) == 0 {
        DegradedMode::Reroute
    } else {
        DegradedMode::Hold
    };
    plan
}

fn case_config(kind: SchedulerKind, case_seed: u64) -> SimConfig {
    let mut rng = Xoshiro256::seed_from_u64(case_seed);
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.seed = rng.next_u64();
    c.lambda_tps = [0.4, 0.7, 1.0][rng.next_index(3)];
    c.horizon = Duration::from_secs(60);
    c.with_faults(random_plan(&mut rng, 60))
}

/// The invariants every scheduler must uphold under every fault plan.
fn check_case(kind: SchedulerKind, case_seed: u64) {
    let c = case_config(kind, case_seed);
    let mut sim = Simulator::new(&c);
    sim.run_to_horizon();
    let r = sim.report();
    let ctx = format!("{kind} case_seed={case_seed:#x} plan={:?}", c.faults);
    // Conservation: arrivals = committed + permanently killed + tracked.
    assert_eq!(
        r.arrived,
        r.completed + r.killed + sim.in_flight(),
        "{ctx}: conservation violated"
    );
    // Cause counters partition the abort total.
    assert_eq!(
        r.restarts,
        r.aborts_validation + r.aborts_scheduler + r.aborts_fault,
        "{ctx}: abort-cause partition violated"
    );
    // No WTPG arena slot may leak when attempts die to crashes.
    let tel = sim.scheduler().telemetry();
    assert_eq!(
        tel.wtpg_slots - tel.wtpg_free,
        tel.wtpg_nodes,
        "{ctx}: WTPG arena slot leak"
    );
    // No locks held by dead transactions: all rows belong to tracked
    // transactions (≤ 3 locks per Pattern-1 batch).
    assert!(
        tel.locks_held as u64 <= 3 * sim.in_flight(),
        "{ctx}: {} lock rows exceed what {} tracked transactions can hold",
        tel.locks_held,
        sim.in_flight()
    );
    assert!(
        (0.0..=1.0).contains(&r.availability),
        "{ctx}: availability {} out of range",
        r.availability
    );
    // Serializability of the committed history under faults. NODC is
    // non-serializable by design (the paper's upper bound).
    if kind != SchedulerKind::Nodc {
        let constraints = sim.drain_constraints();
        assert!(
            is_serializable(&constraints),
            "{ctx}: cyclic precedence history ({} constraints)",
            constraints.len()
        );
    }
}

fn sweep(kind: SchedulerKind, salt: u64) {
    for case in 0..CASES {
        check_case(
            kind,
            salt.wrapping_add(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }
}

#[test]
fn chaos_sweep_nodc() {
    sweep(SchedulerKind::Nodc, 0x01);
}

#[test]
fn chaos_sweep_asl() {
    sweep(SchedulerKind::Asl, 0x02);
}

#[test]
fn chaos_sweep_gow() {
    sweep(SchedulerKind::Gow, 0x03);
}

#[test]
fn chaos_sweep_low() {
    sweep(SchedulerKind::Low(2), 0x04);
}

#[test]
fn chaos_sweep_c2pl() {
    sweep(SchedulerKind::C2pl, 0x05);
}

#[test]
fn chaos_sweep_opt() {
    sweep(SchedulerKind::Opt, 0x06);
}

/// Differential fuzzer: one workload + one fault plan, all six
/// schedulers. Checks relations that must hold *across* schedulers.
#[test]
fn differential_same_plan_across_schedulers() {
    for case in 0..30u64 {
        let case_seed = 0xD1FF_0000u64 + case;
        let mut rng = Xoshiro256::seed_from_u64(case_seed);
        let seed = rng.next_u64();
        let plan = random_plan(&mut rng, 120);
        let mut reports = Vec::new();
        for kind in SchedulerKind::PAPER_SET {
            let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            c.seed = seed;
            c.lambda_tps = 0.6;
            c.horizon = Duration::from_secs(120);
            let c = c.with_faults(plan.clone());
            let mut sim = Simulator::new(&c);
            sim.run_to_horizon();
            let r = sim.report();
            assert_eq!(
                r.arrived,
                r.completed + r.killed + sim.in_flight(),
                "{kind} case_seed={case_seed:#x}: conservation violated"
            );
            reports.push((kind, r));
        }
        let (_, nodc) = &reports[0];
        for (kind, r) in &reports {
            // Identical seed ⇒ identical arrival stream, regardless of
            // scheduler.
            assert_eq!(
                r.arrived, nodc.arrived,
                "{kind} case_seed={case_seed:#x}: arrival stream diverged"
            );
            // The crash/recovery timeline is scheduler-independent, so
            // availability must match bit-for-bit.
            assert_eq!(
                r.availability, nodc.availability,
                "{kind} case_seed={case_seed:#x}: availability diverged"
            );
            // NODC runs with no concurrency control at all: no scheduler
            // may outrun it by more than boundary noise.
            let slack = 10 + nodc.completed / 5;
            assert!(
                r.completed <= nodc.completed + slack,
                "{kind} case_seed={case_seed:#x}: completed {} beats the NODC bound {}",
                r.completed,
                nodc.completed
            );
        }
    }
}

/// Same (seed, plan, scheduler) must reproduce the identical report —
/// fault injection is part of the determinism contract.
#[test]
fn chaos_runs_are_deterministic() {
    for case in 0..10u64 {
        let case_seed = 0xDE7E_0000u64 + case;
        for kind in [SchedulerKind::Nodc, SchedulerKind::Gow, SchedulerKind::Opt] {
            let c = case_config(kind, case_seed);
            let a = Simulator::run(&c);
            let b = Simulator::run(&c);
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{kind} case_seed={case_seed:#x}: nondeterministic under faults"
            );
        }
    }
}

//! Chaos/differential harness: property tests sweeping random
//! seed + fault-plan combinations against scheduler-independent
//! invariants, plus a differential fuzzer running all eight schedulers
//! on the same seeded workload and fault plan and cross-checking the
//! NODC-bound and accounting relations.
//!
//! The workload/plan/invariant machinery lives in `harness.rs`, shared
//! with the scheduler-conformance suite. Every assertion message
//! carries the failing case seed so a failure can be replayed exactly:
//! `harness::random_plan` and the config derive all randomness from it.

#[path = "harness.rs"]
mod harness;

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::rng::Xoshiro256;
use batchsched::des::Duration;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;
use harness::{case_config, check_case, random_plan};

/// Cases per scheduler in the property sweep.
const CASES: u64 = 200;

fn sweep(kind: SchedulerKind, salt: u64) {
    for case in 0..CASES {
        check_case(
            kind,
            salt.wrapping_add(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }
}

#[test]
fn chaos_sweep_nodc() {
    sweep(SchedulerKind::Nodc, 0x01);
}

#[test]
fn chaos_sweep_asl() {
    sweep(SchedulerKind::Asl, 0x02);
}

#[test]
fn chaos_sweep_gow() {
    sweep(SchedulerKind::Gow, 0x03);
}

#[test]
fn chaos_sweep_low() {
    sweep(SchedulerKind::Low(2), 0x04);
}

#[test]
fn chaos_sweep_c2pl() {
    sweep(SchedulerKind::C2pl, 0x05);
}

#[test]
fn chaos_sweep_opt() {
    sweep(SchedulerKind::Opt, 0x06);
}

#[test]
fn chaos_sweep_dgcc() {
    sweep(SchedulerKind::Dgcc, 0x07);
}

/// Brook's sweep doubles as the corpus-wide zero-deadlock check:
/// `check_case` asserts `aborts_scheduler == 0` for Brook on every
/// case, so 200 random fault plans must finish without a single
/// scheduler-induced restart.
#[test]
fn chaos_sweep_brook() {
    sweep(SchedulerKind::Brook, 0x08);
}

/// Differential fuzzer: one workload + one fault plan, all eight
/// schedulers. Checks relations that must hold *across* schedulers.
#[test]
fn differential_same_plan_across_schedulers() {
    for case in 0..30u64 {
        let case_seed = 0xD1FF_0000u64 + case;
        let mut rng = Xoshiro256::seed_from_u64(case_seed);
        let seed = rng.next_u64();
        let plan = random_plan(&mut rng, 120);
        let mut reports = Vec::new();
        for kind in SchedulerKind::EXTENDED_SET {
            let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
            c.seed = seed;
            c.lambda_tps = 0.6;
            c.horizon = Duration::from_secs(120);
            let c = c.with_faults(plan.clone());
            let mut sim = Simulator::new(&c);
            sim.run_to_horizon();
            let r = sim.report();
            assert_eq!(
                r.arrived,
                r.completed + r.killed + sim.in_flight(),
                "{kind} case_seed={case_seed:#x}: conservation violated"
            );
            reports.push((kind, r));
        }
        let (_, nodc) = &reports[0];
        for (kind, r) in &reports {
            // Identical seed ⇒ identical arrival stream, regardless of
            // scheduler.
            assert_eq!(
                r.arrived, nodc.arrived,
                "{kind} case_seed={case_seed:#x}: arrival stream diverged"
            );
            // The crash/recovery timeline is scheduler-independent, so
            // availability must match bit-for-bit.
            assert_eq!(
                r.availability, nodc.availability,
                "{kind} case_seed={case_seed:#x}: availability diverged"
            );
            // NODC runs with no concurrency control at all: no scheduler
            // may outrun it by more than boundary noise.
            let slack = 10 + nodc.completed / 5;
            assert!(
                r.completed <= nodc.completed + slack,
                "{kind} case_seed={case_seed:#x}: completed {} beats the NODC bound {}",
                r.completed,
                nodc.completed
            );
            // Brook never aborts of its own accord, on any shared plan.
            if *kind == SchedulerKind::Brook {
                assert_eq!(
                    r.aborts_scheduler, 0,
                    "case_seed={case_seed:#x}: Brook-2PL scheduler abort"
                );
            }
        }
    }
}

/// Same (seed, plan, scheduler) must reproduce the identical report —
/// fault injection is part of the determinism contract.
#[test]
fn chaos_runs_are_deterministic() {
    for case in 0..10u64 {
        let case_seed = 0xDE7E_0000u64 + case;
        for kind in [
            SchedulerKind::Nodc,
            SchedulerKind::Gow,
            SchedulerKind::Opt,
            SchedulerKind::Dgcc,
            SchedulerKind::Brook,
        ] {
            let c = case_config(kind, case_seed);
            let a = Simulator::run(&c);
            let b = Simulator::run(&c);
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{kind} case_seed={case_seed:#x}: nondeterministic under faults"
            );
        }
    }
}

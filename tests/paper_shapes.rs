//! Qualitative reproduction tests: the paper's §5 observations must hold
//! on reduced-fidelity runs (shorter horizon, single seed). Absolute
//! numbers are checked and recorded in EXPERIMENTS.md by the `repro`
//! binary; these tests pin the *shape* so regressions are caught by
//! `cargo test`.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::metrics::SimReport;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn run(kind: SchedulerKind, workload: WorkloadKind, lambda: f64, dd: u32) -> SimReport {
    let mut cfg = SimConfig::new(kind, workload);
    cfg.lambda_tps = lambda;
    cfg.dd = dd;
    cfg.horizon = Duration::from_secs(1200);
    Simulator::run(&cfg)
}

fn exp1(kind: SchedulerKind, lambda: f64, dd: u32) -> SimReport {
    run(kind, WorkloadKind::Exp1 { num_files: 16 }, lambda, dd)
}

/// §5.1.1 characteristic #1: with bulk updates, data contention
/// saturates every real scheduler far below NODC's resource saturation.
#[test]
fn data_contention_saturates_before_resources() {
    let nodc = exp1(SchedulerKind::Nodc, 0.9, 1);
    for kind in [
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
    ] {
        let r = exp1(kind, 0.9, 1);
        assert!(
            r.mean_rt_secs() > nodc.mean_rt_secs(),
            "{kind}: RT {} should exceed NODC's {}",
            r.mean_rt_secs(),
            nodc.mean_rt_secs()
        );
    }
}

/// §5.1.2: ASL, GOW and LOW avoid chains of blocking — their throughput
/// under contention beats C2PL and OPT clearly (paper: 1.6–2.0 ×).
#[test]
fn wtpg_and_asl_beat_c2pl_and_opt() {
    let lambda = 0.65;
    let good: Vec<SimReport> = [
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
    ]
    .into_iter()
    .map(|k| exp1(k, lambda, 1))
    .collect();
    let c2pl = exp1(SchedulerKind::C2pl, lambda, 1);
    let opt = exp1(SchedulerKind::Opt, lambda, 1);
    for r in &good {
        assert!(
            r.throughput_tps() > 1.3 * c2pl.throughput_tps(),
            "{}: tput {:.2} not clearly above C2PL {:.2}",
            r.scheduler,
            r.throughput_tps(),
            c2pl.throughput_tps()
        );
        assert!(
            r.throughput_tps() > 1.3 * opt.throughput_tps(),
            "{}: tput {:.2} not clearly above OPT {:.2}",
            r.scheduler,
            r.throughput_tps(),
            opt.throughput_tps()
        );
    }
}

/// Table 2 trend: contention falls as NumFiles grows, so every locking
/// scheduler's throughput improves from 8 to 64 files.
#[test]
fn more_files_mean_less_contention() {
    for kind in [
        SchedulerKind::Asl,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
    ] {
        let tight = run(kind, WorkloadKind::Exp1 { num_files: 8 }, 0.6, 1);
        let loose = run(kind, WorkloadKind::Exp1 { num_files: 64 }, 0.6, 1);
        assert!(
            loose.mean_rt_secs() < tight.mean_rt_secs(),
            "{kind}: RT at 64 files ({:.1}) should beat 8 files ({:.1})",
            loose.mean_rt_secs(),
            tight.mean_rt_secs()
        );
    }
}

/// §5.1.3 observations #3/#4: declustering must shorten response times
/// for every scheduler, and ASL/GOW/LOW gain more than OPT does.
#[test]
fn declustering_speeds_up_response_time() {
    let lambda = 0.9;
    for kind in [
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Nodc,
    ] {
        let dd1 = exp1(kind, lambda, 1);
        let dd8 = exp1(kind, lambda, 8);
        let speedup = dd1.mean_rt_secs() / dd8.mean_rt_secs();
        assert!(
            speedup > 1.5,
            "{kind}: DD=8 speedup only {speedup:.2} (RT {} -> {})",
            dd1.mean_rt_secs(),
            dd8.mean_rt_secs()
        );
    }
    // OPT's speedup is the worst of the six (restarts saturate the
    // machine regardless of parallelism).
    let opt1 = exp1(SchedulerKind::Opt, lambda, 1);
    let opt8 = exp1(SchedulerKind::Opt, lambda, 8);
    let opt_speedup = opt1.mean_rt_secs() / opt8.mean_rt_secs();
    let asl1 = exp1(SchedulerKind::Asl, lambda, 1);
    let asl8 = exp1(SchedulerKind::Asl, lambda, 8);
    let asl_speedup = asl1.mean_rt_secs() / asl8.mean_rt_secs();
    assert!(
        asl_speedup > opt_speedup,
        "ASL speedup {asl_speedup:.2} must exceed OPT's {opt_speedup:.2}"
    );
}

/// §5.2 / Table 4: on the hot-set workload LOW starts more transactions
/// than ASL and ends up with clearly better response time; ASL is the
/// worst locking scheduler there.
#[test]
fn hot_set_ranks_low_over_asl() {
    let lambda = 1.0;
    let low = run(SchedulerKind::Low(2), WorkloadKind::Exp2, lambda, 1);
    let asl = run(SchedulerKind::Asl, WorkloadKind::Exp2, lambda, 1);
    let gow = run(SchedulerKind::Gow, WorkloadKind::Exp2, lambda, 1);
    assert!(
        low.mean_rt_secs() < asl.mean_rt_secs(),
        "LOW RT {:.1} must beat ASL RT {:.1} on the hot set",
        low.mean_rt_secs(),
        asl.mean_rt_secs()
    );
    assert!(
        low.mean_rt_secs() < gow.mean_rt_secs(),
        "LOW RT {:.1} must beat GOW RT {:.1} on the hot set",
        low.mean_rt_secs(),
        gow.mean_rt_secs()
    );
    assert!(
        low.throughput_tps() >= gow.throughput_tps(),
        "LOW tput must be at least GOW's on the hot set"
    );
}

/// §5.3 observation #1: GOW and LOW tolerate very wrong declarations —
/// at σ = 1 they still clearly beat C2PL.
#[test]
fn sensitivity_stays_above_c2pl() {
    let lambda = 0.55;
    let c2pl = exp1(SchedulerKind::C2pl, lambda, 1);
    for kind in [SchedulerKind::Gow, SchedulerKind::Low(2)] {
        let noisy = run(
            kind,
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 1.0,
            },
            lambda,
            1,
        );
        assert!(
            noisy.mean_rt_secs() < c2pl.mean_rt_secs(),
            "{kind} at σ=1: RT {:.1} must stay below C2PL's {:.1}",
            noisy.mean_rt_secs(),
            c2pl.mean_rt_secs()
        );
    }
}

/// §5.3 observation #2: GOW is less sensitive to estimation error than
/// LOW at DD = 1 (the chain-form constraint shields it).
#[test]
fn gow_less_sensitive_than_low() {
    let lambda = 0.6;
    let degradation = |kind: SchedulerKind| {
        let clean = exp1(kind, lambda, 1);
        let noisy = run(
            kind,
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 10.0,
            },
            lambda,
            1,
        );
        noisy.mean_rt_secs() / clean.mean_rt_secs()
    };
    let gow_ratio = degradation(SchedulerKind::Gow);
    let low_ratio = degradation(SchedulerKind::Low(2));
    assert!(
        gow_ratio < low_ratio * 1.25,
        "GOW degradation {gow_ratio:.2} should not exceed LOW's {low_ratio:.2}"
    );
}

/// Machine capacity: NODC saturates near 8 nodes / 7.2 objects ≈ 1.11
/// TPS (the paper's footnote 5 reports ~95 % utilization at 1.04 TPS).
#[test]
fn nodc_capacity_matches_model() {
    // Just below the 8/7.2 ≈ 1.11 TPS ceiling the machine keeps up…
    let near = exp1(SchedulerKind::Nodc, 1.05, 1);
    assert!(
        near.throughput_tps() > 0.90,
        "NODC at λ=1.05 completed only {:.3} TPS",
        near.throughput_tps()
    );
    // …and beyond it the DPNs saturate while committed throughput stays
    // at or under capacity (the shortfall is work parked in the growing
    // population of half-done transactions).
    let over = exp1(SchedulerKind::Nodc, 1.4, 1);
    assert!(
        over.dpn_utilization > 0.93,
        "DPNs must saturate, got {:.2}",
        over.dpn_utilization
    );
    assert!(
        over.throughput_tps() <= 1.16,
        "throughput {:.3} above the machine's capacity",
        over.throughput_tps()
    );
}

/// C2PL+M: an mpl throttle must not reduce C2PL's peak throughput
/// (paper: "C2PL+M has better response time than C2PL, but they have
/// the same peak-throughput") and improves completions under overload.
#[test]
fn mpl_throttle_helps_c2pl_under_overload() {
    let mut raw = SimConfig::new(SchedulerKind::C2pl, WorkloadKind::Exp1 { num_files: 16 });
    raw.lambda_tps = 1.2;
    raw.horizon = Duration::from_secs(1200);
    let unlimited = Simulator::run(&raw);
    let throttled = Simulator::run(&raw.clone().with_mpl(8));
    assert!(
        throttled.completed > unlimited.completed,
        "mpl=8 completed {} must beat mpl=∞'s {}",
        throttled.completed,
        unlimited.completed
    );
}

//! Sharded execution must not change results: a single simulation run
//! split across worker shards with the conservative time-window barrier
//! must be byte-identical to the serial engine — over every paper
//! artifact, at mid-run snapshot granularity, and across a
//! checkpoint-from-sharded → restore-to-serial hop.
//!
//! This holds because every scheduler and CN decision still executes on
//! one deterministic thread at the window frontier; shards only pump
//! DPN-local slice rotations inside the proven-safe window, and the
//! barrier re-stamps surviving slice-end events in the serial engine's
//! (time, insertion-seq) total order.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::{Duration, SimTime};
use batchsched::engine::{Engine, Snapshot};
use batchsched::experiments::{self, ExpOptions, ARTIFACT_IDS};
use batchsched::fault::FaultPlan;
use batchsched::parallel::ExecCtx;
use batchsched::sim::Simulator;
use bds_sched::SchedulerKind;

/// FNV-1a 64-bit, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The frozen seed-engine hashes from `tests/parallel_determinism.rs`:
/// sharding rides under the same contract as `--jobs` parallelism, so a
/// sharded rendering must reproduce the very same bytes. Regenerate with
/// `cargo run --release --example golden_hashes` only on an intentional
/// output change (and update both copies).
const GOLDEN: [(&str, u64); 12] = [
    ("fig8", 0xcd26cd3df8091310),
    ("table2", 0xd134324c420ce3ed),
    ("fig9", 0xfbd69094188e993c),
    ("table3", 0x1a35c8cc818750e6),
    ("fig10", 0xb032eaca38824799),
    ("fig11", 0x9d893e80b4cca078),
    ("table4", 0x073f6876f26412f9),
    ("fig12", 0xda21eafa3dd26982),
    ("fig13", 0x54ecc37c9d5d5325),
    ("table5", 0xf2c13016c980e8ea),
    // Extended-set artifacts (DGCC + BROOK columns); see
    // tests/parallel_determinism.rs.
    ("fig8x", 0xa7627f7f0b500e46),
    ("fig10x", 0xd96c06ed62640cc6),
];

/// Tiny deterministic generator for randomized cut points — the test
/// must not depend on wall-clock entropy.
fn pick(seed: u64, bound: u64) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    1 + x % bound.max(1)
}

const CRASHY: &str = "crash=1@40x20,crash=4@90x15,retry=1000:8000:4";

fn cfg(kind: SchedulerKind, faults: bool) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = 0.6;
    c.horizon = Duration::from_secs(300);
    if faults {
        c = c.with_faults(FaultPlan::parse(CRASHY).expect("plan parses"));
    }
    c
}

/// Every quick-mode paper artifact rendered at shards = 1, 2 and 8 must
/// be byte-identical — to each other and to the frozen golden hashes the
/// `--jobs` determinism test pins, so both parallelism axes provably
/// produce the same bytes.
#[test]
fn artifacts_identical_at_shards_1_2_and_8() {
    let opts = ExpOptions::quick();
    let contexts = [
        ExecCtx::new(1).with_shards(1),
        ExecCtx::new(1).with_shards(2),
        ExecCtx::new(1).with_shards(8),
    ];
    for (i, id) in ARTIFACT_IDS.iter().enumerate() {
        let renders: Vec<String> = contexts
            .iter()
            .map(|ctx| {
                experiments::run_artifact_with(id, &opts, ctx)
                    .table
                    .render()
            })
            .collect();
        assert_eq!(
            renders[0], renders[1],
            "artifact '{id}' differs between shards=1 and shards=2"
        );
        assert_eq!(
            renders[0], renders[2],
            "artifact '{id}' differs between shards=1 and shards=8"
        );
        let (gid, want) = GOLDEN[i];
        assert_eq!(gid, *id, "golden table out of sync with ARTIFACT_IDS");
        assert_eq!(
            fnv1a(renders[0].as_bytes()),
            want,
            "artifact '{id}' diverged from the seed engine's output"
        );
    }
    // Every context must have simulated the same set of distinct points.
    assert_eq!(contexts[0].cache().len(), contexts[1].cache().len());
    assert_eq!(contexts[0].cache().len(), contexts[2].cache().len());
}

/// A sharded run paused at an arbitrary sync point must leave the engine
/// in *exactly* the serial engine's state — compared through the full
/// snapshot wire format, not just the report. Cut times are drawn from a
/// deterministic generator so the probed window boundaries vary without
/// wall-clock entropy.
#[test]
fn mid_run_snapshots_match_serial_at_randomized_cuts() {
    for (si, (kind, faults)) in [(SchedulerKind::Gow, false), (SchedulerKind::C2pl, true)]
        .into_iter()
        .enumerate()
    {
        let c = cfg(kind, faults);
        let horizon_ms = c.horizon.as_millis();
        for probe in 0..3u64 {
            let cut = pick(si as u64 * 31 + probe * 7 + 1, horizon_ms - 1);
            let shards = [2, 3, 8][probe as usize % 3];

            let mut serial = Engine::new(&c);
            serial.enable_checkpointing();
            serial.run_until(SimTime::from_millis(cut));

            let mut sharded = Engine::new(&c);
            sharded.enable_checkpointing();
            sharded.run_until_sharded(SimTime::from_millis(cut), shards);

            assert_eq!(
                serial.snapshot().to_json(),
                sharded.snapshot().to_json(),
                "{kind:?} faults={faults}: snapshot at t={cut}ms differs \
                 between serial and shards={shards}"
            );
        }
    }
}

/// Checkpoint-from-sharded → restore-to-serial identity: a snapshot
/// taken after a *sharded* partial run, restored into a plain serial
/// engine and run out, must reproduce the uninterrupted serial report —
/// for every scheduler of the paper, with and without fault injection.
#[test]
fn checkpoint_from_sharded_restores_to_serial_identity() {
    for faults in [false, true] {
        for (i, kind) in SchedulerKind::PAPER_SET.into_iter().enumerate() {
            let c = cfg(kind, faults);
            let bulk = Simulator::run(&c);
            let cut = pick(i as u64 + u64::from(faults) * 97, c.horizon.as_millis() - 1);
            let shards = 2 + (i % 3); // 2, 3, 4 across the set

            let mut e = Engine::new(&c);
            e.enable_checkpointing();
            e.run_until_sharded(SimTime::from_millis(cut), shards);
            let text = e.snapshot().to_json();
            let back = Snapshot::from_json(&text).expect("snapshot JSON parses");

            let mut restored = Engine::restore(&c, &back);
            restored.run_to_horizon();
            assert_eq!(
                restored.report(),
                bulk,
                "{kind:?} faults={faults} cut={cut}ms shards={shards}: \
                 restore-to-serial diverged from uninterrupted run"
            );

            // The engine that produced the snapshot also finishes
            // identically when resumed sharded.
            e.run_to_horizon_sharded(shards);
            assert_eq!(
                e.report(),
                bulk,
                "{kind:?} faults={faults}: snapshotting perturbed the sharded run"
            );
        }
    }
}

//! Accounting invariants under fault injection: no transaction is lost
//! (arrivals = commits + permanent kills + in-flight), no lock rows or
//! WTPG arena slots leak when attempts are destroyed by crashes, and
//! the abort counters partition cleanly by cause.

use batchsched::config::{SimConfig, WorkloadKind};
use batchsched::des::Duration;
use batchsched::fault::FaultPlan;
use batchsched::sched::SchedulerKind;
use batchsched::sim::Simulator;

fn cfg(kind: SchedulerKind, lambda: f64, plan: &str) -> SimConfig {
    let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
    c.lambda_tps = lambda;
    c.horizon = Duration::from_secs(400);
    c.with_faults(FaultPlan::parse(plan).expect("plan parses"))
}

/// Run and check every invariant that must hold for *any* scheduler and
/// *any* fault plan.
fn check(kind: SchedulerKind, lambda: f64, plan: &str) {
    let c = cfg(kind, lambda, plan);
    let mut sim = Simulator::new(&c);
    sim.run_to_horizon();
    let r = sim.report();
    let ctx = format!("{kind} λ={lambda} plan={plan:?}");
    // Conservation: every arrival is committed, permanently killed, or
    // still tracked (queued, executing, or awaiting restart).
    assert_eq!(
        r.arrived,
        r.completed + r.killed + sim.in_flight(),
        "{ctx}: conservation violated (arrived {} completed {} killed {} in-flight {})",
        r.arrived,
        r.completed,
        r.killed,
        sim.in_flight()
    );
    // The abort causes partition the legacy restart counter.
    assert_eq!(
        r.restarts,
        r.aborts_validation + r.aborts_scheduler + r.aborts_fault,
        "{ctx}: abort causes do not partition restarts"
    );
    assert!(
        r.killed <= r.aborts_fault,
        "{ctx}: kills without fault aborts"
    );
    assert!(
        (0.0..=1.0).contains(&r.availability),
        "{ctx}: availability {} out of range",
        r.availability
    );
    // WTPG arena leak check: every allocated slot is either free or a
    // live graph node — a killed transaction's slot must return to the
    // free list exactly once (PR 3's arena reuse path).
    let tel = sim.scheduler().telemetry();
    assert_eq!(
        tel.wtpg_slots - tel.wtpg_free,
        tel.wtpg_nodes,
        "{ctx}: WTPG arena leaked slots ({} allocated, {} free, {} nodes)",
        tel.wtpg_slots,
        tel.wtpg_free,
        tel.wtpg_nodes
    );
    // Lock rows must be attributable to tracked transactions. Pattern-1
    // batches hold at most 3 locks each.
    assert!(
        tel.locks_held as u64 <= 3 * sim.in_flight(),
        "{ctx}: {} lock rows but only {} tracked transactions",
        tel.locks_held,
        sim.in_flight()
    );
    if sim.in_flight() == 0 {
        assert_eq!(tel.locks_held, 0, "{ctx}: locks held by dead transactions");
    }
}

const CRASHY: &str = "crash=1@40x20,crash=4@90x15,crash=1@200x25,retry=1000:8000:4";

#[test]
fn crashes_conserve_transactions_all_schedulers() {
    for kind in SchedulerKind::PAPER_SET {
        check(kind, 0.6, CRASHY);
    }
}

#[test]
fn aggressive_kills_release_everything() {
    // max_attempts=1: the first crash a transaction is caught in kills
    // it permanently, exercising `Scheduler::forget` heavily.
    let plan = "mtbf=80,mttr=10,retry=500:500:1,seed=9";
    for kind in SchedulerKind::PAPER_SET {
        check(kind, 0.8, plan);
    }
}

#[test]
fn link_faults_and_stalls_conserve() {
    let plan = "delay=5,loss=60,redeliver=400,stall=50x5,stall=150x10,crash=3@100x20";
    for kind in SchedulerKind::PAPER_SET {
        check(kind, 0.7, plan);
    }
}

#[test]
fn hold_mode_conserves() {
    let plan = "crash=2@60x40,mode=hold,retry=2000:16000:6";
    for kind in SchedulerKind::PAPER_SET {
        check(kind, 0.5, plan);
    }
}

#[test]
fn empty_plan_reports_no_fault_activity() {
    for kind in SchedulerKind::PAPER_SET {
        let c = cfg(kind, 0.8, "");
        let r = Simulator::run(&c);
        assert_eq!(r.aborts_fault, 0, "{kind}: fault aborts without a plan");
        assert_eq!(r.killed, 0, "{kind}: kills without a plan");
        assert_eq!(r.availability, 1.0, "{kind}: downtime without a plan");
        assert_eq!(r.downtime_secs, 0.0);
        // The cause split still covers legacy aborts.
        assert_eq!(r.restarts, r.aborts_validation + r.aborts_scheduler);
    }
}

#[test]
fn kills_happen_and_are_counted() {
    // A long outage with a tight retry budget must actually kill work:
    // the counters can only be trusted if the path is exercised.
    let c = cfg(
        SchedulerKind::Nodc,
        0.9,
        "mtbf=60,mttr=30,retry=200:400:2,seed=3",
    );
    let mut sim = Simulator::new(&c);
    sim.run_to_horizon();
    let r = sim.report();
    assert!(r.aborts_fault > 0, "no fault aborts under heavy crashing");
    assert!(r.killed > 0, "no kills despite retry=..:..:2 under crashes");
    assert!(r.downtime_secs > 0.0);
    assert!(r.availability < 1.0);
    assert_eq!(
        sim.retry_histogram().total(),
        r.killed,
        "retry histogram must record one entry per kill"
    );
}

#[test]
fn faults_eventually_drain() {
    // All faults cease by t=120s; over a long horizon the system must
    // return to its faults-off backlog — a crash may not wedge anything
    // permanently. Compared against the clean baseline rather than an
    // absolute bound because some schedulers (C2PL) convoy on their own
    // at this load, faults or not.
    let plan = "crash=0@30x20,crash=5@60x30,crash=2@100x15,retry=1000:4000:3";
    for kind in SchedulerKind::PAPER_SET {
        let mut faulty = cfg(kind, 0.4, plan);
        faulty.horizon = Duration::from_secs(900);
        let mut clean = cfg(kind, 0.4, "");
        clean.horizon = Duration::from_secs(900);
        let mut sim = Simulator::new(&faulty);
        sim.run_to_horizon();
        let r = sim.report();
        let mut base = Simulator::new(&clean);
        base.run_to_horizon();
        assert!(
            sim.in_flight() <= base.in_flight() + 10,
            "{kind}: {} in flight after faults ceased vs {} clean — faults wedged work",
            sim.in_flight(),
            base.in_flight()
        );
        assert!(r.completed > 0);
    }
}

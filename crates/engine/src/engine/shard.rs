//! Sharded execution: one simulation run spread across worker threads
//! under a conservative time-window barrier.
//!
//! ## Protocol
//!
//! DPNs are partitioned into contiguous shards ([`ShardMap`]). Each
//! shard owns its nodes' [`Dpn`] state and their pending `SliceEnd`
//! events, lifted out of the global timing wheel into per-node *lanes*
//! at setup (seqs preserved). Everything else — arrivals, CN phases,
//! retry ticks, faults, cohort deliveries — stays in the global queue
//! and is processed on the caller thread ("the frontier").
//!
//! The run alternates two phases:
//!
//! * **Window**: compute the next synchronization horizon
//!   `W = min(T_global, FB)` where `T_global` is the global queue's
//!   head time and `FB = min over busy nodes of (pending slice end +`
//!   [`Dpn::finish_bound`]`)`. Strictly below `W` the only possible
//!   events are node-local round-robin rotations and stale (crashed
//!   epoch) tombstone pops — no cohort can finish and no CN
//!   interaction can occur — so every shard rotates its own lanes up
//!   to `W` in parallel with no cross-shard communication, then
//!   rendezvous at the barrier.
//! * **Frontier**: with no interior work left, the single earliest
//!   event (global head or lane minimum) is processed on the caller
//!   thread with full serial semantics, so all scheduler decisions and
//!   CN-side state transitions stay on one deterministic thread.
//!
//! ## Determinism
//!
//! Byte-identity with the serial engine reduces to ordering: the serial
//! loop pops events in exact `(time, insertion-seq)` order. Lane
//! entries keep their insertion seqs; frontier pops compare lane
//! minima against the global head by `(time, seq)`, resolving
//! same-instant ties through [`EventQueue::pop_keyed`]. Within a
//! window, rotations consume one seq each in serial pop order; the
//! barrier reserves that many seqs in one block (keeping the counter
//! identical) and assigns stamps to the *surviving* successor per node
//! by replaying only the order decision, not the work: a survivor's
//! serial seq order against another survivor at the same instant is
//! the pop order of their creating rotations, which recursively is the
//! lexicographic order of their reversed rotation-time chains, bottoming
//! out at the pre-window stamps (`chain_cmp`). Stamps are invisible
//! outside ordering (snapshots serialize `(time, event)` only), so an
//! order-isomorphic assignment with the same counter consumption is
//! byte-identical.
//!
//! FIFO same-instant order across shards is therefore preserved
//! exactly: same-time events pop in the same relative order the serial
//! engine would have popped them, whichever shard owns them.

use super::{Engine, Event};
use bds_des::events::Scheduled;
use bds_des::time::SimTime;
use bds_des::EventQueue;
use bds_machine::{Dpn, ShardMap};
use bds_metrics::Sampler;
use bds_obs::{Phase as ObsPhase, ShardStat};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Stamp of a successor created inside the current window; replaced by
/// a real seq at the barrier.
const PENDING: u64 = u64::MAX;

/// Fan out to the worker pool only when the window is estimated to
/// hold at least this many rotations; thinner windows rotate inline
/// (the barrier costs a few microseconds, a rotation ~100ns).
const FANOUT_MIN_ROTATIONS: u64 = 64;

/// A pending `SliceEnd` held in its node's shard lane instead of the
/// global queue.
#[derive(Debug, Clone, Copy)]
struct LaneEntry {
    at_ms: u64,
    /// The event's insertion seq ([`PENDING`] until the barrier).
    stamp: u64,
    epoch: u32,
}

/// One DPN's shard-owned state.
struct NodeSlot {
    dpn: Dpn,
    /// Mirror of `Engine::dpn_epoch` (bumped together on crash) so
    /// workers can tombstone stale lane entries without engine access.
    epoch: u32,
    /// Pending slice ends: at most one live entry plus stale
    /// tombstones. Small — linear scans beat any structure.
    lane: Vec<LaneEntry>,
    /// Pop times of this window's live rotations, for `chain_cmp`.
    rot_times: Vec<u64>,
    /// Stamp of the first live entry popped this window (`chain_cmp`'s
    /// base case).
    chain_base: u64,
}

/// One shard's cell: its nodes plus cached aggregates. Workers lock
/// only their own cell during a window; the caller locks cells between
/// windows (uncontended).
pub(super) struct ShardLocal {
    first_node: u32,
    nodes: Vec<NodeSlot>,
    /// Live rotations performed this window.
    win_rots: u64,
    /// Stale tombstones popped this window.
    win_stales: u64,
    /// Latest entry time popped this window (rotations and stales):
    /// serial `now()` tracks every pop, so the barrier must advance the
    /// engine clock to the window's last interior pop.
    win_max_ms: u64,
    /// Aggregates below need recomputing.
    dirty: bool,
    /// Min `(at_ms, stamp, node)` over all lane entries.
    agg_min: Option<(u64, u64, u32)>,
    /// Min over busy nodes of (live slice end + finish bound), in ms.
    agg_fb_ms: u64,
    /// Busy node count.
    agg_busy: u32,
    /// Wall-clock residency flushed by this shard's worker at shutdown
    /// (all zero unless the engine's profiler was on). Merged into the
    /// profiler at teardown.
    obs: ShardStat,
}

impl ShardLocal {
    /// Recompute cached aggregates if stale.
    fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.agg_min = None;
        self.agg_fb_ms = u64::MAX;
        self.agg_busy = 0;
        for (ni, s) in self.nodes.iter().enumerate() {
            let node = self.first_node + ni as u32;
            let mut live_at = u64::MAX;
            for e in &s.lane {
                if self
                    .agg_min
                    .is_none_or(|(at, st, _)| (e.at_ms, e.stamp) < (at, st))
                {
                    self.agg_min = Some((e.at_ms, e.stamp, node));
                }
                if e.epoch == s.epoch {
                    live_at = live_at.min(e.at_ms);
                }
            }
            if let Some(b) = s.dpn.finish_bound() {
                self.agg_busy += 1;
                debug_assert_ne!(live_at, u64::MAX, "busy node without a live slice end");
                self.agg_fb_ms = self.agg_fb_ms.min(live_at.saturating_add(b.as_millis()));
            }
        }
    }

    /// Rotate every node's lane strictly below `w_ms`: pop the minimal
    /// `(at, stamp)` entry, tombstone stales, run live slice ends
    /// against the DPN (provably rotation-only below the window bound)
    /// and enqueue the successor with a [`PENDING`] stamp.
    fn rotate_below(&mut self, w_ms: u64) {
        let mut rots = 0u64;
        let mut stales = 0u64;
        for slot in &mut self.nodes {
            loop {
                let mut best: Option<usize> = None;
                for (k, e) in slot.lane.iter().enumerate() {
                    if e.at_ms < w_ms
                        && best.is_none_or(|b| {
                            (e.at_ms, e.stamp) < (slot.lane[b].at_ms, slot.lane[b].stamp)
                        })
                    {
                        best = Some(k);
                    }
                }
                let Some(k) = best else { break };
                let e = slot.lane.swap_remove(k);
                self.win_max_ms = self.win_max_ms.max(e.at_ms);
                if e.epoch != slot.epoch {
                    // Scheduled before a crash of the node; the slice
                    // never ran. Pure tombstone pop.
                    stales += 1;
                    continue;
                }
                if slot.rot_times.is_empty() {
                    debug_assert_ne!(e.stamp, PENDING, "window-start entry lacks a stamp");
                    slot.chain_base = e.stamp;
                }
                let out = slot.dpn.on_slice_end(SimTime::from_millis(e.at_ms));
                // The window bound guarantees no finish below W; a
                // violation here would silently diverge from serial, so
                // check it even in release builds.
                assert!(
                    out.finished.is_none(),
                    "cohort finish inside a conservative window"
                );
                let end = out
                    .next_slice_end
                    .expect("non-finishing rotation left the node idle");
                slot.rot_times.push(e.at_ms);
                slot.lane.push(LaneEntry {
                    at_ms: end.as_millis(),
                    stamp: PENDING,
                    epoch: slot.epoch,
                });
                rots += 1;
            }
        }
        self.win_rots += rots;
        self.win_stales += stales;
        self.dirty = true;
    }
}

/// Order two same-instant window survivors by the serial seqs they
/// would have been assigned: the pop order of their creating rotations,
/// recursively the lexicographic order of the reversed rotation-time
/// chains, bottoming out at the pre-window stamps. A side that exhausts
/// its chain first bottomed out at a pre-window stamp, which is smaller
/// than any stamp assigned inside the window.
fn chain_cmp(m: &NodeSlot, n: &NodeSlot) -> CmpOrdering {
    let (a, b) = (&m.rot_times, &n.rot_times);
    let mut i = a.len();
    let mut j = b.len();
    debug_assert!(i > 0 && j > 0, "chain_cmp on a node that did not rotate");
    loop {
        match a[i - 1].cmp(&b[j - 1]) {
            CmpOrdering::Equal => {}
            ord => return ord,
        }
        match (i, j) {
            (1, 1) => return m.chain_base.cmp(&n.chain_base),
            (1, _) => return CmpOrdering::Less,
            (_, 1) => return CmpOrdering::Greater,
            _ => {
                i -= 1;
                j -= 1;
            }
        }
    }
}

/// The earliest lane entry across all shards.
#[derive(Debug, Clone, Copy)]
struct LaneRef {
    at_ms: u64,
    stamp: u64,
    cell: usize,
    node: u32,
}

/// Folded per-cell aggregates.
struct Agg {
    lane: Option<LaneRef>,
    fb_ms: u64,
    busy: u32,
}

/// Live sharded-run state hanging off the engine while
/// [`Engine::run_until_sharded`] executes.
pub(super) struct ShardRt {
    cells: Vec<Arc<Mutex<ShardLocal>>>,
    map: ShardMap,
}

impl ShardRt {
    /// Refresh and fold every cell's aggregates (uncontended locks —
    /// workers only hold their cell inside a window).
    fn aggregates(&self) -> Agg {
        let mut agg = Agg {
            lane: None,
            fb_ms: u64::MAX,
            busy: 0,
        };
        for (ci, c) in self.cells.iter().enumerate() {
            let mut l = c.lock().expect("poisoned shard cell");
            l.refresh();
            if let Some((at, st, node)) = l.agg_min {
                if agg.lane.is_none_or(|m| (at, st) < (m.at_ms, m.stamp)) {
                    agg.lane = Some(LaneRef {
                        at_ms: at,
                        stamp: st,
                        cell: ci,
                        node,
                    });
                }
            }
            agg.fb_ms = agg.fb_ms.min(l.agg_fb_ms);
            agg.busy += l.agg_busy;
        }
        agg
    }

    /// Remove the referenced lane entry.
    fn pop_lane(&self, r: LaneRef) -> LaneEntry {
        let mut l = self.cells[r.cell].lock().expect("poisoned shard cell");
        l.dirty = true;
        let ni = (r.node - l.first_node) as usize;
        let slot = &mut l.nodes[ni];
        let k = slot
            .lane
            .iter()
            .position(|e| e.at_ms == r.at_ms && e.stamp == r.stamp)
            .expect("lane entry vanished");
        slot.lane.swap_remove(k)
    }

    /// Run `f` on a node's slot (marks the cell's aggregates dirty).
    fn with_slot<R>(&self, node: u32, f: impl FnOnce(&mut NodeSlot) -> R) -> R {
        let ci = self.map.shard_of(node);
        let mut l = self.cells[ci].lock().expect("poisoned shard cell");
        l.dirty = true;
        let ni = (node - l.first_node) as usize;
        f(&mut l.nodes[ni])
    }
}

/// Barrier coordination between the caller and the worker pool.
struct Coord {
    /// Bumped by the caller to start a window (or, with `stop` set, to
    /// shut the pool down).
    round: AtomicU64,
    /// The current window bound, in ms.
    window_ms: AtomicU64,
    /// Workers done with the current window.
    done: AtomicU64,
    stop: AtomicBool,
    /// Workers time their busy/wait segments when the engine's
    /// profiler is on (set once before spawning; never changes).
    obs: bool,
}

struct Pool<'a> {
    coord: &'a Coord,
    threads: Vec<std::thread::Thread>,
}

/// Worker: rotate own cell each round until stopped. Spins briefly
/// between rounds (windows are back-to-back on busy runs), then parks;
/// the caller unparks on fan-out and shutdown.
fn worker_loop(coord: &Coord, cell: Arc<Mutex<ShardLocal>>) {
    // Timing is confined to round boundaries (a handful of clock reads
    // per window, never per rotation), so a profiled run's critical
    // path is indistinguishable from an unprofiled one.
    let loop_t = coord.obs.then(Instant::now);
    let mut stat = ShardStat::default();
    // Boundary timing: one clock read per segment edge, each ending one
    // segment and starting the next, so busy + wait partitions the
    // thread's lifetime exactly — preemption gaps (the caller owns the
    // core right after the done handoff on small machines) land in the
    // segment they interrupt instead of vanishing unattributed.
    let mut mark = loop_t;
    let mut seen = 0u64;
    loop {
        let round = 'wait: {
            for i in 0..4096 {
                let r = coord.round.load(Ordering::Acquire);
                if r != seen {
                    break 'wait r;
                }
                if i < 512 {
                    std::hint::spin_loop();
                } else {
                    // Past the hot-barrier fast path: let the caller
                    // (or a sibling) have the core before parking.
                    std::thread::yield_now();
                }
            }
            loop {
                let r = coord.round.load(Ordering::Acquire);
                if r != seen {
                    break 'wait r;
                }
                std::thread::park_timeout(std::time::Duration::from_micros(100));
            }
        };
        if let Some(m) = mark.as_mut() {
            let now = Instant::now();
            stat.wait_ns += now.duration_since(*m).as_nanos() as u64;
            *m = now;
        }
        seen = round;
        if coord.stop.load(Ordering::Acquire) {
            if let Some(t) = loop_t {
                stat.loop_ns = t.elapsed().as_nanos() as u64;
                cell.lock().expect("poisoned shard cell").obs.merge(&stat);
            }
            return;
        }
        let w = coord.window_ms.load(Ordering::Acquire);
        cell.lock().expect("poisoned shard cell").rotate_below(w);
        // Notify before reading the clock: the profiled critical path
        // (rotate → done) stays identical to an unprofiled worker's.
        coord.done.fetch_add(1, Ordering::AcqRel);
        if let Some(m) = mark.as_mut() {
            let now = Instant::now();
            stat.busy_ns += now.duration_since(*m).as_nanos() as u64;
            stat.rounds += 1;
            *m = now;
        }
    }
}

impl Engine {
    /// Access a DPN whichever side owns it: the engine's own vector in
    /// serial state, its shard cell during a sharded run.
    pub(super) fn with_dpn<R>(&mut self, node: u32, f: impl FnOnce(&mut Dpn) -> R) -> R {
        match &self.shard_rt {
            None => f(&mut self.dpns[node as usize]),
            Some(rt) => rt.with_slot(node, |s| f(&mut s.dpn)),
        }
    }

    /// Schedule a `SliceEnd`: into the global queue in serial state,
    /// into the node's shard lane (with a freshly reserved seq — the
    /// exact seq a serial `schedule_at` would have consumed) during a
    /// sharded run.
    pub(super) fn schedule_slice_end(&mut self, node: u32, at: SimTime, epoch: u32) {
        if let Some(rt) = self.shard_rt.take() {
            let stamp = self.events.reserve_seq();
            rt.with_slot(node, |s| {
                s.lane.push(LaneEntry {
                    at_ms: at.as_millis(),
                    stamp,
                    epoch,
                });
            });
            self.shard_rt = Some(rt);
        } else {
            self.events.schedule_at(at, Event::SliceEnd { node, epoch });
        }
    }

    /// Bump a node's crash epoch on both sides (engine array and, mid
    /// sharded run, the shard cell's mirror).
    pub(super) fn bump_epoch(&mut self, node: u32) {
        self.dpn_epoch[node as usize] += 1;
        if let Some(rt) = &self.shard_rt {
            rt.with_slot(node, |s| s.epoch += 1);
        }
    }

    /// [`Engine::run_until`], sharded across `shards` worker threads
    /// (clamped to the node count; the caller thread doubles as shard
    /// 0's worker). Byte-identical to the serial engine for any shard
    /// count. Falls back to the serial loop when a tracer or metrics
    /// sampler is attached — both observers are defined by the serial
    /// loop's per-event cadence.
    pub fn run_until_sharded(&mut self, limit: SimTime, shards: usize) -> u64 {
        let limit = limit.min(self.horizon());
        if self.tracer.enabled() || !matches!(self.metrics, Sampler::Off) {
            let reason = if self.tracer.enabled() {
                "tracer attached"
            } else {
                "metrics sampler attached"
            };
            // The fallback used to be silent; record it once on the
            // engine (surfaced by `bds-serve status`), once in the
            // profile, and once per process on stderr.
            if self.shard_fallback.is_none() {
                self.shard_fallback = Some(reason);
                self.obs
                    .note(&format!("run_until_sharded fell back to serial: {reason}"));
                bds_obs::notice_once("sharded_serial_fallback", reason);
            }
            return self.run_until(limit);
        }
        let map = ShardMap::new(self.cfg.costs.num_nodes, shards);
        let workers = map.shards() - 1;
        self.shard_setup(map);
        let (n, lane_pops) = if workers == 0 {
            self.sharded_loop(limit, None)
        } else {
            let cells: Vec<Arc<Mutex<ShardLocal>>> = self
                .shard_rt
                .as_ref()
                .expect("setup installed shard_rt")
                .cells
                .clone();
            let coord = Coord {
                round: AtomicU64::new(0),
                window_ms: AtomicU64::new(0),
                done: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                obs: self.obs.enabled(),
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = cells[1..]
                    .iter()
                    .map(|cell| {
                        let cell = Arc::clone(cell);
                        let coord = &coord;
                        scope.spawn(move || worker_loop(coord, cell))
                    })
                    .collect();
                let pool = Pool {
                    coord: &coord,
                    threads: handles.iter().map(|h| h.thread().clone()).collect(),
                };
                let r = self.sharded_loop(limit, Some(&pool));
                coord.stop.store(true, Ordering::Release);
                coord.round.fetch_add(1, Ordering::Release);
                for t in &pool.threads {
                    t.unpark();
                }
                r
            })
        };
        self.shard_teardown(lane_pops);
        n
    }

    /// [`Engine::run_to_horizon`], sharded (see
    /// [`Engine::run_until_sharded`]).
    pub fn run_to_horizon_sharded(&mut self, shards: usize) {
        let horizon = self.horizon();
        self.run_until_sharded(horizon, shards);
    }

    /// Lift pending `SliceEnd`s out of the wheel into per-node lanes
    /// (seqs preserved) and move the DPNs into shard cells.
    fn shard_setup(&mut self, map: ShardMap) {
        debug_assert!(self.shard_rt.is_none(), "nested sharded run");
        debug_assert_eq!(self.clock, self.events.now());
        let now = self.events.now();
        let popped = self.events.events_processed();
        let next_seq = self.events.seq_counter();
        let num_nodes = self.dpns.len();
        let mut lanes: Vec<Vec<LaneEntry>> = vec![Vec::new(); num_nodes];
        let mut kept = Vec::new();
        for (seq, s) in self.events.snapshot_entries_seq() {
            match s.event {
                Event::SliceEnd { node, epoch } => lanes[node as usize].push(LaneEntry {
                    at_ms: s.at.as_millis(),
                    stamp: seq,
                    epoch,
                }),
                _ => kept.push((seq, s)),
            }
        }
        self.events = EventQueue::from_entries_seq(now, popped, next_seq, kept);
        let mut dpns = std::mem::take(&mut self.dpns).into_iter();
        let mut lanes = lanes.into_iter();
        let mut cells = Vec::with_capacity(map.shards());
        for sh in 0..map.shards() {
            let range = map.range(sh);
            let nodes: Vec<NodeSlot> = range
                .clone()
                .map(|n| NodeSlot {
                    dpn: dpns.next().expect("DPN count mismatch"),
                    epoch: self.dpn_epoch[n as usize],
                    lane: lanes.next().expect("lane count mismatch"),
                    rot_times: Vec::new(),
                    chain_base: 0,
                })
                .collect();
            cells.push(Arc::new(Mutex::new(ShardLocal {
                first_node: range.start,
                nodes,
                win_rots: 0,
                win_stales: 0,
                win_max_ms: 0,
                dirty: true,
                agg_min: None,
                agg_fb_ms: u64::MAX,
                agg_busy: 0,
                obs: ShardStat::default(),
            })));
        }
        self.shard_rt = Some(ShardRt { cells, map });
    }

    /// Merge the lanes back into a rebuilt queue (sorted by
    /// `(time, seq)`, pop count restored) and return the DPNs, leaving
    /// a plain serial engine indistinguishable from one that never
    /// sharded.
    fn shard_teardown(&mut self, lane_pops: u64) {
        let rt = self.shard_rt.take().expect("teardown without setup");
        let now = self.clock;
        let popped = self.events.events_processed() + lane_pops;
        let next_seq = self.events.seq_counter();
        let mut merged = self.events.snapshot_entries_seq();
        let mut dpns = Vec::with_capacity(self.dpn_epoch.len());
        for (si, cell) in rt.cells.into_iter().enumerate() {
            let local = Arc::try_unwrap(cell)
                .ok()
                .expect("a worker still holds a shard cell")
                .into_inner()
                .expect("poisoned shard cell");
            if local.obs != ShardStat::default() {
                // Worker-flushed residency (shard 0's is merged per
                // window by the caller, so its cell stays zero).
                self.obs.merge_shard(si, local.obs);
            }
            let first = local.first_node;
            for (ni, slot) in local.nodes.into_iter().enumerate() {
                let node = first + ni as u32;
                for e in slot.lane {
                    debug_assert_ne!(e.stamp, PENDING, "unstamped survivor at teardown");
                    merged.push((
                        e.stamp,
                        Scheduled {
                            at: SimTime::from_millis(e.at_ms),
                            event: Event::SliceEnd {
                                node,
                                epoch: e.epoch,
                            },
                        },
                    ));
                }
                dpns.push(slot.dpn);
            }
        }
        merged.sort_by_key(|&(seq, ref s)| (s.at, seq));
        self.dpns = dpns;
        self.events = EventQueue::from_entries_seq(now, popped, next_seq, merged);
    }

    /// The window/frontier loop. Returns `(events processed, lane
    /// pops)` — lane pops bypass the queue's own counter and are folded
    /// back in at teardown.
    fn sharded_loop(&mut self, limit: SimTime, pool: Option<&Pool<'_>>) -> (u64, u64) {
        let quantum_ms = self.cfg.costs.quantum(self.cfg.dd).as_millis().max(1);
        let limit_ms = limit.as_millis();
        let mut processed = 0u64;
        let mut lane_pops = 0u64;
        loop {
            let g_ms = self.events.peek_time().map(|t| t.as_millis());
            let agg = self
                .shard_rt
                .as_ref()
                .expect("sharded loop without shard_rt")
                .aggregates();
            let lane_at = agg.lane.map(|l| l.at_ms);
            let next_ms = match (g_ms, lane_at) {
                (None, None) => break,
                (a, b) => a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
            };
            if next_ms > limit_ms {
                break;
            }
            let w_ms = agg
                .fb_ms
                .min(g_ms.unwrap_or(u64::MAX))
                .min(limit_ms.saturating_add(1));
            if w_ms > next_ms {
                // Interior span [next, W): rotation-only, shard-local.
                let est = u64::from(agg.busy).saturating_mul((w_ms - next_ms) / quantum_ms + 1);
                // Window telemetry, measured at segment *boundaries* so
                // the caller's busy+wait partitions the window scope
                // exactly (the done-wait spin is the one wait segment;
                // everything else — fan-out coordination, own-cell
                // rotation, the stamping barrier — is busy). All
                // `None`/no-ops when the profiler is off.
                let win_t = self.obs.clock();
                let tok = self.obs.phase_start(ObsPhase::RotationDrain);
                let mut wait_ns = 0u64;
                let fanned_out = pool.is_some() && est >= FANOUT_MIN_ROTATIONS;
                match pool.filter(|_| est >= FANOUT_MIN_ROTATIONS) {
                    Some(p) => {
                        p.coord.window_ms.store(w_ms, Ordering::Release);
                        p.coord.done.store(0, Ordering::Release);
                        p.coord.round.fetch_add(1, Ordering::Release);
                        for t in &p.threads {
                            t.unpark();
                        }
                        // The caller doubles as shard 0's worker.
                        let rt = self.shard_rt.as_ref().expect("shard_rt vanished");
                        rt.cells[0]
                            .lock()
                            .expect("poisoned shard cell")
                            .rotate_below(w_ms);
                        let n = p.threads.len() as u64;
                        // Bounded spin, then yield: when shards exceed
                        // free cores the workers need this CPU, and
                        // yielding degrades to "slower", not "stalls a
                        // scheduler quantum per window".
                        let seg = win_t.map(|_| Instant::now());
                        let mut spins = 0u32;
                        while p.coord.done.load(Ordering::Acquire) < n {
                            spins += 1;
                            if spins < 1024 {
                                std::hint::spin_loop();
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        if let Some(t) = seg {
                            wait_ns = t.elapsed().as_nanos() as u64;
                        }
                    }
                    None => {
                        let rt = self.shard_rt.as_ref().expect("shard_rt vanished");
                        for c in &rt.cells {
                            c.lock().expect("poisoned shard cell").rotate_below(w_ms);
                        }
                    }
                }
                let (rots, pops) = self.finish_window();
                self.obs.phase_end(tok);
                if let Some(t0) = win_t {
                    let loop_ns = t0.elapsed().as_nanos() as u64;
                    self.obs.merge_shard(
                        0,
                        ShardStat {
                            busy_ns: loop_ns.saturating_sub(wait_ns),
                            wait_ns,
                            loop_ns,
                            rounds: 1,
                        },
                    );
                    self.obs
                        .window(win_t, w_ms - next_ms, rots, pops - rots, fanned_out);
                }
                processed += pops;
                lane_pops += pops;
                continue;
            }
            // Frontier: the single earliest event, serial semantics.
            match (g_ms, agg.lane) {
                (Some(g), Some(l)) if l.at_ms == g => {
                    // Same-instant tie: serial order is by seq among the
                    // global head and the lane entries at this time. Pop
                    // the head to learn its seq; lane stamps below it go
                    // first (in stamp order), then the head itself.
                    let tok = self.obs.phase_start(ObsPhase::EventQueue);
                    let (s, gseq) = self.events.pop_keyed().expect("peeked event vanished");
                    self.obs.phase_end(tok);
                    debug_assert_eq!(s.at.as_millis(), g);
                    processed += 1;
                    loop {
                        let lm = self
                            .shard_rt
                            .as_ref()
                            .expect("shard_rt vanished")
                            .aggregates()
                            .lane;
                        match lm {
                            Some(l2) if l2.at_ms == g && l2.stamp < gseq => {
                                let e = self
                                    .shard_rt
                                    .as_ref()
                                    .expect("shard_rt vanished")
                                    .pop_lane(l2);
                                self.clock = SimTime::from_millis(g);
                                lane_pops += 1;
                                processed += 1;
                                self.on_slice_end(l2.node, e.epoch);
                            }
                            _ => break,
                        }
                    }
                    self.clock = s.at;
                    self.handle(s.event);
                }
                (Some(_), lane) if lane.is_none_or(|l| l.at_ms > g_ms.unwrap_or(u64::MAX)) => {
                    let tok = self.obs.phase_start(ObsPhase::EventQueue);
                    let (s, _seq) = self.events.pop_keyed().expect("peeked event vanished");
                    self.obs.phase_end(tok);
                    self.clock = s.at;
                    processed += 1;
                    self.handle(s.event);
                }
                (_, Some(l)) => {
                    // Lane strictly earliest (or the queue is empty).
                    let e = self
                        .shard_rt
                        .as_ref()
                        .expect("shard_rt vanished")
                        .pop_lane(l);
                    self.clock = SimTime::from_millis(l.at_ms);
                    lane_pops += 1;
                    processed += 1;
                    self.on_slice_end(l.node, e.epoch);
                }
                _ => unreachable!("no frontier event despite next_ms"),
            }
        }
        (processed, lane_pops)
    }

    /// Barrier: reserve the seq block the serial engine would have
    /// consumed this window and stamp each node's surviving successor
    /// in serial order (grouped by time, `chain_cmp` within a group).
    /// Returns the window's `(live rotations, total pops)`.
    fn finish_window(&mut self) -> (u64, u64) {
        let rt = self.shard_rt.as_ref().expect("shard_rt vanished");
        let mut guards: Vec<MutexGuard<'_, ShardLocal>> = rt
            .cells
            .iter()
            .map(|c| c.lock().expect("poisoned shard cell"))
            .collect();
        let mut rots = 0u64;
        let mut pops = 0u64;
        let mut max_ms = 0u64;
        // (survivor time, cell, node index)
        let mut survivors: Vec<(u64, usize, usize)> = Vec::new();
        for (ci, l) in guards.iter().enumerate() {
            rots += l.win_rots;
            pops += l.win_rots + l.win_stales;
            max_ms = max_ms.max(l.win_max_ms);
            for (ni, s) in l.nodes.iter().enumerate() {
                if !s.rot_times.is_empty() {
                    let at = s
                        .lane
                        .iter()
                        .find(|e| e.stamp == PENDING)
                        .expect("rotated node without a survivor")
                        .at_ms;
                    survivors.push((at, ci, ni));
                }
            }
        }
        debug_assert!(survivors.len() as u64 <= rots);
        if rots > 0 {
            let first_stamp = self.events.reserve_seqs(rots);
            survivors.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| chain_cmp(&guards[a.1].nodes[a.2], &guards[b.1].nodes[b.2]))
            });
            for (next_stamp, &(at, ci, ni)) in (first_stamp..).zip(survivors.iter()) {
                let slot = &mut guards[ci].nodes[ni];
                let e = slot
                    .lane
                    .iter_mut()
                    .find(|e| e.stamp == PENDING)
                    .expect("survivor vanished");
                debug_assert_eq!(e.at_ms, at);
                e.stamp = next_stamp;
                slot.rot_times.clear();
            }
        }
        for mut l in guards {
            l.win_rots = 0;
            l.win_stales = 0;
            l.win_max_ms = 0;
            l.dirty = true;
        }
        if pops > 0 {
            // Serial `now()` is the time of the last pop; interior pops
            // bypass the frontier's clock updates, so advance here.
            self.clock = self.clock.max(SimTime::from_millis(max_ms));
        }
        (rots, pops)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{SimConfig, WorkloadKind};
    use crate::engine::Engine;
    use crate::metrics::SimReport;
    use bds_des::time::{Duration, SimTime};
    use bds_fault::FaultPlan;
    use bds_sched::SchedulerKind;

    fn cfg(kind: SchedulerKind) -> SimConfig {
        let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        c.horizon = Duration::from_secs(300);
        c.lambda_tps = 0.6;
        c
    }

    fn serial(c: &SimConfig) -> SimReport {
        let mut e = Engine::new(c);
        e.run_to_horizon();
        e.report()
    }

    fn sharded(c: &SimConfig, shards: usize) -> SimReport {
        let mut e = Engine::new(c);
        e.run_to_horizon_sharded(shards);
        e.report()
    }

    #[test]
    fn sharded_matches_serial_all_schedulers() {
        for kind in SchedulerKind::PAPER_SET {
            let c = cfg(kind);
            let want = serial(&c);
            for s in [1usize, 2, 3, 8] {
                assert_eq!(sharded(&c, s), want, "{kind} shards={s}");
            }
        }
    }

    #[test]
    fn sharded_matches_serial_with_faults() {
        let plan = FaultPlan::parse("crash=0@100x10,crash=3@150x20").expect("plan parses");
        for kind in [SchedulerKind::C2pl, SchedulerKind::Nodc] {
            let c = cfg(kind).with_faults(plan.clone());
            let want = serial(&c);
            for s in [2usize, 8] {
                assert_eq!(sharded(&c, s), want, "{kind} shards={s}");
            }
        }
    }

    #[test]
    fn sharded_matches_serial_declustered() {
        let mut c = cfg(SchedulerKind::Gow);
        c.dd = 4;
        let want = serial(&c);
        for s in [2usize, 5, 8] {
            assert_eq!(sharded(&c, s), want, "shards={s}");
        }
    }

    #[test]
    fn sharded_prefix_then_serial_suffix_matches() {
        // Teardown must leave the queue byte-identical to the serial
        // engine's state at the cut, so the remainder replays exactly.
        let c = cfg(SchedulerKind::C2pl);
        let want = serial(&c);
        for cut_ms in [1u64, 37_000, 100_000, 299_999] {
            let mut e = Engine::new(&c);
            let mut n = e.run_until_sharded(SimTime::from_millis(cut_ms), 4);
            n += e.run_until(e.horizon());
            assert_eq!(e.report(), want, "cut at {cut_ms}ms");
            assert_eq!(n, want.events, "cut at {cut_ms}ms");
        }
    }

    #[test]
    fn alternating_serial_sharded_segments_match() {
        let c = cfg(SchedulerKind::Low(2));
        let want = serial(&c);
        let mut e = Engine::new(&c);
        let mut n = 0u64;
        n += e.run_until(SimTime::from_millis(50_000));
        n += e.run_until_sharded(SimTime::from_millis(120_000), 3);
        n += e.run_until(SimTime::from_millis(200_000));
        n += e.run_until_sharded(e.horizon(), 8);
        assert_eq!(e.report(), want);
        assert_eq!(n, want.events);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let c = cfg(SchedulerKind::Nodc);
        assert_eq!(sharded(&c, 64), serial(&c));
    }

    #[test]
    fn profiled_sharded_run_is_byte_identical_and_attributed() {
        // The profiler must not trip the serial fallback and must not
        // perturb the simulation: same report as serial, plus window
        // and shard residency telemetry.
        let c = cfg(SchedulerKind::C2pl);
        let want = serial(&c);
        let mut e = Engine::new(&c);
        e.set_profiler(bds_obs::Profiler::on());
        e.run_to_horizon_sharded(4);
        assert_eq!(e.report(), want, "profiled sharded run diverged");
        assert!(e.shard_fallback_reason().is_none());
        let prof = e.take_profile().expect("profiler was on");
        assert!(prof.windows > 0, "no windows recorded");
        assert!(prof.rotations + prof.stales > 0);
        let eq = &prof.phases[super::ObsPhase::EventQueue as usize];
        assert!(eq.count > 0 && eq.sampled > 0);
        // Shard 0 (the caller) always reports window residency; its
        // busy+wait must account for nearly all of the window scope.
        // (The hard ≥95 % acceptance gate runs in `repro --profile`
        // with a worker pool; this keeps a floor under unit tests.)
        // On a loaded single-core host this tiny run can leave every
        // shard under ATTRIBUTION_MIN_NS — then there is nothing to
        // check, but any shard that did accrue residency must account
        // for it.
        assert!(!prof.shards.is_empty(), "no shard residency recorded");
        if let Some(att) = prof.min_attribution() {
            assert!(
                att > 0.5,
                "implausible attribution {att}: {:?}",
                prof.shards
            );
        }
    }

    #[test]
    fn fallback_under_tracer_is_recorded_once() {
        let c = cfg(SchedulerKind::Gow);
        let want = serial(&c);
        let mut e = Engine::new(&c);
        e.set_tracer(bds_trace::Tracer::ring(1 << 16));
        e.set_profiler(bds_obs::Profiler::on());
        e.run_to_horizon_sharded(4);
        assert_eq!(e.report(), want, "fallback run diverged");
        assert_eq!(e.shard_fallback_reason(), Some("tracer attached"));
        let prof = e.take_profile().expect("profiler was on");
        assert_eq!(prof.notices.len(), 1, "notice recorded exactly once");
        assert!(prof.notices[0].contains("tracer attached"));
        // No sharded telemetry on a fallen-back run.
        assert_eq!(prof.windows, 0);
    }
}

//! Simulation outputs.

use bds_des::stats::Welford;

pub use bds_trace::json::{JsonArr, JsonObj};

/// The report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Scheduler label ("GOW", "LOW", …).
    pub scheduler: String,
    /// Arrival rate that was offered (TPS).
    pub lambda_tps: f64,
    /// Degree of declustering.
    pub dd: u32,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
    /// Transactions that arrived.
    pub arrived: u64,
    /// Transactions that started (were admitted) at least once.
    pub started: u64,
    /// Transactions that committed.
    pub completed: u64,
    /// OPT validation failures / restarts.
    pub restarts: u64,
    /// Response-time statistics over committed transactions (seconds).
    pub rt: Welford,
    /// Control-node CPU utilization.
    pub cn_utilization: f64,
    /// Mean data-processing-node utilization.
    pub dpn_utilization: f64,
    /// Time-averaged number of live (started, uncommitted) transactions.
    pub mean_live: f64,
    /// Median response time in seconds (1-second histogram resolution;
    /// `None` when nothing completed).
    pub rt_p50_secs: Option<f64>,
    /// 90th-percentile response time in seconds.
    pub rt_p90_secs: Option<f64>,
    /// 99th-percentile response time in seconds.
    pub rt_p99_secs: Option<f64>,
    /// Transactions still waiting in the start queue at the horizon.
    pub queued_at_end: u64,
    /// Total simulation events processed (progress metric).
    pub events: u64,
    /// Total lock requests evaluated (including retries).
    pub lock_requests: u64,
    /// Lock requests that ended blocked or delayed at least once.
    pub requests_denied: u64,
    /// Aborts caused by OPT validation failure at commit. Together with
    /// `aborts_scheduler` and `aborts_fault` these partition `restarts`.
    pub aborts_validation: u64,
    /// Aborts ordered by the scheduler (restart-oriented protocols).
    pub aborts_scheduler: u64,
    /// Aborts caused by injected faults (DPN crashes).
    pub aborts_fault: u64,
    /// Transactions dropped permanently after exhausting the fault
    /// retry budget (0 without a fault plan).
    pub killed: u64,
    /// Fraction of node-time the DPNs were up over the horizon (1.0
    /// without a fault plan).
    pub availability: f64,
    /// Total DPN downtime over the horizon, summed across nodes.
    pub downtime_secs: f64,
}

impl SimReport {
    /// Mean response time in seconds (0 when nothing completed).
    pub fn mean_rt_secs(&self) -> f64 {
        self.rt.mean()
    }

    /// Throughput in committed transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.horizon_secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / self.horizon_secs
        }
    }

    /// Ratio of useful resource utilization relative to another run
    /// (the paper's `λ_S / λ_NODC` comparisons use throughput ratios).
    pub fn throughput_ratio(&self, baseline: &SimReport) -> f64 {
        let b = baseline.throughput_tps();
        if b == 0.0 {
            0.0
        } else {
            self.throughput_tps() / b
        }
    }

    /// Render as a JSON object (hand-rolled; the workspace carries no
    /// external serialization dependency).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("scheduler", &self.scheduler);
        o.num("lambda_tps", self.lambda_tps);
        o.int("dd", self.dd as u64);
        o.num("horizon_secs", self.horizon_secs);
        o.int("arrived", self.arrived);
        o.int("started", self.started);
        o.int("completed", self.completed);
        o.int("restarts", self.restarts);
        o.num("mean_rt_secs", self.mean_rt_secs());
        o.num("throughput_tps", self.throughput_tps());
        o.num("cn_utilization", self.cn_utilization);
        o.num("dpn_utilization", self.dpn_utilization);
        o.num("mean_live", self.mean_live);
        o.opt_num("rt_p50_secs", self.rt_p50_secs);
        o.opt_num("rt_p90_secs", self.rt_p90_secs);
        o.opt_num("rt_p99_secs", self.rt_p99_secs);
        o.int("queued_at_end", self.queued_at_end);
        o.int("events", self.events);
        o.int("lock_requests", self.lock_requests);
        o.int("requests_denied", self.requests_denied);
        o.int("aborts_validation", self.aborts_validation);
        o.int("aborts_scheduler", self.aborts_scheduler);
        o.int("aborts_fault", self.aborts_fault);
        o.int("killed", self.killed);
        o.num("availability", self.availability);
        o.num("downtime_secs", self.downtime_secs);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completed: u64, horizon: f64) -> SimReport {
        SimReport {
            scheduler: "TEST".into(),
            lambda_tps: 1.0,
            dd: 1,
            horizon_secs: horizon,
            arrived: completed,
            started: completed,
            completed,
            restarts: 0,
            rt: Welford::new(),
            cn_utilization: 0.0,
            dpn_utilization: 0.0,
            mean_live: 0.0,
            rt_p50_secs: None,
            rt_p90_secs: None,
            rt_p99_secs: None,
            queued_at_end: 0,
            events: 0,
            lock_requests: 0,
            requests_denied: 0,
            aborts_validation: 0,
            aborts_scheduler: 0,
            aborts_fault: 0,
            killed: 0,
            availability: 1.0,
            downtime_secs: 0.0,
        }
    }

    #[test]
    fn throughput_is_completions_over_time() {
        let r = report(2000, 2000.0);
        assert!((r.throughput_tps() - 1.0).abs() < 1e-12);
        assert_eq!(report(0, 0.0).throughput_tps(), 0.0);
    }

    #[test]
    fn ratio_against_baseline() {
        let a = report(500, 1000.0);
        let b = report(1000, 1000.0);
        assert!((a.throughput_ratio(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_has_all_fields() {
        let r = report(10, 100.0);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "scheduler",
            "lambda_tps",
            "completed",
            "throughput_tps",
            "rt_p50_secs",
            "requests_denied",
        ] {
            assert!(
                json.contains(&format!("\"{key}\":")),
                "missing {key}: {json}"
            );
        }
        assert!(json.contains("\"scheduler\":\"TEST\""));
        assert!(json.contains("\"completed\":10"));
    }

    #[test]
    fn json_escapes_and_nulls() {
        let mut o = JsonObj::new();
        o.str("s", "a\"b\\c");
        o.num("inf", f64::INFINITY);
        o.opt_num("none", None);
        assert_eq!(o.finish(), r#"{"s":"a\"b\\c","inf":null,"none":null}"#);
    }
}

//! Simulation configuration.

use bds_des::rng::Xoshiro256;
use bds_des::time::Duration;
use bds_fault::FaultPlan;
use bds_machine::CostBook;
use bds_sched::SchedulerKind;
use bds_workload::gen::{
    CustomPattern, Experiment1, Experiment2, WithEstimationError, WorkloadGen, EXP2_HOT_FILES,
    EXP2_READ_ONLY_FILES,
};
use bds_workload::pattern::Pattern;

/// Which workload to generate.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// Experiment 1 (§5.1): Pattern 1 over `num_files` files.
    Exp1 {
        /// Number of files (paper default 16; Table 2 uses 8–64).
        num_files: u32,
    },
    /// Experiment 2 (§5.2): Pattern 2 over 8 read-only + 8 hot files.
    Exp2,
    /// Experiment 3 (§5.3): Experiment 1 with I/O-demand estimation
    /// error `C = C0 · (1 + x)`, `x ~ N(0, σ²)`.
    Exp3 {
        /// Number of files.
        num_files: u32,
        /// Standard deviation of the relative estimation error.
        sigma: f64,
    },
    /// A custom pattern over `num_files` uniformly chosen files.
    Custom {
        /// The step pattern.
        pattern: Pattern,
        /// Number of files.
        num_files: u32,
    },
}

impl WorkloadKind {
    /// Number of files in the database.
    pub fn num_files(&self) -> u32 {
        match self {
            WorkloadKind::Exp1 { num_files } | WorkloadKind::Exp3 { num_files, .. } => *num_files,
            WorkloadKind::Exp2 => EXP2_READ_ONLY_FILES + EXP2_HOT_FILES,
            WorkloadKind::Custom { num_files, .. } => *num_files,
        }
    }

    /// Build the generator with its own RNG stream.
    pub fn build(&self, rng: Xoshiro256) -> Box<dyn WorkloadGen> {
        match self {
            WorkloadKind::Exp1 { num_files } => Box::new(Experiment1::new(*num_files, rng)),
            WorkloadKind::Exp2 => Box::new(Experiment2::new(rng)),
            WorkloadKind::Exp3 { num_files, sigma } => {
                // Common random numbers: the inner Experiment-1 stream is
                // the *same* stream Exp1 would use, so an Exp3 run at any
                // σ generates the identical sequence of true workloads —
                // only the declared demands differ (the paper's
                // sensitivity test compares exactly this way). The error
                // stream is derived by re-seeding from a peeked output.
                let err_seed = rng.clone().next_u64() ^ 0x00E3_57A7_1C4E_5EED;
                Box::new(WithEstimationError::new(
                    Experiment1::new(*num_files, rng),
                    *sigma,
                    Xoshiro256::seed_from_u64(err_seed),
                ))
            }
            WorkloadKind::Custom { pattern, num_files } => {
                Box::new(CustomPattern::uniform(pattern.clone(), *num_files, rng))
            }
        }
    }
}

/// One simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Workload to generate.
    pub workload: WorkloadKind,
    /// Arrival rate in transactions per second (paper: 0 – 1.4).
    pub lambda_tps: f64,
    /// Degree of declustering (paper: 1, 2, 4, 8).
    pub dd: u32,
    /// Simulation horizon (paper: 2,000,000 clocks = 2,000 s).
    pub horizon: Duration,
    /// Master RNG seed.
    pub seed: u64,
    /// Multiprogramming-level cap (`None` = ∞, the paper's default;
    /// `Some(m)` is used for C2PL+M).
    pub mpl: Option<u32>,
    /// The machine's cost constants (Table 1).
    pub costs: CostBook,
    /// Delay after which blocked/delayed requests are re-submitted when
    /// no state-change event wakes them first ("submitted … after some
    /// delay").
    pub retry_delay: Duration,
    /// Delay before an aborted transaction (OPT validation failure) is
    /// re-submitted ("aborted … lock-requests are submitted … after some
    /// delay").
    pub restart_delay: Duration,
    /// Maximum admission tests per admission sweep (bounds the CN work
    /// spent scanning a long start queue; ASL's availability checks are
    /// free and scan the whole queue).
    pub admission_scan_limit: usize,
    /// Compatibility flag: report response-time percentiles from the
    /// legacy 1-second-bin histogram (which quantizes `rt_p50/p90/p99`
    /// to bucket midpoints at whole-second resolution) instead of the
    /// log-bucketed histogram with ≤ 1 % relative error. Off by default;
    /// exists so historical reports can be reproduced bit-for-bit.
    pub legacy_second_bin_percentiles: bool,
    /// Fault-injection plan (DPN crashes, CN stalls, link faults). The
    /// default is [`FaultPlan::none`], under which the simulator is
    /// byte-identical to a fault-free build.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A configuration with the paper's defaults (λ = 1.0 TPS, DD = 1,
    /// 2,000 s horizon, mpl = ∞).
    pub fn new(scheduler: SchedulerKind, workload: WorkloadKind) -> Self {
        SimConfig {
            scheduler,
            workload,
            lambda_tps: 1.0,
            dd: 1,
            horizon: Duration::from_millis(2_000_000),
            seed: 0x5EED_BA7C,
            mpl: None,
            costs: CostBook::default(),
            retry_delay: Duration::from_millis(1000),
            restart_delay: Duration::from_millis(1000),
            admission_scan_limit: 16,
            legacy_second_bin_percentiles: false,
            faults: FaultPlan::none(),
        }
    }

    /// Builder-style percentile-engine compatibility flag (see
    /// [`SimConfig::legacy_second_bin_percentiles`]).
    pub fn with_legacy_percentiles(mut self, legacy: bool) -> Self {
        self.legacy_second_bin_percentiles = legacy;
        self
    }

    /// Builder-style arrival rate.
    pub fn with_lambda(mut self, tps: f64) -> Self {
        self.lambda_tps = tps;
        self
    }

    /// Builder-style declustering degree.
    pub fn with_dd(mut self, dd: u32) -> Self {
        self.dd = dd;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style mpl cap (for C2PL+M).
    pub fn with_mpl(mut self, mpl: u32) -> Self {
        self.mpl = Some(mpl);
        self
    }

    /// Builder-style fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Canonical cache key for simulation-point memoization.
    ///
    /// Two configs with the same key produce byte-identical
    /// [`crate::metrics::SimReport`]s: the simulator is a pure function
    /// of the config, and every field (including nested cost constants
    /// and workload parameters) participates in the key. Floats are
    /// rendered through `Debug`, which in Rust prints the shortest
    /// round-trippable representation, so distinct bit patterns map to
    /// distinct keys.
    pub fn cache_key(&self) -> String {
        format!("{self:?}")
    }

    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on invalid combinations (DD > nodes, non-positive λ, …).
    pub fn validate(&self) {
        assert!(
            self.lambda_tps > 0.0 && self.lambda_tps.is_finite(),
            "lambda must be positive, got {}",
            self.lambda_tps
        );
        assert!(
            self.dd >= 1 && self.dd <= self.costs.num_nodes,
            "DD {} out of range 1..={}",
            self.dd,
            self.costs.num_nodes
        );
        assert!(!self.horizon.is_zero(), "zero horizon");
        if let Some(m) = self.mpl {
            assert!(m > 0, "mpl cap must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
        assert_eq!(c.horizon.as_millis(), 2_000_000);
        assert_eq!(c.dd, 1);
        assert_eq!(c.mpl, None);
        assert_eq!(c.costs.num_nodes, 8);
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::new(SchedulerKind::C2pl, WorkloadKind::Exp2)
            .with_lambda(1.2)
            .with_dd(4)
            .with_seed(7)
            .with_mpl(16);
        assert_eq!(c.lambda_tps, 1.2);
        assert_eq!(c.dd, 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.mpl, Some(16));
        c.validate();
    }

    #[test]
    fn workload_num_files() {
        assert_eq!(WorkloadKind::Exp1 { num_files: 32 }.num_files(), 32);
        assert_eq!(WorkloadKind::Exp2.num_files(), 16);
        assert_eq!(
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 1.0
            }
            .num_files(),
            16
        );
    }

    #[test]
    fn workload_builds_generators() {
        let rng = Xoshiro256::seed_from_u64(1);
        let mut g = WorkloadKind::Exp1 { num_files: 16 }.build(rng.clone());
        assert_eq!(g.next_batch().len(), 4);
        let mut g = WorkloadKind::Exp2.build(rng.clone());
        assert_eq!(g.next_batch().len(), 3);
        let mut g = WorkloadKind::Exp3 {
            num_files: 16,
            sigma: 0.5,
        }
        .build(rng);
        assert_eq!(g.next_batch().len(), 4);
    }

    #[test]
    #[should_panic(expected = "DD 9 out of range")]
    fn validate_rejects_bad_dd() {
        let mut c = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
        c.dd = 9;
        c.validate();
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let c = SimConfig::new(
            SchedulerKind::Low(2),
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma: 1.0,
            },
        );
        assert_eq!(c.cache_key(), c.clone().cache_key());
        // Every knob participates in the key.
        assert_ne!(c.cache_key(), c.clone().with_lambda(1.0000001).cache_key());
        assert_ne!(c.cache_key(), c.clone().with_dd(2).cache_key());
        assert_ne!(c.cache_key(), c.clone().with_seed(1).cache_key());
        assert_ne!(c.cache_key(), c.clone().with_mpl(4).cache_key());
        let mut d = c.clone();
        d.workload = WorkloadKind::Exp3 {
            num_files: 16,
            sigma: 2.0,
        };
        assert_ne!(c.cache_key(), d.cache_key());
        let mut e = d.clone();
        e.costs.num_nodes = 4;
        assert_ne!(d.cache_key(), e.cache_key());
        let f = d
            .clone()
            .with_faults(FaultPlan::parse("crash=0@100x10").unwrap());
        assert_ne!(d.cache_key(), f.cache_key());
    }
}

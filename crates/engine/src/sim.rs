//! The historical batch-run simulator API: a thin adapter over
//! [`Engine`].
//!
//! [`Simulator`] is what the drivers, experiments and tests have always
//! used — build from a [`SimConfig`], run to the horizon, read the
//! report. Since the engine refactor it owns no loop of its own: every
//! method delegates to the single event loop in [`crate::engine`], so
//! batch runs, incremental [`Engine::step`] runs and the `bds-serve`
//! front all execute identical code.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::SimReport;
use bds_des::time::{Duration, SimTime};
use bds_metrics::{LogHistogram, TimeSeries};
use bds_sched::Scheduler;
use bds_trace::{TraceData, Tracer};
use bds_wtpg::TxnId;

/// The discrete-event simulator (adapter over [`Engine`]).
pub struct Simulator {
    engine: Engine,
}

impl Simulator {
    /// Build a simulator from a configuration (workload taken from
    /// `cfg.workload`).
    pub fn new(cfg: &SimConfig) -> Self {
        Simulator {
            engine: Engine::new(cfg),
        }
    }

    /// Build with an explicit workload generator (for custom workloads
    /// beyond the paper's experiments).
    pub fn with_generator(
        cfg: &SimConfig,
        genr: Box<dyn bds_workload::gen::WorkloadGen>,
        arrival_rng: bds_des::rng::Xoshiro256,
    ) -> Self {
        Simulator {
            engine: Engine::with_generator(cfg, genr, arrival_rng),
        }
    }

    /// Run to the horizon and report.
    pub fn run(cfg: &SimConfig) -> SimReport {
        let mut sim = Simulator::new(cfg);
        sim.run_to_horizon();
        sim.report()
    }

    /// Run to the horizon with the simulation sharded across `shards`
    /// worker threads (conservative time-window barrier; see
    /// [`Engine::run_until_sharded`]). The report is byte-identical to
    /// [`Simulator::run`] for every shard count — sharding changes wall
    /// clock, never results.
    pub fn run_sharded(cfg: &SimConfig, shards: usize) -> SimReport {
        let mut sim = Simulator::new(cfg);
        sim.engine.run_to_horizon_sharded(shards);
        sim.report()
    }

    /// Run with a ring-buffer tracer of the given capacity and return
    /// both the report and the captured trace. The report is
    /// byte-identical to an untraced [`Simulator::run`] of the same
    /// configuration — tracing only observes.
    pub fn run_traced(cfg: &SimConfig, capacity: usize) -> (SimReport, TraceData) {
        let mut sim = Simulator::new(cfg);
        sim.set_tracer(Tracer::ring(capacity));
        sim.run_to_horizon();
        let report = sim.report();
        let data = sim.take_trace().expect("ring tracer was installed");
        (report, data)
    }

    /// Run with time-series sampling every `dt` of simulated time,
    /// returning the report and the sampled series. The report is
    /// byte-identical to an unsampled [`Simulator::run`] of the same
    /// configuration — sampling only observes.
    pub fn run_with_metrics(cfg: &SimConfig, dt: Duration) -> (SimReport, TimeSeries) {
        let mut sim = Simulator::new(cfg);
        sim.set_metrics_interval(dt);
        sim.run_to_horizon();
        let report = sim.report();
        let series = sim.take_metrics().expect("sampler was installed");
        (report, series)
    }

    /// Install a tracer (replace any previous one). Call before
    /// [`Simulator::run_to_horizon`] to capture the whole run.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// Enable metrics sampling at the given simulated-time interval
    /// (replace any previous sampler). Call before
    /// [`Simulator::run_to_horizon`].
    pub fn set_metrics_interval(&mut self, dt: Duration) {
        self.engine.set_metrics_interval(dt);
    }

    /// Detach the sampler and return the series (`None` when sampling
    /// was off).
    pub fn take_metrics(&mut self) -> Option<TimeSeries> {
        self.engine.take_metrics()
    }

    /// The log-bucketed response-time histogram over committed
    /// transactions (exporters render its buckets directly).
    pub fn rt_histogram(&self) -> &LogHistogram {
        self.engine.rt_histogram()
    }

    /// Detach the tracer and return its captured data (`None` when
    /// tracing was off).
    pub fn take_trace(&mut self) -> Option<TraceData> {
        self.engine.take_trace()
    }

    /// Drive the event loop until the horizon.
    pub fn run_to_horizon(&mut self) {
        self.engine.run_to_horizon();
    }

    /// Per-DPN downtime accumulated up to `at` (nodes still down are
    /// charged through `at`).
    pub fn node_downtime(&self, at: SimTime) -> Vec<Duration> {
        self.engine.node_downtime(at)
    }

    /// Transactions arrived but neither committed nor killed yet.
    pub fn in_flight(&self) -> u64 {
        self.engine.in_flight()
    }

    /// Histogram of fault-kill attempt counts at permanent kill time.
    pub fn retry_histogram(&self) -> &LogHistogram {
        self.engine.retry_histogram()
    }

    /// Produce the report (call after [`Simulator::run_to_horizon`]).
    pub fn report(&self) -> SimReport {
        self.engine.report()
    }

    /// Replace the scheduler with a custom implementation (extension
    /// point beyond the paper's six). Must be called before the first
    /// event is processed.
    ///
    /// # Panics
    /// Panics if the simulation has already started.
    pub fn replace_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.engine.replace_scheduler(scheduler);
    }

    /// Drain the precedence constraints the scheduler observed — used by
    /// the serializability audit in the integration tests.
    pub fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.engine.drain_constraints()
    }

    /// Access the scheduler (e.g. for downcasting to read statistics in
    /// tests).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.engine.scheduler()
    }

    /// The underlying engine, for incremental driving (stepping,
    /// checkpointing, hot-swap) of a simulator built through this API.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadKind;
    use bds_des::time::Duration;
    use bds_sched::SchedulerKind;

    fn cfg(kind: SchedulerKind) -> SimConfig {
        let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        c.horizon = Duration::from_secs(200_000 / 1000); // 200 s
        c.lambda_tps = 0.5;
        c
    }

    #[test]
    fn nodc_light_load_rt_matches_service_time() {
        // At a very light load with DD = 1 the response time is just the
        // sum of per-step scans (7.2 s) plus small CN costs.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 0.02;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        assert!(r.completed >= 20, "completed {}", r.completed);
        let rt = r.mean_rt_secs();
        assert!(
            (rt - 7.2).abs() < 0.3,
            "light-load RT should be ≈ 7.2 s, got {rt}"
        );
    }

    #[test]
    fn nodc_dd8_light_load_speedup() {
        // With DD = 8 every scan runs 8-way parallel: RT ≈ 7.2/8 ≈ 0.9 s.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 0.02;
        c.dd = 8;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        let rt = r.mean_rt_secs();
        assert!(rt < 1.2, "DD=8 light-load RT should be ≈ 0.9 s, got {rt}");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let c = cfg(SchedulerKind::Low(2)).with_lambda(0.6);
        let a = Simulator::run(&c);
        let b = Simulator::run(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c = cfg(SchedulerKind::C2pl).with_lambda(0.6);
        let a = Simulator::run(&c);
        let b = Simulator::run(&c.clone().with_seed(123));
        assert_ne!(a.completed, b.completed);
    }

    #[test]
    fn all_schedulers_complete_work() {
        for kind in SchedulerKind::PAPER_SET {
            let c = cfg(kind).with_lambda(0.4);
            let r = Simulator::run(&c);
            // OPT genuinely thrashes under this contention level (the
            // paper's Fig. 8 shows it saturating first), so only demand
            // meaningful forward progress.
            assert!(
                r.completed > r.arrived / 4,
                "{kind}: completed only {} of {}",
                r.completed,
                r.arrived
            );
            assert!(r.mean_rt_secs() > 0.0);
        }
    }

    #[test]
    fn mpl_caps_live_transactions() {
        let c = cfg(SchedulerKind::C2pl).with_lambda(1.2).with_mpl(4);
        let r = Simulator::run(&c);
        assert!(r.mean_live <= 4.01, "mean live {} exceeds mpl", r.mean_live);
    }

    #[test]
    fn overload_grows_queue() {
        // λ beyond capacity (≈ 1.11 TPS for Pattern 1 on 8 nodes): the
        // backlog at the horizon must be substantial under NODC.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 1.4;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        assert!(
            r.arrived > r.completed + 100,
            "arrived {} completed {}",
            r.arrived,
            r.completed
        );
        assert!(r.dpn_utilization > 0.9, "dpn {}", r.dpn_utilization);
    }

    #[test]
    fn engine_step_matches_bulk_run() {
        // Driving the engine one event at a time produces the identical
        // report to the bulk run — there is only one event loop.
        let c = cfg(SchedulerKind::Gow).with_lambda(0.6);
        let bulk = Simulator::run(&c);
        let mut e = Engine::new(&c);
        e.enable_effects();
        let mut steps = 0u64;
        let mut effects = 0usize;
        while let Some(se) = e.step() {
            steps += 1;
            effects += se.effects.len();
        }
        assert_eq!(e.report(), bulk);
        assert_eq!(steps, bulk.events);
        assert!(effects > 0, "a loaded run must produce effects");
    }

    #[test]
    fn run_until_interleaving_matches_bulk_run() {
        let c = cfg(SchedulerKind::C2pl).with_lambda(0.6);
        let bulk = Simulator::run(&c);
        let mut e = Engine::new(&c);
        let mut n = 0u64;
        for ms in [10_000u64, 50_000, 120_000, 200_000] {
            n += e.run_until(SimTime::from_millis(ms));
        }
        assert_eq!(e.report(), bulk);
        assert_eq!(n, bulk.events);
    }
}

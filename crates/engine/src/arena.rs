//! Arena storage for per-transaction lifecycle state.
//!
//! The simulator keys its in-flight state by monotonically increasing
//! 64-bit ids (`TxnId`, `CohortId`). The original `BTreeMap` storage
//! paid an allocation-heavy tree node per handful of entries and
//! O(log n) probes on the event hot path; at the ROADMAP's target scale
//! (10⁶–10⁷ transactions per run) that dominated the profile. This
//! module provides the same interface shape at O(1) per operation, the
//! way `bds-wtpg` arenas its graph nodes:
//!
//! * [`IdMap`] — an open-addressing hash map from `u64` id to `u64`
//!   value (linear probing, backward-shift deletion, power-of-two
//!   capacity). No iteration-order guarantees — callers must not iterate
//!   it in any order-sensitive way, and the simulator never does: ids
//!   are only inserted, looked up, and removed.
//! * [`Arena`] — a slot arena with free-list reuse for arbitrary values,
//!   indexed through an [`IdMap`] of id → slot. Dead slots are recycled
//!   before the arena grows, so steady-state memory is O(live entries),
//!   not O(ids ever issued).
//!
//! Determinism: both structures are pure functions of their operation
//! sequence (the hash is a fixed multiplier, capacity growth is
//! deterministic), so swapping them in for `BTreeMap` cannot perturb
//! simulation results as long as no caller observes iteration order.

/// Sentinel key marking an empty bucket; ids are sequence numbers
/// starting at 0/1 and can never reach `u64::MAX` in practice.
const EMPTY: u64 = u64::MAX;

/// Fibonacci-hash multiplier (2⁶⁴ / φ, odd).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressing `u64 → u64` map with linear probing and
/// backward-shift deletion (no tombstones, so probe chains never rot).
#[derive(Debug, Clone)]
pub(crate) struct IdMap {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    mask: usize,
}

impl Default for IdMap {
    fn default() -> Self {
        Self::new()
    }
}

impl IdMap {
    /// An empty map.
    pub(crate) fn new() -> Self {
        let cap = 16;
        IdMap {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            len: 0,
            mask: cap - 1,
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> 32) as usize & self.mask
    }

    /// Look up `key`.
    pub(crate) fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert or overwrite `key → val`.
    pub(crate) fn insert(&mut self, key: u64, val: u64) {
        debug_assert_ne!(key, EMPTY);
        if self.len * 4 >= (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = val;
                return;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove `key`, returning its value.
    pub(crate) fn remove(&mut self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let val = self.vals[i];
        self.len -= 1;
        // Backward-shift deletion: slide the probe chain left so later
        // entries stay reachable without tombstones.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // `k` may move into the hole only if its home bucket lies at
            // or cyclically before the hole (otherwise the move would
            // put it ahead of its own probe start).
            let home = self.bucket(k);
            let dist_home = j.wrapping_sub(home) & self.mask;
            let dist_hole = j.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        Some(val)
    }

    /// Remove every entry whose `(key, value)` fails the predicate.
    pub(crate) fn retain(&mut self, mut f: impl FnMut(u64, u64) -> bool) {
        // Collect victims first: backward-shift deletion relocates
        // entries, so removing while scanning would skip or revisit.
        let doomed: Vec<u64> = self
            .keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, &v)| k != EMPTY && !f(k, v))
            .map(|(&k, _)| k)
            .collect();
        for k in doomed {
            self.remove(k);
        }
    }

    /// All live `(key, value)` pairs in unspecified order. Callers that
    /// need determinism (the checkpoint layer) must sort the result —
    /// bucket order depends on insertion history.
    pub(crate) fn pairs(&self) -> Vec<(u64, u64)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// Slot arena with free-list reuse, indexed by an [`IdMap`] of
/// id → slot. Values of dead slots are dropped on removal; the slot
/// itself is recycled.
#[derive(Debug)]
pub(crate) struct Arena<V> {
    index: IdMap,
    slots: Vec<Option<V>>,
    free: Vec<u32>,
}

impl<V> Default for Arena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Arena<V> {
    /// An empty arena.
    pub(crate) fn new() -> Self {
        Arena {
            index: IdMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Insert `id → value`.
    ///
    /// # Panics
    /// Panics if `id` is already present (the simulator never reuses a
    /// live id).
    pub(crate) fn insert(&mut self, id: u64, value: V) {
        assert!(self.index.get(id).is_none(), "Arena: duplicate id {id}");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(value);
                s
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, u64::from(slot));
    }

    /// Borrow the value for `id`.
    pub(crate) fn get(&self, id: u64) -> Option<&V> {
        let slot = self.index.get(id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Mutably borrow the value for `id`.
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        let slot = self.index.get(id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Remove `id`, returning its value and recycling the slot.
    pub(crate) fn remove(&mut self, id: u64) -> Option<V> {
        let slot = self.index.remove(id)?;
        self.free.push(slot as u32);
        self.slots[slot as usize].take()
    }

    /// All live ids in unspecified order (see [`IdMap::pairs`]); the
    /// checkpoint layer sorts before use.
    pub(crate) fn ids(&self) -> Vec<u64> {
        self.index.pairs().into_iter().map(|(k, _)| k).collect()
    }

    /// Arena occupancy as `(allocated_slots, free_listed_slots)`; the
    /// leak invariant `allocated − free == len()` mirrors the WTPG
    /// arena's.
    #[cfg(test)]
    pub(crate) fn stats(&self) -> (usize, usize) {
        (self.slots.len(), self.free.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_des::rng::Xoshiro256;
    use std::collections::BTreeMap;

    #[test]
    fn idmap_basic_ops() {
        let mut m = IdMap::new();
        assert_eq!(m.get(1), None);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(10));
        m.insert(1, 11);
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(2), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn idmap_survives_growth_and_collisions() {
        let mut m = IdMap::new();
        for i in 1..=10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 1..=10_000u64 {
            assert_eq!(m.get(i), Some(i * 3));
        }
    }

    #[test]
    fn idmap_matches_btreemap_on_random_ops() {
        let mut r = Xoshiro256::seed_from_u64(0xA4E7A);
        for _case in 0..50 {
            let mut map = IdMap::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for _ in 0..2_000 {
                // Small key space forces heavy collision/removal churn.
                let key = 1 + r.next_range(300);
                match r.next_range(3) {
                    0 => {
                        let v = r.next_range(1_000_000);
                        map.insert(key, v);
                        model.insert(key, v);
                    }
                    1 => {
                        assert_eq!(map.remove(key), model.remove(&key));
                    }
                    _ => {
                        assert_eq!(map.get(key), model.get(&key).copied());
                    }
                }
                assert_eq!(map.len(), model.len());
            }
            for k in 1..=300u64 {
                assert_eq!(map.get(k), model.get(&k).copied());
            }
        }
    }

    #[test]
    fn idmap_retain_drops_matching_values() {
        let mut m = IdMap::new();
        for i in 1..=100u64 {
            m.insert(i, i % 7);
        }
        m.retain(|_, v| v != 3);
        // 1..=100 has 14 values with i % 7 == 3 (3, 10, …, 94).
        assert_eq!(m.len(), 100 - 14);
        for i in 1..=100u64 {
            assert_eq!(m.get(i).is_some(), i % 7 != 3);
        }
    }

    #[test]
    fn arena_recycles_slots() {
        let mut a: Arena<String> = Arena::new();
        for i in 1..=8u64 {
            a.insert(i, format!("v{i}"));
        }
        assert_eq!(a.stats(), (8, 0));
        for i in 1..=4u64 {
            assert_eq!(a.remove(i), Some(format!("v{i}")));
        }
        assert_eq!(a.stats(), (8, 4));
        assert_eq!(a.len(), 4);
        // New inserts reuse freed slots instead of growing the arena.
        for i in 9..=12u64 {
            a.insert(i, format!("v{i}"));
        }
        assert_eq!(a.stats(), (8, 0));
        for i in 5..=12u64 {
            assert_eq!(a.get(i).map(String::as_str), Some(format!("v{i}").as_str()));
        }
        // Leak invariant: allocated − free == len.
        let (alloc, free) = a.stats();
        assert_eq!(alloc - free, a.len());
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn arena_rejects_duplicate_ids() {
        let mut a: Arena<u32> = Arena::new();
        a.insert(7, 1);
        a.insert(7, 2);
    }

    #[test]
    fn pairs_and_ids_enumerate_live_entries() {
        let mut m = IdMap::new();
        for i in 1..=50u64 {
            m.insert(i, i * 2);
        }
        m.remove(10);
        let mut pairs = m.pairs();
        pairs.sort_unstable();
        let expect: Vec<(u64, u64)> = (1..=50).filter(|&i| i != 10).map(|i| (i, i * 2)).collect();
        assert_eq!(pairs, expect);

        let mut a: Arena<u64> = Arena::new();
        for i in [3u64, 1, 7] {
            a.insert(i, i);
        }
        a.remove(1);
        let mut ids = a.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 7]);
    }

    #[test]
    fn arena_get_mut_mutates_in_place() {
        let mut a: Arena<Vec<u32>> = Arena::new();
        a.insert(1, vec![1]);
        a.get_mut(1).unwrap().push(2);
        assert_eq!(a.get(1), Some(&vec![1, 2]));
        assert_eq!(a.get_mut(99), None);
    }
}

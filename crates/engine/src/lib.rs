//! # bds-engine — the incremental step engine behind `batchsched`
//!
//! The simulator's event loop, factored into an [`engine::Engine`] that
//! can be driven one event at a time. Three layers live here:
//!
//! * [`engine::Engine`] — the event core: [`engine::Engine::step`] pops
//!   exactly one event and reports its externally visible
//!   [`engine::Effect`]s (grants, blocks, restarts, commits, fault
//!   transitions); [`engine::Engine::run_until`] and
//!   [`engine::Engine::run_to_horizon`] drive the same loop in bulk.
//!   [`sim::Simulator`] is a thin adapter over it, so exactly one event
//!   loop exists in the workspace.
//! * **Checkpoint/restore** — [`engine::Engine::snapshot`] captures the
//!   complete simulation state (timing wheel, transaction arena, RNG
//!   streams, scheduler op-log, metrics cursors) into a [`Snapshot`]
//!   that round-trips through the workspace's hand-rolled JSON layer;
//!   [`engine::Engine::restore`] rebuilds an engine whose continuation
//!   is byte-identical to the uninterrupted run.
//! * **Service front** — the `bds-serve` binary speaks NDJSON over
//!   stdin/stdout (or a TCP socket) and exposes submit / step /
//!   run-until / snapshot / restore / scheduler hot-swap / metrics
//!   streaming on top of a long-lived engine.
//!
//! The simulator-facing modules [`config`], [`metrics`] and [`sim`]
//! moved here from the `batchsched` crate, which re-exports them under
//! their old paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod arena;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod sim;
pub mod snapshot;

pub use config::{SimConfig, WorkloadKind};
pub use engine::{AbortCause, Effect, Engine, StepEffects};
pub use metrics::SimReport;
pub use sim::Simulator;
pub use snapshot::Snapshot;

//! Checkpoint state for the engine: the [`Snapshot`] captured by
//! [`crate::engine::Engine::snapshot`] and its JSON wire format.
//!
//! A snapshot is a complete, self-describing copy of the simulation
//! state: the event queue's entries, the CN/DPN servers, every live
//! transaction, all RNG streams, the fault bookkeeping, the statistics
//! accumulators, and — in place of the scheduler's opaque internal
//! state — the *op-log* of every scheduler call made so far. Schedulers
//! are deterministic, RNG-free state machines, so replaying the log
//! against a fresh instance reproduces the exact scheduler state; this
//! keeps the six protocol implementations free of serialization code.
//!
//! ## Wire format
//!
//! Serialization uses the workspace's hand-rolled JSON layer
//! (`bds-trace::json` writers, `bds-metrics::jsonv` parser) — no
//! external dependencies. The parser's only number type is `f64`, which
//! cannot hold every `u64`, so the format encodes **all integers as
//! decimal strings** and **all floats as `f64::to_bits` strings**:
//! round-trips are exact to the bit, which the byte-identity guarantee
//! requires. Booleans are JSON booleans; options are `null` or the
//! value.

use crate::engine::{Event, PendingReq, Phase, PrevSample, Txn, WaitKind};
use bds_des::stats::{TimeWeighted, Welford};
use bds_des::time::{Duration, SimTime};
use bds_fault::FaultAction;
use bds_machine::{Cohort, CohortId};
use bds_metrics::jsonv::{self, JsonValue};
use bds_sched::SchedulerKind;
use bds_trace::json::{JsonArr, JsonObj};
use bds_workload::spec::Access;
use bds_workload::{BatchSpec, FileId, LockMode, Step};
use bds_wtpg::TxnId;

/// One recorded scheduler call, replayed verbatim on restore.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SchedOp {
    Register { id: TxnId, spec: BatchSpec },
    TryStart { id: TxnId },
    Request { id: TxnId, step: usize },
    StepComplete { id: TxnId, step: usize },
    Validate { id: TxnId },
    Commit { id: TxnId },
    Abort { id: TxnId },
    Forget { id: TxnId },
    Drain,
}

/// Captured state of one DPN.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DpnState {
    pub(crate) ready: Vec<Cohort>,
    pub(crate) running: Option<(Cohort, SimTime, Duration)>,
    pub(crate) busy: TimeWeighted,
    pub(crate) busy_time: Duration,
    pub(crate) completed: u64,
}

/// Captured state of one [`bds_metrics::LogHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistState {
    pub(crate) counts: Vec<u64>,
    pub(crate) total: u64,
    pub(crate) sum_ticks: u128,
    pub(crate) min_ticks: u64,
    pub(crate) max_ticks: u64,
}

/// Captured state of an active metrics sampler.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetricsState {
    pub(crate) next_ms: u64,
    pub(crate) dt_ms: u64,
    pub(crate) names: Vec<String>,
    pub(crate) times_ms: Vec<u64>,
    pub(crate) values: Vec<f64>,
    pub(crate) prev: PrevSample,
}

/// A complete engine checkpoint (see the module docs). Produced by
/// [`crate::engine::Engine::snapshot`], consumed by
/// [`crate::engine::Engine::restore`]; [`Snapshot::to_json`] /
/// [`Snapshot::from_json`] round-trip it losslessly through text.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) cache_key: String,
    pub(crate) scheduler: SchedulerKind,
    pub(crate) label: String,
    pub(crate) now: SimTime,
    pub(crate) events_popped: u64,
    pub(crate) events: Vec<(SimTime, Event)>,
    pub(crate) cn_free_at: SimTime,
    pub(crate) cn_busy: TimeWeighted,
    pub(crate) cn_total_demand: Duration,
    pub(crate) cn_jobs: u64,
    pub(crate) dpns: Vec<DpnState>,
    pub(crate) oplog: Vec<SchedOp>,
    pub(crate) arrivals_rng: [u64; 4],
    pub(crate) arrivals_next: SimTime,
    pub(crate) gen_cursor: bds_workload::gen::GenCursor,
    pub(crate) txns: Vec<(u64, Txn)>,
    pub(crate) start_queue: Vec<u64>,
    pub(crate) pending: Vec<PendingReq>,
    pub(crate) next_txn: u64,
    pub(crate) next_seq: u64,
    pub(crate) next_cohort: u64,
    pub(crate) cohort_owner: Vec<(u64, u64)>,
    pub(crate) live: TimeWeighted,
    pub(crate) rt: Welford,
    pub(crate) rt_hist: Option<(f64, Vec<u64>, u64, u64)>,
    pub(crate) arrived: u64,
    pub(crate) started: u64,
    pub(crate) completed: u64,
    pub(crate) restarts: u64,
    pub(crate) lock_requests: u64,
    pub(crate) requests_denied: u64,
    pub(crate) retry_tick_armed: bool,
    pub(crate) fault_rng: [u64; 4],
    pub(crate) node_up: Vec<bool>,
    pub(crate) dpn_epoch: Vec<u32>,
    pub(crate) down_since: Vec<Option<SimTime>>,
    pub(crate) downtime: Vec<Duration>,
    pub(crate) held_cohorts: Vec<(u32, Cohort)>,
    pub(crate) aborts_validation: u64,
    pub(crate) aborts_scheduler: u64,
    pub(crate) aborts_fault: u64,
    pub(crate) killed: u64,
    pub(crate) retry_hist: HistState,
    pub(crate) rt_log: HistState,
    pub(crate) metrics: Option<MetricsState>,
}

impl Snapshot {
    /// Simulated time at which the snapshot was taken.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed when the snapshot was taken.
    pub fn events_popped(&self) -> u64 {
        self.events_popped
    }

    /// The scheduler kind active when the snapshot was taken.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Configuration cache key of the run that produced the snapshot.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }
}

// ----- encode helpers --------------------------------------------------

/// Bit-exact float encoding (the parser's `f64` numbers are lossy for
/// 64-bit integers, and text round-trips of floats are fragile).
fn fb(v: f64) -> String {
    v.to_bits().to_string()
}

fn arr_u64(vals: impl IntoIterator<Item = u64>) -> String {
    let mut a = JsonArr::new();
    for v in vals {
        a.str(&v.to_string());
    }
    a.finish()
}

fn arr_f64(vals: &[f64]) -> String {
    let mut a = JsonArr::new();
    for &v in vals {
        a.str(&fb(v));
    }
    a.finish()
}

fn enc_rng(s: [u64; 4]) -> String {
    arr_u64(s)
}

fn enc_tw(t: &TimeWeighted) -> String {
    let (last_change, value, weighted_sum, start) = t.state();
    let mut a = JsonArr::new();
    a.str(&last_change.0.to_string());
    a.str(&fb(value));
    a.str(&fb(weighted_sum));
    a.str(&start.0.to_string());
    a.finish()
}

fn enc_welford(w: &Welford) -> String {
    let (count, mean, m2, min, max) = w.state();
    let mut a = JsonArr::new();
    a.str(&count.to_string());
    a.str(&fb(mean));
    a.str(&fb(m2));
    match min {
        Some(v) => a.str(&fb(v)),
        None => a.raw("null"),
    }
    match max {
        Some(v) => a.str(&fb(v)),
        None => a.raw("null"),
    }
    a.finish()
}

fn enc_cohort(c: &Cohort) -> String {
    let mut a = JsonArr::new();
    a.str(&c.id.0.to_string());
    a.str(&c.remaining.0.to_string());
    a.str(&c.quantum.0.to_string());
    a.finish()
}

fn enc_fault(f: &FaultAction) -> String {
    let mut o = JsonObj::new();
    match f {
        FaultAction::CrashNode { node } => {
            o.str("f", "crash");
            o.str("node", &node.to_string());
        }
        FaultAction::RecoverNode { node } => {
            o.str("f", "recover");
            o.str("node", &node.to_string());
        }
        FaultAction::StallCn { dur } => {
            o.str("f", "stall");
            o.str("dur", &dur.0.to_string());
        }
    }
    o.finish()
}

fn enc_event(at: SimTime, e: &Event) -> String {
    let mut o = JsonObj::new();
    o.str("at", &at.0.to_string());
    match e {
        Event::Arrival => o.str("k", "arr"),
        Event::CnDone { id, phase } => {
            o.str("k", "cn");
            o.str("id", &id.0.to_string());
            match phase {
                Phase::Started => o.str("p", "s"),
                Phase::Dispatch { step } => {
                    o.str("p", "d");
                    o.str("step", &step.to_string());
                }
                Phase::StepDone { step } => {
                    o.str("p", "sd");
                    o.str("step", &step.to_string());
                }
                Phase::Commit => o.str("p", "c"),
            }
        }
        Event::SliceEnd { node, epoch } => {
            o.str("k", "slice");
            o.str("node", &node.to_string());
            o.str("epoch", &epoch.to_string());
        }
        Event::RetryTick => o.str("k", "retry"),
        Event::Restart { id } => {
            o.str("k", "restart");
            o.str("id", &id.0.to_string());
        }
        Event::Fault { action } => {
            o.str("k", "fault");
            o.raw("a", &enc_fault(action));
        }
        Event::CohortArrive { node, cohort } => {
            o.str("k", "cohort");
            o.str("node", &node.to_string());
            o.raw("co", &enc_cohort(cohort));
        }
    }
    o.finish()
}

fn enc_spec(spec: &BatchSpec) -> String {
    let mut a = JsonArr::new();
    for s in &spec.steps {
        let mut o = JsonObj::new();
        o.str("f", &s.file.0.to_string());
        o.str(
            "m",
            match s.mode {
                LockMode::Shared => "s",
                LockMode::Exclusive => "x",
            },
        );
        o.str(
            "a",
            match s.access {
                Access::Read => "r",
                Access::Write => "w",
            },
        );
        o.str("c", &fb(s.cost));
        o.str("d", &fb(s.declared));
        a.raw(&o.finish());
    }
    a.finish()
}

fn enc_op(op: &SchedOp) -> String {
    let mut o = JsonObj::new();
    let mut id_op = |name: &str, id: &TxnId| {
        o.str("op", name);
        o.str("id", &id.0.to_string());
    };
    match op {
        SchedOp::Register { id, spec } => {
            id_op("reg", id);
            o.raw("spec", &enc_spec(spec));
        }
        SchedOp::TryStart { id } => id_op("try", id),
        SchedOp::Request { id, step } => {
            id_op("req", id);
            o.str("step", &step.to_string());
        }
        SchedOp::StepComplete { id, step } => {
            id_op("sc", id);
            o.str("step", &step.to_string());
        }
        SchedOp::Validate { id } => id_op("val", id),
        SchedOp::Commit { id } => id_op("commit", id),
        SchedOp::Abort { id } => id_op("abort", id),
        SchedOp::Forget { id } => id_op("forget", id),
        SchedOp::Drain => o.str("op", "drain"),
    }
    o.finish()
}

fn enc_kind(k: SchedulerKind) -> String {
    match k {
        SchedulerKind::Nodc => "nodc".to_string(),
        SchedulerKind::Asl => "asl".to_string(),
        SchedulerKind::C2pl => "c2pl".to_string(),
        SchedulerKind::Opt => "opt".to_string(),
        SchedulerKind::Gow => "gow".to_string(),
        SchedulerKind::Wdl => "wdl".to_string(),
        SchedulerKind::Dgcc => "dgcc".to_string(),
        SchedulerKind::Brook => "brook".to_string(),
        SchedulerKind::Low(k) => format!("low:{k}"),
    }
}

fn enc_hist(h: &HistState) -> String {
    let mut o = JsonObj::new();
    o.raw("counts", &arr_u64(h.counts.iter().copied()));
    o.str("total", &h.total.to_string());
    o.str("sum", &h.sum_ticks.to_string());
    o.str("min", &h.min_ticks.to_string());
    o.str("max", &h.max_ticks.to_string());
    o.finish()
}

fn enc_prev(p: &PrevSample) -> String {
    let mut o = JsonObj::new();
    o.str("at", &p.at_ms.to_string());
    o.str("arr", &p.arrived.to_string());
    o.str("comp", &p.completed.to_string());
    o.str("rst", &p.restarts.to_string());
    o.str("den", &p.denied.to_string());
    o.str("lr", &p.lock_requests.to_string());
    o.str("cnb", &fb(p.cn_busy_ms));
    o.raw("dpnb", &arr_f64(&p.dpn_busy_ms));
    o.finish()
}

// ----- decode helpers --------------------------------------------------

fn field<'a>(v: &'a JsonValue, k: &str) -> Result<&'a JsonValue, String> {
    v.get(k).ok_or_else(|| format!("missing field '{k}'"))
}

fn p_str(v: &JsonValue) -> Result<&str, String> {
    v.as_str().ok_or_else(|| "expected a string".to_string())
}

fn p_u64(v: &JsonValue) -> Result<u64, String> {
    p_str(v)?.parse().map_err(|e| format!("bad u64: {e}"))
}

fn p_u128(v: &JsonValue) -> Result<u128, String> {
    p_str(v)?.parse().map_err(|e| format!("bad u128: {e}"))
}

fn p_u32(v: &JsonValue) -> Result<u32, String> {
    p_str(v)?.parse().map_err(|e| format!("bad u32: {e}"))
}

fn p_usize(v: &JsonValue) -> Result<usize, String> {
    p_str(v)?.parse().map_err(|e| format!("bad usize: {e}"))
}

fn p_f64(v: &JsonValue) -> Result<f64, String> {
    Ok(f64::from_bits(p_u64(v)?))
}

fn p_bool(v: &JsonValue) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err("expected a boolean".to_string()),
    }
}

fn p_arr(v: &JsonValue) -> Result<&[JsonValue], String> {
    v.as_arr().ok_or_else(|| "expected an array".to_string())
}

fn g_u64(v: &JsonValue, k: &str) -> Result<u64, String> {
    p_u64(field(v, k)?)
}

fn g_str<'a>(v: &'a JsonValue, k: &str) -> Result<&'a str, String> {
    p_str(field(v, k)?)
}

fn dec_time(v: &JsonValue) -> Result<SimTime, String> {
    Ok(SimTime(p_u64(v)?))
}

fn dec_dur(v: &JsonValue) -> Result<Duration, String> {
    Ok(Duration(p_u64(v)?))
}

fn dec_rng(v: &JsonValue) -> Result<[u64; 4], String> {
    let a = p_arr(v)?;
    if a.len() != 4 {
        return Err("RNG state must have 4 words".to_string());
    }
    Ok([p_u64(&a[0])?, p_u64(&a[1])?, p_u64(&a[2])?, p_u64(&a[3])?])
}

fn dec_tw(v: &JsonValue) -> Result<TimeWeighted, String> {
    let a = p_arr(v)?;
    if a.len() != 4 {
        return Err("time-weighted state must have 4 entries".to_string());
    }
    Ok(TimeWeighted::from_state(
        dec_time(&a[0])?,
        p_f64(&a[1])?,
        p_f64(&a[2])?,
        dec_time(&a[3])?,
    ))
}

fn dec_opt_f64(v: &JsonValue) -> Result<Option<f64>, String> {
    match v {
        JsonValue::Null => Ok(None),
        _ => Ok(Some(p_f64(v)?)),
    }
}

fn dec_welford(v: &JsonValue) -> Result<Welford, String> {
    let a = p_arr(v)?;
    if a.len() != 5 {
        return Err("Welford state must have 5 entries".to_string());
    }
    Ok(Welford::from_state(
        p_u64(&a[0])?,
        p_f64(&a[1])?,
        p_f64(&a[2])?,
        dec_opt_f64(&a[3])?,
        dec_opt_f64(&a[4])?,
    ))
}

fn dec_cohort(v: &JsonValue) -> Result<Cohort, String> {
    let a = p_arr(v)?;
    if a.len() != 3 {
        return Err("cohort must have 3 entries".to_string());
    }
    Ok(Cohort {
        id: CohortId(p_u64(&a[0])?),
        remaining: dec_dur(&a[1])?,
        quantum: dec_dur(&a[2])?,
    })
}

fn dec_fault(v: &JsonValue) -> Result<FaultAction, String> {
    match g_str(v, "f")? {
        "crash" => Ok(FaultAction::CrashNode {
            node: p_u32(field(v, "node")?)?,
        }),
        "recover" => Ok(FaultAction::RecoverNode {
            node: p_u32(field(v, "node")?)?,
        }),
        "stall" => Ok(FaultAction::StallCn {
            dur: dec_dur(field(v, "dur")?)?,
        }),
        other => Err(format!("unknown fault action '{other}'")),
    }
}

fn dec_event(v: &JsonValue) -> Result<(SimTime, Event), String> {
    let at = dec_time(field(v, "at")?)?;
    let ev = match g_str(v, "k")? {
        "arr" => Event::Arrival,
        "cn" => {
            let id = TxnId(g_u64(v, "id")?);
            let phase = match g_str(v, "p")? {
                "s" => Phase::Started,
                "d" => Phase::Dispatch {
                    step: p_usize(field(v, "step")?)?,
                },
                "sd" => Phase::StepDone {
                    step: p_usize(field(v, "step")?)?,
                },
                "c" => Phase::Commit,
                other => return Err(format!("unknown phase '{other}'")),
            };
            Event::CnDone { id, phase }
        }
        "slice" => Event::SliceEnd {
            node: p_u32(field(v, "node")?)?,
            epoch: p_u32(field(v, "epoch")?)?,
        },
        "retry" => Event::RetryTick,
        "restart" => Event::Restart {
            id: TxnId(g_u64(v, "id")?),
        },
        "fault" => Event::Fault {
            action: dec_fault(field(v, "a")?)?,
        },
        "cohort" => Event::CohortArrive {
            node: p_u32(field(v, "node")?)?,
            cohort: dec_cohort(field(v, "co")?)?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok((at, ev))
}

fn dec_spec(v: &JsonValue) -> Result<BatchSpec, String> {
    let mut steps = Vec::new();
    for s in p_arr(v)? {
        steps.push(Step {
            file: FileId(p_u32(field(s, "f")?)?),
            mode: match g_str(s, "m")? {
                "s" => LockMode::Shared,
                "x" => LockMode::Exclusive,
                other => return Err(format!("unknown lock mode '{other}'")),
            },
            access: match g_str(s, "a")? {
                "r" => Access::Read,
                "w" => Access::Write,
                other => return Err(format!("unknown access '{other}'")),
            },
            cost: p_f64(field(s, "c")?)?,
            declared: p_f64(field(s, "d")?)?,
        });
    }
    Ok(BatchSpec { steps })
}

fn dec_op(v: &JsonValue) -> Result<SchedOp, String> {
    let id = || -> Result<TxnId, String> { Ok(TxnId(g_u64(v, "id")?)) };
    let step = || -> Result<usize, String> { p_usize(field(v, "step")?) };
    Ok(match g_str(v, "op")? {
        "reg" => SchedOp::Register {
            id: id()?,
            spec: dec_spec(field(v, "spec")?)?,
        },
        "try" => SchedOp::TryStart { id: id()? },
        "req" => SchedOp::Request {
            id: id()?,
            step: step()?,
        },
        "sc" => SchedOp::StepComplete {
            id: id()?,
            step: step()?,
        },
        "val" => SchedOp::Validate { id: id()? },
        "commit" => SchedOp::Commit { id: id()? },
        "abort" => SchedOp::Abort { id: id()? },
        "forget" => SchedOp::Forget { id: id()? },
        "drain" => SchedOp::Drain,
        other => return Err(format!("unknown scheduler op '{other}'")),
    })
}

fn dec_kind(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s {
        "nodc" => SchedulerKind::Nodc,
        "asl" => SchedulerKind::Asl,
        "c2pl" => SchedulerKind::C2pl,
        "opt" => SchedulerKind::Opt,
        "gow" => SchedulerKind::Gow,
        "wdl" => SchedulerKind::Wdl,
        "dgcc" => SchedulerKind::Dgcc,
        "brook" => SchedulerKind::Brook,
        other => match other.strip_prefix("low:") {
            Some(k) => SchedulerKind::Low(k.parse().map_err(|e| format!("bad LOW K '{k}': {e}"))?),
            None => return Err(format!("unknown scheduler kind '{other}'")),
        },
    })
}

fn dec_u64_vec(v: &JsonValue) -> Result<Vec<u64>, String> {
    p_arr(v)?.iter().map(p_u64).collect()
}

fn dec_hist(v: &JsonValue) -> Result<HistState, String> {
    Ok(HistState {
        counts: dec_u64_vec(field(v, "counts")?)?,
        total: g_u64(v, "total")?,
        sum_ticks: p_u128(field(v, "sum")?)?,
        min_ticks: g_u64(v, "min")?,
        max_ticks: g_u64(v, "max")?,
    })
}

fn dec_prev(v: &JsonValue) -> Result<PrevSample, String> {
    Ok(PrevSample {
        at_ms: g_u64(v, "at")?,
        arrived: g_u64(v, "arr")?,
        completed: g_u64(v, "comp")?,
        restarts: g_u64(v, "rst")?,
        denied: g_u64(v, "den")?,
        lock_requests: g_u64(v, "lr")?,
        cn_busy_ms: p_f64(field(v, "cnb")?)?,
        dpn_busy_ms: p_arr(field(v, "dpnb")?)?
            .iter()
            .map(p_f64)
            .collect::<Result<_, _>>()?,
    })
}

impl Snapshot {
    /// Serialize to the JSON wire format (see the module docs). The
    /// output is deterministic: equal snapshots produce equal bytes.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("v", "1");
        o.str("cache_key", &self.cache_key);
        o.str("sched", &enc_kind(self.scheduler));
        o.str("label", &self.label);
        o.str("now", &self.now.0.to_string());
        o.str("popped", &self.events_popped.to_string());
        let mut evs = JsonArr::new();
        for (at, e) in &self.events {
            evs.raw(&enc_event(*at, e));
        }
        o.raw("events", &evs.finish());
        let mut cn = JsonObj::new();
        cn.str("free", &self.cn_free_at.0.to_string());
        cn.raw("busy", &enc_tw(&self.cn_busy));
        cn.str("dem", &self.cn_total_demand.0.to_string());
        cn.str("jobs", &self.cn_jobs.to_string());
        o.raw("cn", &cn.finish());
        let mut dpns = JsonArr::new();
        for d in &self.dpns {
            let mut od = JsonObj::new();
            let mut ready = JsonArr::new();
            for c in &d.ready {
                ready.raw(&enc_cohort(c));
            }
            od.raw("ready", &ready.finish());
            match &d.running {
                Some((c, end, len)) => {
                    let mut run = JsonObj::new();
                    run.raw("co", &enc_cohort(c));
                    run.str("end", &end.0.to_string());
                    run.str("len", &len.0.to_string());
                    od.raw("run", &run.finish());
                }
                None => od.raw("run", "null"),
            }
            od.raw("busy", &enc_tw(&d.busy));
            od.str("bt", &d.busy_time.0.to_string());
            od.str("done", &d.completed.to_string());
            dpns.raw(&od.finish());
        }
        o.raw("dpns", &dpns.finish());
        let mut ops = JsonArr::new();
        for op in &self.oplog {
            ops.raw(&enc_op(op));
        }
        o.raw("oplog", &ops.finish());
        o.raw("arr_rng", &enc_rng(self.arrivals_rng));
        o.str("arr_next", &self.arrivals_next.0.to_string());
        let mut gen = JsonObj::new();
        let mut rngs = JsonArr::new();
        for s in &self.gen_cursor.rngs {
            rngs.raw(&enc_rng(*s));
        }
        gen.raw("rngs", &rngs.finish());
        match self.gen_cursor.normal_spare {
            Some(v) => gen.str("spare", &fb(v)),
            None => gen.raw("spare", "null"),
        }
        o.raw("gen", &gen.finish());
        let mut txns = JsonArr::new();
        for (id, t) in &self.txns {
            let mut ot = JsonObj::new();
            ot.str("id", &id.to_string());
            ot.raw("spec", &enc_spec(&t.spec));
            ot.str("arr", &t.arrival.0.to_string());
            ot.str("step", &t.step.to_string());
            ot.str("oc", &t.outstanding_cohorts.to_string());
            ot.bool("es", t.ever_started);
            ot.str("fk", &t.fault_kills.to_string());
            txns.raw(&ot.finish());
        }
        o.raw("txns", &txns.finish());
        o.raw("startq", &arr_u64(self.start_queue.iter().copied()));
        let mut pend = JsonArr::new();
        for p in &self.pending {
            let mut op = JsonObj::new();
            op.str("seq", &p.seq.to_string());
            op.str("id", &p.id.0.to_string());
            op.str("step", &p.step.to_string());
            op.str("file", &p.file.0.to_string());
            op.str(
                "kind",
                match p.kind {
                    WaitKind::Blocked => "b",
                    WaitKind::Delayed => "d",
                },
            );
            op.bool("el", p.eligible);
            pend.raw(&op.finish());
        }
        o.raw("pending", &pend.finish());
        o.str("nt", &self.next_txn.to_string());
        o.str("ns", &self.next_seq.to_string());
        o.str("nc", &self.next_cohort.to_string());
        let mut owner = JsonArr::new();
        for &(k, v) in &self.cohort_owner {
            owner.raw(&arr_u64([k, v]));
        }
        o.raw("owner", &owner.finish());
        o.raw("live", &enc_tw(&self.live));
        o.raw("rt", &enc_welford(&self.rt));
        match &self.rt_hist {
            Some((width, counts, overflow, total)) => {
                let mut oh = JsonObj::new();
                oh.str("w", &fb(*width));
                oh.raw("counts", &arr_u64(counts.iter().copied()));
                oh.str("of", &overflow.to_string());
                oh.str("tot", &total.to_string());
                o.raw("rth", &oh.finish());
            }
            None => o.raw("rth", "null"),
        }
        o.str("arrived", &self.arrived.to_string());
        o.str("started", &self.started.to_string());
        o.str("completed", &self.completed.to_string());
        o.str("restarts", &self.restarts.to_string());
        o.str("lock_requests", &self.lock_requests.to_string());
        o.str("requests_denied", &self.requests_denied.to_string());
        o.bool("rta", self.retry_tick_armed);
        o.raw("frng", &enc_rng(self.fault_rng));
        let mut nup = JsonArr::new();
        for &up in &self.node_up {
            nup.raw(if up { "true" } else { "false" });
        }
        o.raw("nup", &nup.finish());
        o.raw(
            "epoch",
            &arr_u64(self.dpn_epoch.iter().map(|&e| u64::from(e))),
        );
        let mut ds = JsonArr::new();
        for s in &self.down_since {
            match s {
                Some(t) => ds.str(&t.0.to_string()),
                None => ds.raw("null"),
            }
        }
        o.raw("dsince", &ds.finish());
        o.raw("dtime", &arr_u64(self.downtime.iter().map(|d| d.0)));
        let mut held = JsonArr::new();
        for (node, c) in &self.held_cohorts {
            let mut oh = JsonObj::new();
            oh.str("n", &node.to_string());
            oh.raw("co", &enc_cohort(c));
            held.raw(&oh.finish());
        }
        o.raw("held", &held.finish());
        o.str("ab_val", &self.aborts_validation.to_string());
        o.str("ab_sched", &self.aborts_scheduler.to_string());
        o.str("ab_fault", &self.aborts_fault.to_string());
        o.str("killed", &self.killed.to_string());
        o.raw("rhist", &enc_hist(&self.retry_hist));
        o.raw("rlog", &enc_hist(&self.rt_log));
        match &self.metrics {
            Some(m) => {
                let mut om = JsonObj::new();
                om.str("next", &m.next_ms.to_string());
                om.str("dt", &m.dt_ms.to_string());
                let mut names = JsonArr::new();
                for n in &m.names {
                    names.str(n);
                }
                om.raw("names", &names.finish());
                om.raw("t", &arr_u64(m.times_ms.iter().copied()));
                om.raw("vals", &arr_f64(&m.values));
                om.raw("prev", &enc_prev(&m.prev));
                o.raw("metrics", &om.finish());
            }
            None => o.raw("metrics", "null"),
        }
        o.finish()
    }

    /// Parse a snapshot from its JSON wire format.
    ///
    /// # Errors
    /// Returns a description of the first syntax or schema error.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = jsonv::parse(text)?;
        if g_str(&v, "v")? != "1" {
            return Err(format!(
                "unsupported snapshot version '{}'",
                g_str(&v, "v")?
            ));
        }
        let events = p_arr(field(&v, "events")?)?
            .iter()
            .map(dec_event)
            .collect::<Result<Vec<_>, _>>()?;
        let cn = field(&v, "cn")?;
        let dpns = p_arr(field(&v, "dpns")?)?
            .iter()
            .map(|d| -> Result<DpnState, String> {
                let ready = p_arr(field(d, "ready")?)?
                    .iter()
                    .map(dec_cohort)
                    .collect::<Result<Vec<_>, _>>()?;
                let running = match field(d, "run")? {
                    JsonValue::Null => None,
                    r => Some((
                        dec_cohort(field(r, "co")?)?,
                        dec_time(field(r, "end")?)?,
                        dec_dur(field(r, "len")?)?,
                    )),
                };
                Ok(DpnState {
                    ready,
                    running,
                    busy: dec_tw(field(d, "busy")?)?,
                    busy_time: dec_dur(field(d, "bt")?)?,
                    completed: g_u64(d, "done")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let oplog = p_arr(field(&v, "oplog")?)?
            .iter()
            .map(dec_op)
            .collect::<Result<Vec<_>, _>>()?;
        let gen = field(&v, "gen")?;
        let gen_cursor = bds_workload::gen::GenCursor {
            rngs: p_arr(field(gen, "rngs")?)?
                .iter()
                .map(dec_rng)
                .collect::<Result<Vec<_>, _>>()?,
            normal_spare: dec_opt_f64(field(gen, "spare")?)?,
        };
        let txns = p_arr(field(&v, "txns")?)?
            .iter()
            .map(|t| -> Result<(u64, Txn), String> {
                Ok((
                    g_u64(t, "id")?,
                    Txn {
                        spec: dec_spec(field(t, "spec")?)?,
                        arrival: dec_time(field(t, "arr")?)?,
                        step: p_usize(field(t, "step")?)?,
                        outstanding_cohorts: p_u32(field(t, "oc")?)?,
                        ever_started: p_bool(field(t, "es")?)?,
                        fault_kills: p_u32(field(t, "fk")?)?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pending = p_arr(field(&v, "pending")?)?
            .iter()
            .map(|p| -> Result<PendingReq, String> {
                Ok(PendingReq {
                    seq: g_u64(p, "seq")?,
                    id: TxnId(g_u64(p, "id")?),
                    step: p_usize(field(p, "step")?)?,
                    file: FileId(p_u32(field(p, "file")?)?),
                    kind: match g_str(p, "kind")? {
                        "b" => WaitKind::Blocked,
                        "d" => WaitKind::Delayed,
                        other => return Err(format!("unknown wait kind '{other}'")),
                    },
                    eligible: p_bool(field(p, "el")?)?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cohort_owner = p_arr(field(&v, "owner")?)?
            .iter()
            .map(|pair| -> Result<(u64, u64), String> {
                let a = p_arr(pair)?;
                if a.len() != 2 {
                    return Err("owner pair must have 2 entries".to_string());
                }
                Ok((p_u64(&a[0])?, p_u64(&a[1])?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rt_hist = match field(&v, "rth")? {
            JsonValue::Null => None,
            h => Some((
                p_f64(field(h, "w")?)?,
                dec_u64_vec(field(h, "counts")?)?,
                g_u64(h, "of")?,
                g_u64(h, "tot")?,
            )),
        };
        let down_since = p_arr(field(&v, "dsince")?)?
            .iter()
            .map(|s| -> Result<Option<SimTime>, String> {
                match s {
                    JsonValue::Null => Ok(None),
                    t => Ok(Some(dec_time(t)?)),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let held_cohorts = p_arr(field(&v, "held")?)?
            .iter()
            .map(|h| -> Result<(u32, Cohort), String> {
                Ok((p_u32(field(h, "n")?)?, dec_cohort(field(h, "co")?)?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = match field(&v, "metrics")? {
            JsonValue::Null => None,
            m => Some(MetricsState {
                next_ms: g_u64(m, "next")?,
                dt_ms: g_u64(m, "dt")?,
                names: p_arr(field(m, "names")?)?
                    .iter()
                    .map(|n| Ok(p_str(n)?.to_string()))
                    .collect::<Result<Vec<_>, String>>()?,
                times_ms: dec_u64_vec(field(m, "t")?)?,
                values: p_arr(field(m, "vals")?)?
                    .iter()
                    .map(p_f64)
                    .collect::<Result<Vec<_>, _>>()?,
                prev: dec_prev(field(m, "prev")?)?,
            }),
        };
        Ok(Snapshot {
            cache_key: g_str(&v, "cache_key")?.to_string(),
            scheduler: dec_kind(g_str(&v, "sched")?)?,
            label: g_str(&v, "label")?.to_string(),
            now: dec_time(field(&v, "now")?)?,
            events_popped: g_u64(&v, "popped")?,
            events,
            cn_free_at: dec_time(field(cn, "free")?)?,
            cn_busy: dec_tw(field(cn, "busy")?)?,
            cn_total_demand: dec_dur(field(cn, "dem")?)?,
            cn_jobs: g_u64(cn, "jobs")?,
            dpns,
            oplog,
            arrivals_rng: dec_rng(field(&v, "arr_rng")?)?,
            arrivals_next: dec_time(field(&v, "arr_next")?)?,
            gen_cursor,
            txns,
            start_queue: dec_u64_vec(field(&v, "startq")?)?,
            pending,
            next_txn: g_u64(&v, "nt")?,
            next_seq: g_u64(&v, "ns")?,
            next_cohort: g_u64(&v, "nc")?,
            cohort_owner,
            live: dec_tw(field(&v, "live")?)?,
            rt: dec_welford(field(&v, "rt")?)?,
            rt_hist,
            arrived: g_u64(&v, "arrived")?,
            started: g_u64(&v, "started")?,
            completed: g_u64(&v, "completed")?,
            restarts: g_u64(&v, "restarts")?,
            lock_requests: g_u64(&v, "lock_requests")?,
            requests_denied: g_u64(&v, "requests_denied")?,
            retry_tick_armed: p_bool(field(&v, "rta")?)?,
            fault_rng: dec_rng(field(&v, "frng")?)?,
            node_up: p_arr(field(&v, "nup")?)?
                .iter()
                .map(p_bool)
                .collect::<Result<Vec<_>, _>>()?,
            dpn_epoch: p_arr(field(&v, "epoch")?)?
                .iter()
                .map(p_u32)
                .collect::<Result<Vec<_>, _>>()?,
            down_since,
            downtime: p_arr(field(&v, "dtime")?)?
                .iter()
                .map(dec_dur)
                .collect::<Result<Vec<_>, _>>()?,
            held_cohorts,
            aborts_validation: g_u64(&v, "ab_val")?,
            aborts_scheduler: g_u64(&v, "ab_sched")?,
            aborts_fault: g_u64(&v, "ab_fault")?,
            killed: g_u64(&v, "killed")?,
            retry_hist: dec_hist(field(&v, "rhist")?)?,
            rt_log: dec_hist(field(&v, "rlog")?)?,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, WorkloadKind};
    use crate::engine::Engine;
    use bds_des::time::Duration;

    fn cfg(kind: SchedulerKind) -> SimConfig {
        let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 32 });
        c.lambda_tps = 1.0;
        c.horizon = Duration::from_millis(120_000);
        c
    }

    #[test]
    fn snapshot_json_roundtrip_is_lossless() {
        let mut e = Engine::new(&cfg(SchedulerKind::Gow));
        e.enable_checkpointing();
        e.run_until(SimTime::from_millis(40_000));
        let snap = e.snapshot();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("parse back");
        assert_eq!(snap, back);
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn snapshot_json_roundtrip_with_metrics_and_faults() {
        let base = cfg(SchedulerKind::C2pl).with_faults(
            bds_fault::FaultPlan::parse("crash=1@20x10,crash=4@50x15,retry=1000:8000:4")
                .expect("plan parses"),
        );
        let mut e = Engine::new(&base);
        e.enable_checkpointing();
        e.set_metrics_interval(Duration::from_millis(5_000));
        e.run_until(SimTime::from_millis(60_000));
        let snap = e.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("parse back");
        assert_eq!(snap, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"v":"99"}"#).is_err());
    }
}

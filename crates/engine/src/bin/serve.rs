//! `bds-serve` — a long-lived streaming front over [`bds_engine::Engine`].
//!
//! Speaks newline-delimited JSON (NDJSON): one request object per line
//! on stdin, one response object per line on stdout. With `--listen
//! ADDR` it serves the same protocol over TCP instead (one client at a
//! time; the simulation session persists across connections).
//!
//! ```text
//! {"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":2000,"shards":4}
//! {"cmd":"run-until","t_ms":50000}
//! {"cmd":"step","n":10}
//! {"cmd":"submit","steps":[["r",3,1200.0],["w",7,600.0]]}
//! {"cmd":"snapshot","path":"/tmp/ckpt.json"}
//! {"cmd":"swap-scheduler","scheduler":"asl"}
//! {"cmd":"restore","path":"/tmp/ckpt.json"}
//! {"cmd":"metrics","format":"prom"}
//! {"cmd":"report"}
//! {"cmd":"status"}
//! {"cmd":"trace","capacity":4096}   then later   {"cmd":"trace","dump":"/tmp/t.json"}
//! {"cmd":"watch","t_ms":200000,"interval_ms":5000}
//! {"cmd":"quit"}
//! ```
//!
//! Every response carries `"ok":true` or `"ok":false` plus `"error"`.
//! `watch` is the one streaming command: it advances the simulation in
//! `interval_ms` sim-time chunks and emits one `{"watch":true,...}`
//! NDJSON telemetry delta per chunk (engine progress, windowed
//! commit/restart/arrival rates, host-profiler phase shares and
//! shard/barrier stats) *before* the final `"ok"` reply, so a running
//! simulation can be observed without stopping it.
//! The binary uses only the standard library and the workspace's own
//! hand-rolled JSON reader/writers — no external dependencies.

use bds_des::time::{Duration, SimTime};
use bds_engine::config::{SimConfig, WorkloadKind};
use bds_engine::engine::{AbortCause, Effect, Engine};
use bds_engine::snapshot::Snapshot;
use bds_fault::{FaultAction, FaultPlan};
use bds_metrics::{parse, JsonValue, PromText};
use bds_obs::Profiler;
use bds_sched::SchedulerKind;
use bds_trace::json::{JsonArr, JsonObj};
use bds_trace::{chrome_trace, Tracer};
use bds_workload::{BatchSpec, FileId, LockMode, Step};
use std::io::{BufRead, BufReader, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut session = Session::default();
    if let Some(pos) = args.iter().position(|a| a == "--listen") {
        let addr = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--listen requires an address (e.g. 127.0.0.1:7070)");
            std::process::exit(2);
        });
        serve_tcp(&addr, &mut session);
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve_stream(stdin.lock(), stdout.lock(), &mut session);
    }
}

fn serve_tcp(addr: &str, session: &mut Session) {
    let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    // Report the bound address (supports ephemeral-port binds in tests).
    if let Ok(local) = listener.local_addr() {
        println!("listening {local}");
    }
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        if serve_stream(reader, stream, session) {
            break; // quit ends the process, not just the connection
        }
    }
}

/// Pump requests until EOF or `quit`; returns true on `quit`.
fn serve_stream(reader: impl BufRead, mut writer: impl Write, session: &mut Session) -> bool {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, quit) = session.handle_line(&line, &mut writer);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if quit {
            return true;
        }
    }
    false
}

/// The streaming session: one engine, reconfigurable and restorable.
#[derive(Default)]
struct Session {
    cfg: Option<SimConfig>,
    engine: Option<Engine>,
    /// Worker shards for `run`/`run-until` (1 = serial engine loop).
    shards: usize,
}

fn err(msg: &str) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", false);
    o.str("error", msg);
    o.finish()
}

fn ok() -> JsonObj {
    let mut o = JsonObj::new();
    o.bool("ok", true);
    o
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_num).map(|n| n as u64)
}

fn parse_kind(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "nodc" => SchedulerKind::Nodc,
        "asl" => SchedulerKind::Asl,
        "gow" => SchedulerKind::Gow,
        "c2pl" => SchedulerKind::C2pl,
        "opt" => SchedulerKind::Opt,
        "wdl" => SchedulerKind::Wdl,
        "dgcc" => SchedulerKind::Dgcc,
        "brook" => SchedulerKind::Brook,
        "low" => SchedulerKind::Low(2),
        other => {
            if let Some(k) = other.strip_prefix("low:").or(other.strip_prefix("low(")) {
                let k = k.trim_end_matches(')');
                let k: u32 = k.parse().map_err(|_| format!("bad LOW depth {k:?}"))?;
                SchedulerKind::Low(k)
            } else {
                return Err(format!("unknown scheduler {other:?}"));
            }
        }
    })
}

fn parse_workload(s: &str) -> Result<WorkloadKind, String> {
    let lower = s.to_ascii_lowercase();
    if lower == "exp2" {
        return Ok(WorkloadKind::Exp2);
    }
    if let Some(n) = lower.strip_prefix("exp1:") {
        let num_files: u32 = n.parse().map_err(|_| format!("bad file count {n:?}"))?;
        return Ok(WorkloadKind::Exp1 { num_files });
    }
    if let Some(rest) = lower.strip_prefix("exp3:") {
        let (n, sigma) = rest
            .split_once(':')
            .ok_or_else(|| "exp3 wants exp3:FILES:SIGMA".to_string())?;
        let num_files: u32 = n.parse().map_err(|_| format!("bad file count {n:?}"))?;
        let sigma: f64 = sigma.parse().map_err(|_| format!("bad sigma {sigma:?}"))?;
        return Ok(WorkloadKind::Exp3 { num_files, sigma });
    }
    Err(format!("unknown workload {s:?} (exp1:N | exp2 | exp3:N:S)"))
}

fn effect_json(e: &Effect) -> String {
    let mut o = JsonObj::new();
    match e {
        Effect::Arrived { txn } => {
            o.str("e", "arrived");
            o.int("txn", txn.0);
        }
        Effect::Admitted { txn } => {
            o.str("e", "admitted");
            o.int("txn", txn.0);
        }
        Effect::AdmitRefused { txn } => {
            o.str("e", "admit-refused");
            o.int("txn", txn.0);
        }
        Effect::Granted { txn, step, file } => {
            o.str("e", "granted");
            o.int("txn", txn.0);
            o.int("step", *step as u64);
            o.int("file", u64::from(file.0));
        }
        Effect::Blocked { txn, step, file } => {
            o.str("e", "blocked");
            o.int("txn", txn.0);
            o.int("step", *step as u64);
            o.int("file", u64::from(file.0));
        }
        Effect::Delayed { txn, step, file } => {
            o.str("e", "delayed");
            o.int("txn", txn.0);
            o.int("step", *step as u64);
            o.int("file", u64::from(file.0));
        }
        Effect::RestartScheduled { txn } => {
            o.str("e", "restart");
            o.int("txn", txn.0);
        }
        Effect::Committed { txn } => {
            o.str("e", "committed");
            o.int("txn", txn.0);
        }
        Effect::Aborted { txn, cause } => {
            o.str("e", "aborted");
            o.int("txn", txn.0);
            o.str(
                "cause",
                match cause {
                    AbortCause::Validation => "validation",
                    AbortCause::Scheduler => "scheduler",
                    AbortCause::Fault => "fault",
                },
            );
        }
        Effect::Killed { txn } => {
            o.str("e", "killed");
            o.int("txn", txn.0);
        }
        Effect::Fault(action) => {
            o.str("e", "fault");
            match action {
                FaultAction::CrashNode { node } => {
                    o.str("action", "crash");
                    o.int("node", u64::from(*node));
                }
                FaultAction::RecoverNode { node } => {
                    o.str("action", "recover");
                    o.int("node", u64::from(*node));
                }
                FaultAction::StallCn { dur } => {
                    o.str("action", "stall-cn");
                    o.int("dur_ms", dur.as_millis());
                }
            }
        }
    }
    o.finish()
}

impl Session {
    /// Dispatch one request line; returns (reply JSON, quit?).
    ///
    /// `sink` is the live connection: only `watch` writes to it (one
    /// NDJSON delta per interval, ahead of the final reply line).
    fn handle_line(&mut self, line: &str, sink: &mut dyn Write) -> (String, bool) {
        let req = match parse(line) {
            Ok(v) => v,
            Err(e) => return (err(&format!("bad JSON: {e}")), false),
        };
        let Some(cmd) = req.get("cmd").and_then(JsonValue::as_str) else {
            return (err("missing \"cmd\""), false);
        };
        if cmd == "quit" {
            return (ok().finish(), true);
        }
        let reply = match cmd {
            "configure" => self.configure(&req),
            "step" => self.step(&req),
            "run-until" => self.run_until(&req),
            "run" => self.run(),
            "submit" => self.submit(&req),
            "snapshot" => self.snapshot(&req),
            "restore" => self.restore(&req),
            "swap-scheduler" => self.swap(&req),
            "metrics" => self.metrics(&req),
            "report" => self.report(),
            "trace" => self.trace(&req),
            "watch" => self.watch(&req, sink),
            "status" => self.status(),
            other => Err(format!("unknown cmd {other:?}")),
        };
        (reply.unwrap_or_else(|e| err(&e)), false)
    }

    fn engine(&mut self) -> Result<&mut Engine, String> {
        self.engine
            .as_mut()
            .ok_or_else(|| "no session: send configure first".to_string())
    }

    fn configure(&mut self, req: &JsonValue) -> Result<String, String> {
        let kind = match req.get("scheduler").and_then(JsonValue::as_str) {
            Some(s) => parse_kind(s)?,
            None => SchedulerKind::Gow,
        };
        let workload = match req.get("workload").and_then(JsonValue::as_str) {
            Some(s) => parse_workload(s)?,
            None => WorkloadKind::Exp1 { num_files: 16 },
        };
        let mut cfg = SimConfig::new(kind, workload);
        if let Some(l) = req.get("lambda").and_then(JsonValue::as_num) {
            if !(l > 0.0 && l.is_finite()) {
                return Err(format!("lambda must be positive, got {l}"));
            }
            cfg.lambda_tps = l;
        }
        if let Some(dd) = get_u64(req, "dd") {
            cfg.dd = dd as u32;
        }
        if let Some(h) = get_u64(req, "horizon_s") {
            cfg.horizon = Duration::from_secs(h);
        }
        if let Some(seed) = get_u64(req, "seed") {
            cfg.seed = seed;
        }
        if let Some(mpl) = get_u64(req, "mpl") {
            cfg.mpl = Some(mpl as u32);
        }
        if let Some(plan) = req.get("faults").and_then(JsonValue::as_str) {
            cfg = cfg.with_faults(FaultPlan::parse(plan)?);
        }
        if cfg.dd < 1 || cfg.dd > cfg.costs.num_nodes {
            return Err(format!(
                "dd {} out of range 1..={}",
                cfg.dd, cfg.costs.num_nodes
            ));
        }
        let mut engine = Engine::new(&cfg);
        engine.enable_checkpointing();
        engine.enable_effects();
        if let Some(dt) = get_u64(req, "metrics_dt_ms") {
            engine.set_metrics_interval(Duration::from_millis(dt));
        }
        if let Some(JsonValue::Bool(true)) = req.get("profile") {
            engine.set_profiler(Profiler::on());
        }
        self.shards = get_u64(req, "shards").unwrap_or(1).max(1) as usize;
        let mut o = ok();
        o.str("scheduler", engine.label());
        o.int("horizon_ms", engine.horizon().as_millis());
        o.int("shards", self.shards as u64);
        self.cfg = Some(cfg);
        self.engine = Some(engine);
        Ok(o.finish())
    }

    fn step(&mut self, req: &JsonValue) -> Result<String, String> {
        let n = get_u64(req, "n").unwrap_or(1);
        let e = self.engine()?;
        let mut effects = JsonArr::new();
        let mut processed = 0u64;
        let mut at = e.now();
        for _ in 0..n {
            let Some(se) = e.step() else { break };
            processed += 1;
            at = se.at;
            for fx in &se.effects {
                effects.raw(&effect_json(fx));
            }
        }
        let mut o = ok();
        o.int("events", processed);
        o.int("now_ms", at.as_millis());
        o.bool("done", processed < n);
        o.raw("effects", &effects.finish());
        Ok(o.finish())
    }

    fn run_until(&mut self, req: &JsonValue) -> Result<String, String> {
        let t = get_u64(req, "t_ms").ok_or("run-until wants t_ms")?;
        let shards = self.shards;
        let e = self.engine()?;
        let n = if shards > 1 {
            e.run_until_sharded(SimTime::from_millis(t), shards)
        } else {
            e.run_until(SimTime::from_millis(t))
        };
        let mut o = ok();
        o.int("events", n);
        o.int("now_ms", e.now().as_millis());
        Ok(o.finish())
    }

    fn run(&mut self) -> Result<String, String> {
        let shards = self.shards;
        let e = self.engine()?;
        let before = e.events_processed();
        if shards > 1 {
            e.run_to_horizon_sharded(shards);
        } else {
            e.run_to_horizon();
        }
        let mut o = ok();
        o.int("events", e.events_processed() - before);
        o.int("now_ms", e.now().as_millis());
        Ok(o.finish())
    }

    fn submit(&mut self, req: &JsonValue) -> Result<String, String> {
        // steps: [["r"|"rs"|"w", file, cost, declared?], ...] — "r" reads
        // under an X lock like the paper's Pattern 1, "rs" under a shared
        // lock, "w" writes.
        let raw = req
            .get("steps")
            .and_then(JsonValue::as_arr)
            .ok_or("submit wants steps: [[op,file,cost,declared?],...]")?;
        let mut steps = Vec::with_capacity(raw.len());
        for (i, s) in raw.iter().enumerate() {
            let parts = s
                .as_arr()
                .ok_or_else(|| format!("step {i}: not an array"))?;
            let op = parts
                .first()
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("step {i}: missing op"))?;
            let file = parts
                .get(1)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("step {i}: missing file"))? as u32;
            let cost = parts
                .get(2)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("step {i}: missing cost"))?;
            if !(cost.is_finite() && cost > 0.0) {
                return Err(format!("step {i}: bad cost {cost}"));
            }
            let mut step = match op {
                "r" => Step::read(FileId(file), LockMode::Exclusive, cost),
                "rs" => Step::read(FileId(file), LockMode::Shared, cost),
                "w" => Step::write(FileId(file), cost),
                other => return Err(format!("step {i}: unknown op {other:?}")),
            };
            if let Some(declared) = parts.get(3).and_then(JsonValue::as_num) {
                if !(declared.is_finite() && declared >= 0.0) {
                    return Err(format!("step {i}: bad declared {declared}"));
                }
                step = step.with_declared(declared);
            }
            steps.push(step);
        }
        if steps.is_empty() {
            return Err("submit wants at least one step".into());
        }
        let e = self.engine()?;
        let txn = e.submit(BatchSpec::new(steps));
        let mut o = ok();
        o.int("txn", txn.0);
        o.int("now_ms", e.now().as_millis());
        Ok(o.finish())
    }

    fn snapshot(&mut self, req: &JsonValue) -> Result<String, String> {
        let path = req
            .get("path")
            .and_then(JsonValue::as_str)
            .map(String::from);
        let e = self.engine()?;
        let snap = e.snapshot();
        let text = snap.to_json();
        let mut o = ok();
        o.int("now_ms", snap.now().as_millis());
        o.int("events", snap.events_popped());
        match path {
            Some(p) => {
                std::fs::write(&p, &text).map_err(|io| format!("write {p}: {io}"))?;
                o.str("path", &p);
                o.int("bytes", text.len() as u64);
            }
            None => o.raw("snapshot", &text),
        }
        Ok(o.finish())
    }

    fn restore(&mut self, req: &JsonValue) -> Result<String, String> {
        let path = req
            .get("path")
            .and_then(JsonValue::as_str)
            .ok_or("restore wants path")?;
        let text = std::fs::read_to_string(path).map_err(|io| format!("read {path}: {io}"))?;
        let snap = Snapshot::from_json(&text)?;
        let base = self
            .cfg
            .as_ref()
            .ok_or("no session: send configure first (it sets the base config)")?;
        // The restored run keeps the snapshot's scheduler; everything
        // else must match the configured base exactly.
        let mut check = base.clone();
        check.scheduler = snap.scheduler();
        if check.cache_key() != snap.cache_key() {
            return Err("snapshot was taken under a different configuration".into());
        }
        // Carry the session's profiler across the rebuild so a watch or
        // profile spanning a restore keeps one continuous timeline (the
        // rebuild itself lands in the `restore` phase).
        let obs = self
            .engine
            .as_mut()
            .map(Engine::take_profiler)
            .unwrap_or_default();
        let mut engine = Engine::restore_with_profiler(base, &snap, obs);
        engine.enable_effects();
        let mut o = ok();
        o.str("scheduler", engine.label());
        o.int("now_ms", engine.now().as_millis());
        o.int("events", engine.events_processed());
        self.engine = Some(engine);
        Ok(o.finish())
    }

    fn swap(&mut self, req: &JsonValue) -> Result<String, String> {
        let kind = req
            .get("scheduler")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "swap-scheduler wants scheduler".to_string())
            .and_then(parse_kind)?;
        let e = self.engine()?;
        let drained = e.swap_scheduler(kind);
        let mut o = ok();
        o.str("scheduler", e.label());
        o.int("drained_events", drained);
        o.int("now_ms", e.now().as_millis());
        Ok(o.finish())
    }

    fn metrics(&mut self, req: &JsonValue) -> Result<String, String> {
        let format = req
            .get("format")
            .and_then(JsonValue::as_str)
            .unwrap_or("prom");
        let e = self.engine()?;
        let r = e.report();
        let in_flight = e.in_flight();
        let body = match format {
            "prom" => {
                let mut p = PromText::new();
                let labels: &[(&str, &str)] = &[("scheduler", &r.scheduler)];
                p.counter(
                    "bds_txns_arrived",
                    "Transactions arrived",
                    labels,
                    r.arrived,
                );
                p.counter(
                    "bds_txns_committed",
                    "Transactions committed",
                    labels,
                    r.completed,
                );
                p.counter(
                    "bds_txns_killed",
                    "Transactions permanently killed",
                    labels,
                    r.killed,
                );
                p.counter(
                    "bds_txn_restarts",
                    "Attempts aborted and restarted",
                    labels,
                    r.restarts,
                );
                p.counter(
                    "bds_events_total",
                    "Simulation events processed",
                    labels,
                    r.events,
                );
                p.counter(
                    "bds_lock_requests",
                    "Lock requests evaluated",
                    labels,
                    r.lock_requests,
                );
                p.gauge(
                    "bds_txns_in_flight",
                    "Arrived, not yet committed or killed",
                    labels,
                    in_flight as f64,
                );
                p.gauge(
                    "bds_sim_now_seconds",
                    "Simulated clock",
                    labels,
                    e.now().as_millis() as f64 / 1e3,
                );
                p.gauge(
                    "bds_cn_utilization",
                    "Control-node CPU utilization",
                    labels,
                    r.cn_utilization,
                );
                p.gauge(
                    "bds_dpn_utilization",
                    "Mean data-node utilization",
                    labels,
                    r.dpn_utilization,
                );
                p.gauge(
                    "bds_availability",
                    "Fraction of node-time up",
                    labels,
                    r.availability,
                );
                p.histogram(
                    "bds_response_time_seconds",
                    "Committed-transaction response time",
                    labels,
                    e.rt_histogram(),
                );
                p.finish()
            }
            "csv" => {
                let mut csv = String::from("metric,value\n");
                for (k, v) in [
                    ("arrived", r.arrived as f64),
                    ("completed", r.completed as f64),
                    ("killed", r.killed as f64),
                    ("restarts", r.restarts as f64),
                    ("in_flight", in_flight as f64),
                    ("events", r.events as f64),
                    ("mean_rt_s", r.mean_rt_secs()),
                    ("throughput_tps", r.throughput_tps()),
                    ("cn_utilization", r.cn_utilization),
                    ("dpn_utilization", r.dpn_utilization),
                    ("availability", r.availability),
                ] {
                    csv.push_str(&format!("{k},{v}\n"));
                }
                csv
            }
            "series-csv" => {
                // Detaches the sampler: the sampled series so far, as CSV.
                e.take_metrics()
                    .ok_or(
                        "no series: configure with metrics_dt_ms first (series-csv detaches it)",
                    )?
                    .to_csv()
            }
            other => {
                return Err(format!(
                    "unknown format {other:?} (prom | csv | series-csv)"
                ))
            }
        };
        let mut o = ok();
        o.str("format", format);
        o.str("body", &body);
        Ok(o.finish())
    }

    fn report(&mut self) -> Result<String, String> {
        let e = self.engine()?;
        let mut o = ok();
        o.raw("report", &e.report().to_json());
        o.int("in_flight", e.in_flight());
        Ok(o.finish())
    }

    fn trace(&mut self, req: &JsonValue) -> Result<String, String> {
        let capacity = get_u64(req, "capacity");
        let dump = req
            .get("dump")
            .and_then(JsonValue::as_str)
            .map(String::from);
        let e = self.engine()?;
        let mut o = ok();
        match (capacity, dump) {
            (Some(cap), None) => {
                e.set_tracer(Tracer::ring(cap as usize));
                o.int("capacity", cap);
            }
            (None, Some(path)) => {
                let data = e
                    .take_trace()
                    .ok_or("no tracer: send trace with capacity first")?;
                let text = chrome_trace(&data);
                std::fs::write(&path, &text).map_err(|io| format!("write {path}: {io}"))?;
                o.str("path", &path);
                o.int("bytes", text.len() as u64);
            }
            _ => return Err("trace wants capacity (install) xor dump (write chrome trace)".into()),
        }
        Ok(o.finish())
    }

    fn status(&mut self) -> Result<String, String> {
        let shards = self.shards;
        let e = self.engine()?;
        let mut o = ok();
        o.str("scheduler", e.label());
        o.int("now_ms", e.now().as_millis());
        o.int("horizon_ms", e.horizon().as_millis());
        o.int("events", e.events_processed());
        o.int("arrived", e.arrived());
        o.int("completed", e.completed());
        o.int("killed", e.killed());
        o.int("in_flight", e.in_flight());
        o.bool(
            "conserved",
            e.arrived() == e.completed() + e.killed() + e.in_flight(),
        );
        o.int("shards", shards as u64);
        o.bool("profiler", e.profiler_enabled());
        // Why sharded runs (if any) degraded to the serial loop — stays
        // set for the session once tripped, so a client that configured
        // shards>1 can see its parallelism silently went away.
        match e.shard_fallback_reason() {
            Some(reason) => o.str("shard_fallback", reason),
            None => o.raw("shard_fallback", "null"),
        }
        o.raw("build", &bds_obs::build_info_json());
        Ok(o.finish())
    }

    /// Advance the simulation in `interval_ms` sim-time chunks up to
    /// `t_ms` (default: the horizon), streaming one NDJSON telemetry
    /// delta per chunk to the client before the final reply. Installs
    /// the host profiler if none is attached, so phase shares and
    /// shard/barrier stats are included from the first delta.
    fn watch(&mut self, req: &JsonValue, sink: &mut dyn Write) -> Result<String, String> {
        let shards = self.shards;
        let e = self
            .engine
            .as_mut()
            .ok_or("no session: send configure first")?;
        let target = get_u64(req, "t_ms")
            .unwrap_or(e.horizon().as_millis())
            .min(e.horizon().as_millis());
        let interval = get_u64(req, "interval_ms").unwrap_or(1_000);
        if interval == 0 {
            return Err("interval_ms must be positive".into());
        }
        let max_deltas = get_u64(req, "max_deltas").unwrap_or(u64::MAX);
        if !e.profiler_enabled() {
            e.set_profiler(Profiler::on());
        }
        let started = std::time::Instant::now();
        let mut prev = WatchPoint::capture(e, e.now().as_millis());
        let mut deltas = 0u64;
        // Advance a sim-time cursor rather than chasing `e.now()`: once
        // the event queue drains the clock stops moving, but the cursor
        // still reaches `target` and the loop terminates.
        let mut cursor = prev.t_ms;
        while cursor < target && deltas < max_deltas {
            cursor = (cursor + interval).min(target);
            if shards > 1 {
                e.run_until_sharded(SimTime::from_millis(cursor), shards);
            } else {
                e.run_until(SimTime::from_millis(cursor));
            }
            let cur = WatchPoint::capture(e, cursor);
            deltas += 1;
            let line = watch_delta(e, &prev, &cur, deltas, started.elapsed().as_millis() as u64);
            if writeln!(sink, "{line}")
                .and_then(|()| sink.flush())
                .is_err()
            {
                break; // client went away; stop advancing on its behalf
            }
            prev = cur;
        }
        let mut o = ok();
        o.int("deltas", deltas);
        o.int("t_ms", target);
        o.int("interval_ms", interval);
        o.int("now_ms", e.now().as_millis());
        o.int("events", e.events_processed());
        Ok(o.finish())
    }
}

/// Counter snapshot at one watch interval boundary; deltas between two
/// of these give the windowed rates.
struct WatchPoint {
    /// Interval-boundary sim time (not `e.now()`, which stops at the
    /// last event), so rates divide by the full chunk width.
    t_ms: u64,
    events: u64,
    arrived: u64,
    completed: u64,
    killed: u64,
    restarts: u64,
}

impl WatchPoint {
    fn capture(e: &Engine, t_ms: u64) -> WatchPoint {
        let r = e.report();
        WatchPoint {
            t_ms,
            events: e.events_processed(),
            arrived: e.arrived(),
            completed: e.completed(),
            killed: e.killed(),
            restarts: r.restarts,
        }
    }
}

/// One `{"watch":true,...}` NDJSON line: cumulative progress, windowed
/// per-sim-second rates, and (when the profiler is live) phase shares
/// plus shard/barrier telemetry.
fn watch_delta(e: &Engine, prev: &WatchPoint, cur: &WatchPoint, seq: u64, wall_ms: u64) -> String {
    let mut o = JsonObj::new();
    o.bool("watch", true);
    o.int("seq", seq);
    o.int("now_ms", cur.t_ms);
    o.int("wall_ms", wall_ms);
    o.int("events", cur.events);
    o.int("arrived", cur.arrived);
    o.int("completed", cur.completed);
    o.int("killed", cur.killed);
    o.int("restarts", cur.restarts);
    o.int("in_flight", e.in_flight());
    let dt_s = cur.t_ms.saturating_sub(prev.t_ms) as f64 / 1e3;
    let rate = |now: u64, before: u64| {
        if dt_s > 0.0 {
            now.saturating_sub(before) as f64 / dt_s
        } else {
            0.0
        }
    };
    let mut rates = JsonObj::new();
    rates.num("arrivals_per_s", rate(cur.arrived, prev.arrived));
    rates.num("commits_per_s", rate(cur.completed, prev.completed));
    rates.num("restarts_per_s", rate(cur.restarts, prev.restarts));
    rates.num("events_per_s", rate(cur.events, prev.events));
    o.raw("rates", &rates.finish());
    if let Some(prof) = e.profile() {
        let mut phases = JsonObj::new();
        for (label, share) in prof.phase_shares() {
            phases.num(label, share);
        }
        o.raw("phases", &phases.finish());
        let mut obs = JsonObj::new();
        obs.int("windows", prof.windows);
        obs.int("rotations", prof.rotations);
        obs.int("stales", prof.stales);
        obs.int("fanout_taken", prof.fanout_taken);
        obs.int("fanout_inline", prof.fanout_inline);
        obs.int("shards", prof.shards.len() as u64);
        obs.opt_num("imbalance", prof.imbalance());
        obs.opt_num("min_attribution", prof.min_attribution());
        o.raw("obs", &obs.finish());
    }
    o.finish()
}

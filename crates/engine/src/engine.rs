//! The incremental step engine: §4.1's machine executing §2's batch
//! transactions under one of §3/§4.2's schedulers, driven one event at
//! a time.
//!
//! ## Transaction lifecycle
//!
//! 1. **Arrival** (Poisson, rate λ) at the control node; the declaration
//!    is registered with the scheduler and the transaction joins the
//!    FIFO start queue.
//! 2. **Admission**: the scheduler's `try_start` runs (ASL checks its
//!    whole lock set; GOW tests chain form at `toptime`; LOW checks the
//!    K-conflict bound). Admitted transactions pay `sot_time` on the CN.
//! 3. **Steps**: each step needing a new lock submits a request; the
//!    scheduler grants (→ execute), blocks (→ wait for the file's locks
//!    to be released) or delays (→ wait for a state change / retry
//!    tick). Execution sends the transaction to the file's home node
//!    (one CN message), splits it into `DD` cohorts served round-robin
//!    at the DPNs, and returns (one CN message).
//! 4. **Commit**: `cot_time` on the CN (two-phase-commit coordination);
//!    OPT validates here and restarts from scratch on failure. Locks
//!    release, waiters wake, the WTPG drops the node.
//!
//! All CPU costs serialize through the CN's FCFS server; all scheduling
//! decisions take effect at the event that issued them (the CPU time
//! defers only the transaction's own progress), which keeps the
//! simulation deterministic.
//!
//! ## Engine vs. Simulator
//!
//! [`Engine`] owns the single event loop. [`Engine::step`] pops exactly
//! one event and (when effect reporting is enabled) returns the
//! externally visible [`Effect`]s it produced; [`Engine::run_until`] and
//! [`Engine::run_to_horizon`] drive the same internal `pump` in bulk.
//! The historical [`crate::sim::Simulator`] API is a thin adapter over
//! an `Engine`.
//!
//! Three optional observers ride on the hot loop, each costing one
//! predictable branch when off (the same pattern as `bds-trace`'s
//! `Tracer`): the tracer, the metrics sampler, and the effect buffer.
//! A fourth — the scheduler op-log behind [`Engine::snapshot`] — is
//! enabled by [`Engine::enable_checkpointing`] and records every
//! scheduler call so a restore can rebuild the scheduler by replay
//! (schedulers are deterministic, RNG-free state machines).

use crate::arena::{Arena, IdMap};
use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::snapshot::{DpnState, HistState, MetricsState, SchedOp, Snapshot};
use bds_des::events::Scheduled;
use bds_des::fcfs::FcfsServer;
use bds_des::stats::{Histogram, TimeWeighted, Welford};
use bds_des::time::{Duration, SimTime};
use bds_des::EventQueue;
use bds_fault::{DegradedMode, FaultAction};
use bds_machine::{Cohort, CohortId, Dpn, Placement};
use bds_metrics::{LogHistogram, Sampler, TimeSeries};
use bds_obs::{ObsReport, Phase as ObsPhase, Profiler};
use bds_sched::{ReqDecision, Scheduler, SchedulerKind, StartDecision};
use bds_trace::{EventKind, Rec, TraceData, Tracer};
use bds_workload::arrivals::PoissonArrivals;
use bds_workload::gen::WorkloadGen;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::VecDeque;

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Event {
    /// The next transaction arrives.
    Arrival,
    /// The CN finished a processing phase for a transaction.
    CnDone { id: TxnId, phase: Phase },
    /// A DPN's current round-robin slice ended. `epoch` tombstones
    /// slices scheduled before a crash of the node: a crash bumps the
    /// node's epoch, so stale slice-ends are ignored.
    SliceEnd { node: u32, epoch: u32 },
    /// Periodic re-submission of blocked/delayed requests.
    RetryTick,
    /// An aborted transaction re-enters the start queue.
    Restart { id: TxnId },
    /// A fault-plan action fires (DPN crash/recovery, CN stall).
    Fault { action: FaultAction },
    /// A dispatch message delivers a cohort to its DPN after the link
    /// delay (only scheduled when the fault plan models link faults).
    CohortArrive { node: u32, cohort: Cohort },
}

/// CN processing phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Phase {
    /// Startup (`sot_time`) done; begin step 0.
    Started,
    /// Lock granted and send message processed; dispatch cohorts.
    Dispatch { step: usize },
    /// All cohorts returned and the receive message processed.
    StepDone { step: usize },
    /// Commit processing (`cot_time`) done; validate and finish.
    Commit,
}

/// Why a pending request is waiting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WaitKind {
    Blocked,
    Delayed,
}

/// Why a transaction attempt was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// OPT certification failed at commit.
    Validation,
    /// The scheduler ordered a restart (restart-oriented protocols).
    Scheduler,
    /// An injected fault (DPN crash) destroyed the attempt's cohorts.
    Fault,
}

/// One externally visible consequence of processing an event, reported
/// by [`Engine::step`] when effect collection is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// A transaction arrived (Poisson process or [`Engine::submit`]).
    Arrived {
        /// The arriving transaction.
        txn: TxnId,
    },
    /// The scheduler admitted a queued transaction.
    Admitted {
        /// The admitted transaction.
        txn: TxnId,
    },
    /// The scheduler refused admission (the transaction stays queued).
    AdmitRefused {
        /// The refused transaction.
        txn: TxnId,
    },
    /// A lock request was granted.
    Granted {
        /// The requesting transaction.
        txn: TxnId,
        /// The step that requested the lock.
        step: usize,
        /// The file the lock covers.
        file: FileId,
    },
    /// A lock request blocked on held locks.
    Blocked {
        /// The requesting transaction.
        txn: TxnId,
        /// The step that requested the lock.
        step: usize,
        /// The contended file.
        file: FileId,
    },
    /// A lock request was delayed by scheduler policy.
    Delayed {
        /// The requesting transaction.
        txn: TxnId,
        /// The step that requested the lock.
        step: usize,
        /// The file in question.
        file: FileId,
    },
    /// An aborted transaction re-entered the start queue.
    RestartScheduled {
        /// The restarting transaction.
        txn: TxnId,
    },
    /// A transaction committed.
    Committed {
        /// The committed transaction.
        txn: TxnId,
    },
    /// A transaction attempt was aborted.
    Aborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Why the attempt died.
        cause: AbortCause,
    },
    /// A transaction was dropped permanently (fault retry cap).
    Killed {
        /// The killed transaction.
        txn: TxnId,
    },
    /// A fault-plan action fired.
    Fault(FaultAction),
}

/// The result of one [`Engine::step`]: the event's timestamp plus the
/// effects it produced (empty unless [`Engine::enable_effects`] ran).
#[derive(Debug, Clone, PartialEq)]
pub struct StepEffects {
    /// Simulated time of the processed event.
    pub at: SimTime,
    /// Externally visible consequences, in occurrence order.
    pub effects: Vec<Effect>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PendingReq {
    /// Submission sequence number; the `pending` vec is kept in
    /// ascending `seq` order, which is also retry order.
    pub(crate) seq: u64,
    pub(crate) id: TxnId,
    pub(crate) step: usize,
    pub(crate) file: FileId,
    pub(crate) kind: WaitKind,
    pub(crate) eligible: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Txn {
    pub(crate) spec: BatchSpec,
    pub(crate) arrival: SimTime,
    pub(crate) step: usize,
    pub(crate) outstanding_cohorts: u32,
    pub(crate) ever_started: bool,
    /// How many times a fault has killed an attempt of this
    /// transaction; drives the retry backoff and the permanent-kill cap.
    pub(crate) fault_kills: u32,
}

mod shard;

/// The incremental step engine (see the module docs).
pub struct Engine {
    placement: Placement,
    events: EventQueue<Event>,
    /// Simulated time of the last processed event. Mirrors
    /// `events.now()` in serial runs; during a sharded run it can run
    /// ahead of the queue clock while DPN-local slice ends (held in
    /// shard lanes rather than the global queue) are processed.
    clock: SimTime,
    cn: FcfsServer,
    dpns: Vec<Dpn>,
    scheduler: Box<dyn Scheduler>,
    arrivals: PoissonArrivals,
    genr: Box<dyn WorkloadGen>,
    /// In-flight transactions in a slot arena (free-list reuse; see
    /// [`crate::arena`]) — never iterated on the hot path, so the
    /// unordered index is determinism-safe (the checkpoint layer sorts).
    txns: Arena<Txn>,
    start_queue: VecDeque<TxnId>,
    /// Blocked/delayed lock requests in ascending `seq` order (inserts
    /// always append — `next_seq` is monotone — and removals preserve
    /// order), so retry sweeps visit requests in submission order.
    pending: Vec<PendingReq>,
    next_txn: u64,
    next_seq: u64,
    next_cohort: u64,
    /// Live cohort → owning transaction (unordered; lookups only).
    cohort_owner: IdMap,
    live: TimeWeighted,
    rt: Welford,
    /// Legacy 1-second-bin response-time histogram; allocated only under
    /// `cfg.legacy_second_bin_percentiles` (the log-bucketed `rt_log`
    /// serves percentiles otherwise).
    rt_hist: Option<Histogram>,
    arrived: u64,
    started: u64,
    completed: u64,
    restarts: u64,
    lock_requests: u64,
    requests_denied: u64,
    retry_tick_armed: bool,
    label: String,
    // ----- fault-injection state (all inert when the plan is empty) ---
    /// True when `cfg.faults` is non-empty; gates every fault-path
    /// branch so an empty plan stays byte-identical to the pre-fault
    /// simulator.
    faults_on: bool,
    /// True when the plan models link delay/loss: cohort dispatch goes
    /// through `CohortArrive` events instead of immediate delivery.
    link_on: bool,
    /// Dedicated fault RNG (link-loss draws). Never touches the
    /// workload or arrival streams.
    fault_rng: bds_des::rng::Xoshiro256,
    /// Per-DPN up/down flag.
    node_up: Vec<bool>,
    /// Per-DPN crash epoch; bumped on crash to tombstone stale
    /// `SliceEnd` events.
    dpn_epoch: Vec<u32>,
    /// When each currently-down DPN went down.
    down_since: Vec<Option<SimTime>>,
    /// Accumulated per-DPN downtime.
    downtime: Vec<Duration>,
    /// Cohorts parked under [`DegradedMode::Hold`] until their home
    /// node recovers: `(home node, cohort)` in arrival order.
    held_cohorts: Vec<(u32, Cohort)>,
    /// Aborts caused by OPT validation failure.
    aborts_validation: u64,
    /// Aborts ordered by the scheduler (restart-oriented protocols).
    aborts_scheduler: u64,
    /// Aborts caused by injected faults (DPN crashes).
    aborts_fault: u64,
    /// Transactions dropped permanently after exhausting the retry cap.
    killed: u64,
    /// Histogram of fault-kill attempt counts at permanent kill time.
    retry_hist: LogHistogram,
    /// Reused buffer for released/touched files at commit and abort.
    released_buf: Vec<FileId>,
    /// Reused buffer for eligible pending-request sequence numbers.
    eligible_buf: Vec<u64>,
    /// Lifecycle tracer. Lives on the engine, **not** on `SimConfig`:
    /// the report must stay a pure function of the configuration
    /// (`cache_key` hashes the config), and tracing must never perturb
    /// the simulation itself.
    tracer: Tracer,
    /// Log-bucketed response-time histogram (sub-second percentiles).
    rt_log: LogHistogram,
    /// Time-series sampler. Like the tracer it lives off-config and only
    /// observes: with sampling off this costs one branch per event.
    metrics: Sampler,
    /// Counter/busy-time snapshot at the previous metrics sample, for
    /// per-window rates and utilizations.
    metrics_prev: PrevSample,
    /// Effect buffer for [`Engine::step`]; `None` (one branch per
    /// emission site) unless [`Engine::enable_effects`] ran.
    effects: Option<Vec<Effect>>,
    /// Scheduler op-log for [`Engine::snapshot`]; `None` (one branch
    /// per scheduler call) unless [`Engine::enable_checkpointing`] ran.
    oplog: Option<Vec<SchedOp>>,
    /// True while [`Engine::swap_scheduler`] drains in-flight work:
    /// admissions pause so the live set runs dry.
    admission_hold: bool,
    /// Set by [`Engine::replace_scheduler`]: a custom scheduler cannot
    /// be rebuilt from `SchedulerKind`, so checkpointing is refused.
    custom_scheduler: bool,
    /// Live sharded-run state; `Some` only while
    /// [`Engine::run_until_sharded`] executes. Every other entry point
    /// sees a plain serial engine.
    shard_rt: Option<shard::ShardRt>,
    /// Host-side wall-clock profiler. Like the tracer it lives
    /// off-config, never touches sim time or the RNG, and costs one
    /// predictable branch per probe when off. Unlike the tracer it does
    /// **not** force the sharded fast path back to serial — shard and
    /// barrier telemetry is the point of it.
    obs: Profiler,
    /// First reason a [`Engine::run_until_sharded`] call fell back to
    /// the serial loop (tracer/sampler attached); surfaced by
    /// `bds-serve status`.
    shard_fallback: Option<&'static str>,
    cfg: SimConfig,
}

/// Snapshot of cumulative quantities at the last metrics sample, for
/// windowed rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PrevSample {
    pub(crate) at_ms: u64,
    pub(crate) arrived: u64,
    pub(crate) completed: u64,
    pub(crate) restarts: u64,
    pub(crate) denied: u64,
    pub(crate) lock_requests: u64,
    pub(crate) cn_busy_ms: f64,
    pub(crate) dpn_busy_ms: Vec<f64>,
}

/// Column names of the metrics time series, in row order.
fn metric_columns(num_nodes: u32) -> Vec<String> {
    let mut names: Vec<String> = [
        "mpl_live",
        "start_queue",
        "cn_util",
        "cn_backlog_secs",
        "locks_held",
        "wtpg_nodes",
        "wtpg_edges",
        "arrivals_ps",
        "commits_ps",
        "restarts_ps",
        "denied_ps",
        "lock_reqs_ps",
        "dpn_util",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for n in 0..num_nodes {
        names.push(format!("dpn{n}_util"));
    }
    names.push("nodes_up".to_string());
    names
}

impl Engine {
    /// Build an engine from a configuration (workload taken from
    /// `cfg.workload`).
    pub fn new(cfg: &SimConfig) -> Self {
        cfg.validate();
        let mut master = bds_des::rng::Xoshiro256::seed_from_u64(cfg.seed);
        let arrival_rng = master.fork();
        let workload_rng = master.fork();
        let genr = cfg.workload.build(workload_rng);
        Self::with_generator(cfg, genr, arrival_rng)
    }

    /// Build with an explicit workload generator (for custom workloads
    /// beyond the paper's experiments).
    pub fn with_generator(
        cfg: &SimConfig,
        genr: Box<dyn WorkloadGen>,
        arrival_rng: bds_des::rng::Xoshiro256,
    ) -> Self {
        cfg.validate();
        let placement = Placement::new(cfg.costs.num_nodes, cfg.dd);
        let arrivals = PoissonArrivals::new(cfg.lambda_tps, arrival_rng);
        let mut events = EventQueue::new();
        events.schedule_at(arrivals.peek(), Event::Arrival);
        let faults_on = !cfg.faults.is_empty();
        if faults_on {
            // Fault actions are ordinary DES events: the expanded
            // timeline is scheduled up front, deterministically.
            for (at, action) in cfg.faults.timeline(cfg.costs.num_nodes, cfg.horizon) {
                events.schedule_at(at, Event::Fault { action });
            }
        }
        let num_nodes = cfg.costs.num_nodes as usize;
        Engine {
            placement,
            events,
            clock: SimTime::ZERO,
            cn: FcfsServer::new(SimTime::ZERO),
            dpns: (0..cfg.costs.num_nodes).map(|_| Dpn::new()).collect(),
            scheduler: cfg.scheduler.build(&cfg.costs),
            arrivals,
            genr,
            txns: Arena::new(),
            start_queue: VecDeque::new(),
            pending: Vec::new(),
            next_txn: 1,
            next_seq: 1,
            next_cohort: 1,
            cohort_owner: IdMap::new(),
            live: TimeWeighted::new(SimTime::ZERO, 0.0),
            rt: Welford::new(),
            // 1-second buckets; only the legacy percentile engine reads
            // it, so only then allocate.
            rt_hist: cfg
                .legacy_second_bin_percentiles
                .then(|| Histogram::new(1.0, 4000)),
            arrived: 0,
            started: 0,
            completed: 0,
            restarts: 0,
            lock_requests: 0,
            requests_denied: 0,
            retry_tick_armed: false,
            label: cfg.scheduler.label(),
            faults_on,
            link_on: faults_on && !cfg.faults.link.is_perfect(),
            fault_rng: bds_des::rng::Xoshiro256::seed_from_u64(cfg.faults.rng_seed(cfg.seed)),
            node_up: vec![true; num_nodes],
            dpn_epoch: vec![0; num_nodes],
            down_since: vec![None; num_nodes],
            downtime: vec![Duration::ZERO; num_nodes],
            held_cohorts: Vec::new(),
            aborts_validation: 0,
            aborts_scheduler: 0,
            aborts_fault: 0,
            killed: 0,
            retry_hist: LogHistogram::new(),
            released_buf: Vec::new(),
            eligible_buf: Vec::new(),
            tracer: Tracer::Off,
            rt_log: LogHistogram::new(),
            metrics: Sampler::Off,
            metrics_prev: PrevSample::default(),
            effects: None,
            oplog: None,
            obs: Profiler::Off,
            shard_fallback: None,
            admission_hold: false,
            custom_scheduler: false,
            shard_rt: None,
            cfg: cfg.clone(),
        }
    }

    // ----- observers ---------------------------------------------------

    /// Install a tracer (replace any previous one). Call before driving
    /// the engine to capture the whole run.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Enable metrics sampling at the given simulated-time interval
    /// (replace any previous sampler). Call before driving the engine.
    pub fn set_metrics_interval(&mut self, dt: Duration) {
        let names = metric_columns(self.cfg.costs.num_nodes);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.metrics = Sampler::every_ms(dt.as_millis(), &refs);
        self.metrics_prev = PrevSample {
            dpn_busy_ms: vec![0.0; self.cfg.costs.num_nodes as usize],
            ..PrevSample::default()
        };
    }

    /// Detach the sampler and return the series (`None` when sampling
    /// was off).
    pub fn take_metrics(&mut self) -> Option<TimeSeries> {
        std::mem::take(&mut self.metrics).finish()
    }

    /// The log-bucketed response-time histogram over committed
    /// transactions (exporters render its buckets directly).
    pub fn rt_histogram(&self) -> &LogHistogram {
        &self.rt_log
    }

    /// Detach the tracer and return its captured data (`None` when
    /// tracing was off).
    pub fn take_trace(&mut self) -> Option<TraceData> {
        std::mem::take(&mut self.tracer).finish()
    }

    /// Install a host-side profiler (replace any previous one). Unlike
    /// the tracer/sampler this does not affect the sharded fast path —
    /// profiled sharded runs stay byte-identical to serial.
    pub fn set_profiler(&mut self, obs: Profiler) {
        self.obs = obs;
    }

    /// Is a host-side profiler collecting?
    pub fn profiler_enabled(&self) -> bool {
        self.obs.enabled()
    }

    /// Move the profiler out (leaving `Off`); used to carry profiling
    /// across [`Engine::restore`], which builds a fresh engine.
    pub fn take_profiler(&mut self) -> Profiler {
        std::mem::take(&mut self.obs)
    }

    /// Detach the profiler and return its report (`None` when off).
    pub fn take_profile(&mut self) -> Option<ObsReport> {
        std::mem::take(&mut self.obs).finish()
    }

    /// Snapshot the live profile without stopping collection (`None`
    /// when off). Drives the `watch` stream's phase/shard shares.
    pub fn profile(&self) -> Option<ObsReport> {
        self.obs.report()
    }

    /// First reason a sharded run fell back to the serial loop in this
    /// engine's lifetime (`None` if it never did).
    pub fn shard_fallback_reason(&self) -> Option<&'static str> {
        self.shard_fallback
    }

    /// Collect [`Effect`]s for [`Engine::step`] from now on. Off by
    /// default: bulk drivers never pay for effect construction beyond
    /// one branch per emission site.
    pub fn enable_effects(&mut self) {
        if self.effects.is_none() {
            self.effects = Some(Vec::new());
        }
    }

    /// Start recording the scheduler op-log that [`Engine::snapshot`]
    /// embeds. Must run before the first event so the replayed
    /// scheduler sees its complete call history.
    ///
    /// # Panics
    /// Panics if events were already processed or a custom scheduler is
    /// installed (it cannot be rebuilt from the config on restore).
    pub fn enable_checkpointing(&mut self) {
        assert_eq!(
            self.events.events_processed(),
            0,
            "enable_checkpointing after events were processed"
        );
        assert!(
            !self.custom_scheduler,
            "checkpointing cannot rebuild a custom scheduler"
        );
        if self.oplog.is_none() {
            self.oplog = Some(Vec::new());
        }
    }

    /// Push an effect when collection is enabled (one predictable
    /// branch when off, like `Tracer::emit`).
    #[inline(always)]
    fn fx(&mut self, make: impl FnOnce() -> Effect) {
        if let Some(buf) = &mut self.effects {
            buf.push(make());
        }
    }

    /// Append a scheduler op when checkpointing is enabled (one
    /// predictable branch when off).
    #[inline(always)]
    fn op(&mut self, make: impl FnOnce() -> SchedOp) {
        if let Some(log) = &mut self.oplog {
            log.push(make());
        }
    }

    // ----- driving the loop -------------------------------------------

    /// End of the simulated run.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.cfg.horizon
    }

    /// Pop and handle the next event if it lies at or before `limit`;
    /// returns its timestamp. This is the single event loop every
    /// driver shares.
    #[inline]
    fn pump(&mut self, limit: SimTime) -> Option<SimTime> {
        let tok = self.obs.phase_start(ObsPhase::EventQueue);
        let Some(t) = self.events.peek_time().filter(|&t| t <= limit) else {
            self.obs.phase_end(tok);
            return None;
        };
        // State is piecewise constant between events, so sampling the
        // pre-event state covers every grid point up to `t` exactly.
        // One predictable branch when sampling is off.
        if self.metrics.due(t) {
            self.sample_metrics(t);
        }
        let Scheduled { event, .. } = self.events.pop().expect("peeked event vanished");
        self.clock = t;
        self.obs.phase_end(tok);
        self.handle(event);
        Some(t)
    }

    /// Process exactly one event (the next one at or before the
    /// horizon). Returns `None` when the run is over — queue drained or
    /// next event past the horizon. Effects are reported only after
    /// [`Engine::enable_effects`].
    pub fn step(&mut self) -> Option<StepEffects> {
        if let Some(buf) = &mut self.effects {
            buf.clear();
        }
        let at = self.pump(self.horizon())?;
        let effects = match &mut self.effects {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        };
        Some(StepEffects { at, effects })
    }

    /// Process every event at or before `limit` (clamped to the
    /// horizon); returns the number processed. Interleaving `run_until`
    /// calls is byte-identical to one [`Engine::run_to_horizon`].
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let limit = limit.min(self.horizon());
        let mut n = 0;
        while self.pump(limit).is_some() {
            n += 1;
        }
        // Fill the metrics grid to `limit`: the state in force is the
        // same one the next event would sample, so this is identical to
        // an uninterrupted run.
        if self.metrics.due(limit) {
            self.sample_metrics(limit);
        }
        n
    }

    /// Drive the event loop until the horizon.
    pub fn run_to_horizon(&mut self) {
        let horizon = self.horizon();
        while self.pump(horizon).is_some() {}
        // Fill the grid to the horizon so the series spans the whole
        // run even when the event queue drains early.
        if self.metrics.due(horizon) {
            self.sample_metrics(horizon);
        }
    }

    /// Record one row per unsampled grid point `≤ upto` (the state seen
    /// is the one in force since the last processed event).
    fn sample_metrics(&mut self, upto: SimTime) {
        let mpl = self.scheduler.live_count() as f64;
        let start_q = self.start_queue.len() as f64;
        let tel = self.scheduler.telemetry();
        let upto_ms = upto.as_millis();
        let Some(s) = self.metrics.active() else {
            return;
        };
        while s.next_ms() <= upto_ms {
            let at = SimTime::from_millis(s.next_ms());
            let at_ms = s.next_ms() as f64;
            let prev = &mut self.metrics_prev;
            let window_ms = (s.next_ms() - prev.at_ms) as f64;
            let window_secs = window_ms / 1000.0;
            // Busy-time deltas: utilization(at) integrates the busy step
            // function over [0, at], so util·at is cumulative busy time.
            // Clamped: the reconstruction wobbles by a few ulps.
            let cn_busy = self.cn.utilization(at) * at_ms;
            let cn_util = ((cn_busy - prev.cn_busy_ms) / window_ms).clamp(0.0, 1.0);
            let cn_backlog = self.cn.free_at().saturating_since(at).as_secs_f64();
            let mut dpn_sum = 0.0;
            let mut dpn_row = Vec::with_capacity(self.dpns.len());
            for (n, d) in self.dpns.iter().enumerate() {
                let busy = d.utilization(at) * at_ms;
                let u = ((busy - prev.dpn_busy_ms[n]) / window_ms).clamp(0.0, 1.0);
                prev.dpn_busy_ms[n] = busy;
                dpn_sum += u;
                dpn_row.push(u);
            }
            s.row.clear();
            s.row.push(mpl);
            s.row.push(start_q);
            s.row.push(cn_util);
            s.row.push(cn_backlog);
            s.row.push(tel.locks_held as f64);
            s.row.push(tel.wtpg_nodes as f64);
            s.row.push(tel.wtpg_edges as f64);
            s.row
                .push((self.arrived - prev.arrived) as f64 / window_secs);
            s.row
                .push((self.completed - prev.completed) as f64 / window_secs);
            s.row
                .push((self.restarts - prev.restarts) as f64 / window_secs);
            s.row
                .push((self.requests_denied - prev.denied) as f64 / window_secs);
            s.row
                .push((self.lock_requests - prev.lock_requests) as f64 / window_secs);
            s.row.push(dpn_sum / self.dpns.len() as f64);
            s.row.extend_from_slice(&dpn_row);
            s.row
                .push(self.node_up.iter().filter(|&&up| up).count() as f64);
            prev.at_ms = s.next_ms();
            prev.arrived = self.arrived;
            prev.completed = self.completed;
            prev.restarts = self.restarts;
            prev.denied = self.requests_denied;
            prev.lock_requests = self.lock_requests;
            prev.cn_busy_ms = cn_busy;
            s.commit_row();
        }
    }

    /// Response-time quantile from the active percentile engine: the
    /// log-bucketed histogram (≤ 1 % relative error) by default, or the
    /// legacy 1-second-bin histogram under the compatibility flag.
    fn rt_quantile(&self, q: f64) -> Option<f64> {
        match &self.rt_hist {
            Some(h) => h.quantile(q),
            None => self.rt_log.quantile(q),
        }
    }

    // ----- accessors ---------------------------------------------------

    /// Per-DPN downtime accumulated up to `at` (nodes still down are
    /// charged through `at`).
    pub fn node_downtime(&self, at: SimTime) -> Vec<Duration> {
        self.downtime
            .iter()
            .zip(&self.down_since)
            .map(|(&d, since)| match since {
                Some(s) => d + at.saturating_since(*s),
                None => d,
            })
            .collect()
    }

    /// Transactions arrived but neither committed nor killed yet.
    pub fn in_flight(&self) -> u64 {
        self.txns.len() as u64
    }

    /// Transactions that have arrived so far.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Transactions that have committed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transactions dropped permanently (fault retry cap).
    pub fn killed(&self) -> u64 {
        self.killed
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events.events_processed()
    }

    /// Current simulated time (the timestamp of the last processed
    /// event).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The active scheduler's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configuration this engine runs (the scheduler field tracks
    /// [`Engine::swap_scheduler`]).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Histogram of fault-kill attempt counts at permanent kill time.
    pub fn retry_histogram(&self) -> &LogHistogram {
        &self.retry_hist
    }

    /// Produce the report (callable at any point of the run; the
    /// utilization/availability denominators always use the full
    /// horizon).
    pub fn report(&self) -> SimReport {
        let horizon = self.horizon();
        let dpn_util = self
            .dpns
            .iter()
            .map(|d| d.utilization(horizon))
            .sum::<f64>()
            / self.dpns.len() as f64;
        let downtime_secs: f64 = self
            .node_downtime(horizon)
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        let node_secs = self.dpns.len() as f64 * self.cfg.horizon.as_secs_f64();
        SimReport {
            scheduler: self.label.clone(),
            lambda_tps: self.cfg.lambda_tps,
            dd: self.cfg.dd,
            horizon_secs: self.cfg.horizon.as_secs_f64(),
            arrived: self.arrived,
            started: self.started,
            completed: self.completed,
            restarts: self.restarts,
            rt: self.rt,
            cn_utilization: self.cn.utilization(horizon),
            dpn_utilization: dpn_util,
            mean_live: self.live.average(horizon),
            rt_p50_secs: self.rt_quantile(0.50),
            rt_p90_secs: self.rt_quantile(0.90),
            rt_p99_secs: self.rt_quantile(0.99),
            queued_at_end: self.start_queue.len() as u64,
            events: self.events.events_processed(),
            lock_requests: self.lock_requests,
            requests_denied: self.requests_denied,
            aborts_validation: self.aborts_validation,
            aborts_scheduler: self.aborts_scheduler,
            aborts_fault: self.aborts_fault,
            killed: self.killed,
            availability: 1.0 - downtime_secs / node_secs,
            downtime_secs,
        }
    }

    /// Replace the scheduler with a custom implementation (extension
    /// point beyond the paper's six). Must be called before the first
    /// event is processed. Incompatible with checkpointing: a custom
    /// scheduler cannot be rebuilt from the config on restore.
    ///
    /// # Panics
    /// Panics if the simulation has already started or checkpointing is
    /// enabled.
    pub fn replace_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        assert_eq!(
            self.events.events_processed(),
            0,
            "replace_scheduler after events were processed"
        );
        assert!(
            self.oplog.is_none(),
            "replace_scheduler is incompatible with checkpointing"
        );
        self.custom_scheduler = true;
        self.label = scheduler.name().to_string();
        self.scheduler = scheduler;
    }

    /// Drain the precedence constraints the scheduler observed — used by
    /// the serializability audit in the integration tests.
    pub fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.op(|| SchedOp::Drain);
        self.scheduler.drain_constraints()
    }

    /// Access the scheduler (e.g. for downcasting to read statistics in
    /// tests).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// The lifecycle record of a live transaction.
    ///
    /// # Panics
    /// Panics if `id` is not in flight.
    fn txn(&self, id: TxnId) -> &Txn {
        self.txns.get(id.0).expect("unknown txn")
    }

    /// Position of a pending request by its submission seq.
    fn pending_pos(&self, seq: u64) -> Option<usize> {
        self.pending.binary_search_by_key(&seq, |p| p.seq).ok()
    }

    /// Drop a pending request by seq (no-op when already gone).
    fn remove_pending(&mut self, seq: u64) {
        if let Some(i) = self.pending_pos(seq) {
            self.pending.remove(i);
        }
    }

    /// Enqueue CN work, tracing the busy span `[begin, end]` when the
    /// demand is non-zero. `what` labels the burst ("sot", "cot", …).
    fn cn_work(
        &mut self,
        now: SimTime,
        demand: Duration,
        txn: Option<TxnId>,
        what: &'static str,
    ) -> SimTime {
        let tok = self.obs.phase_start(ObsPhase::CnWork);
        let (begin, end) = self.cn.enqueue_span(now, demand);
        if !demand.is_zero() {
            self.tracer.emit(|| Rec {
                at: end,
                kind: EventKind::CnCpu {
                    txn,
                    what,
                    start: begin,
                },
            });
        }
        self.obs.phase_end(tok);
        end
    }

    /// Record precedence edges the scheduler decided since the last call.
    /// Only drains the scheduler's constraint log when tracing is on, so
    /// the serializability audit (which drains it itself) is unaffected
    /// by untraced runs.
    fn trace_edges(&mut self) {
        if !self.tracer.enabled() {
            return;
        }
        self.op(|| SchedOp::Drain);
        let now = self.now();
        for (from, to) in self.scheduler.drain_constraints() {
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::WtpgEdge { from, to },
            });
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Arrival => self.on_arrival(),
            Event::CnDone { id, phase } => self.on_cn_done(id, phase),
            Event::SliceEnd { node, epoch } => self.on_slice_end(node, epoch),
            Event::RetryTick => self.on_retry_tick(),
            Event::Restart { id } => {
                let now = self.now();
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::Restart { txn: id },
                });
                self.fx(|| Effect::RestartScheduled { txn: id });
                self.start_queue.push_back(id);
                self.try_admissions();
            }
            Event::Fault { action } => self.on_fault(action),
            Event::CohortArrive { node, cohort } => {
                let now = self.now();
                self.deliver_cohort(now, node, cohort);
            }
        }
    }

    // ----- arrivals & admission ---------------------------------------

    /// Register a fresh transaction at the current time and queue it
    /// for admission (shared by Poisson arrivals and external
    /// [`Engine::submit`]).
    fn enroll(&mut self, mut spec: BatchSpec) -> TxnId {
        let now = self.now();
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        // Declared demands scale with parallelism: a step of cost C
        // declares C/k when DD = k (§4.2).
        let dd = self.cfg.dd as f64;
        for s in &mut spec.steps {
            s.declared /= dd;
        }
        self.op(|| SchedOp::Register {
            id,
            spec: spec.clone(),
        });
        self.scheduler.register(id, spec.clone());
        self.txns.insert(
            id.0,
            Txn {
                spec,
                arrival: now,
                step: 0,
                outstanding_cohorts: 0,
                ever_started: false,
                fault_kills: 0,
            },
        );
        self.arrived += 1;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Arrival { txn: id },
        });
        self.fx(|| Effect::Arrived { txn: id });
        self.start_queue.push_back(id);
        id
    }

    fn on_arrival(&mut self) {
        let now = self.now();
        let spec = self.genr.next_batch();
        self.enroll(spec);
        // Next arrival.
        let t = self.arrivals.pop();
        debug_assert_eq!(t, now);
        self.events
            .schedule_at(self.arrivals.peek(), Event::Arrival);
        self.try_admissions();
    }

    /// Submit an external transaction at the current simulated time,
    /// outside the Poisson arrival process (the `bds-serve` front uses
    /// this). The spec's declared demands are DD-scaled exactly like
    /// generated arrivals. Returns the assigned id.
    pub fn submit(&mut self, spec: BatchSpec) -> TxnId {
        let id = self.enroll(spec);
        self.try_admissions();
        id
    }

    fn mpl_room(&self) -> bool {
        match self.cfg.mpl {
            None => true,
            Some(m) => (self.scheduler.live_count() as u32) < m,
        }
    }

    fn try_admissions(&mut self) {
        if self.admission_hold {
            return;
        }
        let now = self.now();
        let mut costed_tests = 0usize;
        let mut i = 0usize;
        while i < self.start_queue.len() {
            if !self.mpl_room() {
                break;
            }
            let id = self.start_queue[i];
            self.op(|| SchedOp::TryStart { id });
            let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
            let outcome = self.scheduler.try_start(id);
            self.obs.phase_end(tok);
            if !outcome.cpu.is_zero() {
                self.cn_work(now, outcome.cpu, Some(id), "sched");
                costed_tests += 1;
            }
            match outcome.decision {
                StartDecision::Admit => {
                    self.start_queue.remove(i);
                    self.tracer.emit(|| Rec {
                        at: now,
                        kind: EventKind::Admit { txn: id },
                    });
                    self.fx(|| Effect::Admitted { txn: id });
                    self.trace_edges();
                    let txn = self.txns.get_mut(id.0).expect("admitted unknown txn");
                    if !txn.ever_started {
                        txn.ever_started = true;
                        self.started += 1;
                    }
                    txn.step = 0;
                    self.live.add(now, 1.0);
                    let done = self.cn_work(now, self.cfg.costs.sot_time, Some(id), "sot");
                    self.events.schedule_at(
                        done,
                        Event::CnDone {
                            id,
                            phase: Phase::Started,
                        },
                    );
                }
                StartDecision::Refuse => {
                    let reason = outcome.reason.unwrap_or("refused");
                    self.tracer.emit(|| Rec {
                        at: now,
                        kind: EventKind::AdmitRefuse { txn: id, reason },
                    });
                    self.fx(|| Effect::AdmitRefused { txn: id });
                    i += 1;
                    if costed_tests >= self.cfg.admission_scan_limit {
                        break;
                    }
                }
            }
        }
    }

    // ----- CN phases ---------------------------------------------------

    fn on_cn_done(&mut self, id: TxnId, phase: Phase) {
        match phase {
            Phase::Started => self.begin_step(id, 0),
            Phase::Dispatch { step } => self.dispatch_step(id, step),
            Phase::StepDone { step } => self.finish_step(id, step),
            Phase::Commit => self.finish_txn(id),
        }
    }

    fn begin_step(&mut self, id: TxnId, step: usize) {
        let needs_lock = self.txn(id).spec.needs_lock_request(step);
        if needs_lock {
            self.submit_request(id, step, None);
        } else {
            // Lock already covered: only the send message is needed.
            let now = self.now();
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "msg");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::Dispatch { step },
                },
            );
        }
    }

    /// Submit (or retry, when `pending_seq` is given) a lock request.
    /// Returns true if the request was granted.
    fn submit_request(&mut self, id: TxnId, step: usize, pending_seq: Option<u64>) -> bool {
        let now = self.now();
        self.lock_requests += 1;
        let file = self.txn(id).spec.steps[step].file;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::LockRequest {
                txn: id,
                step: step as u32,
                file,
            },
        });
        self.op(|| SchedOp::Request { id, step });
        let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
        let outcome = self.scheduler.request(id, step);
        self.obs.phase_end(tok);
        match outcome.decision {
            ReqDecision::Granted => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::LockGrant {
                        txn: id,
                        step: step as u32,
                        file,
                    },
                });
                self.fx(|| Effect::Granted {
                    txn: id,
                    step,
                    file,
                });
                self.trace_edges();
                if let Some(seq) = pending_seq {
                    self.remove_pending(seq);
                }
                let done = self.cn_work(
                    now,
                    outcome.cpu + self.cfg.costs.msg_time,
                    Some(id),
                    "grant+msg",
                );
                self.events.schedule_at(
                    done,
                    Event::CnDone {
                        id,
                        phase: Phase::Dispatch { step },
                    },
                );
                true
            }
            ReqDecision::Restart => {
                let reason = outcome.reason.unwrap_or("restart");
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::LockRestart {
                        txn: id,
                        step: step as u32,
                        file,
                        reason,
                    },
                });
                if !outcome.cpu.is_zero() {
                    self.cn_work(now, outcome.cpu, Some(id), "sched");
                }
                if let Some(seq) = pending_seq {
                    self.remove_pending(seq);
                }
                self.restart_txn(id);
                false
            }
            ReqDecision::Blocked | ReqDecision::Delayed => {
                if !outcome.cpu.is_zero() {
                    self.cn_work(now, outcome.cpu, Some(id), "sched");
                }
                self.requests_denied += 1;
                let kind = if outcome.decision == ReqDecision::Blocked {
                    WaitKind::Blocked
                } else {
                    WaitKind::Delayed
                };
                let reason = outcome.reason.unwrap_or(match kind {
                    WaitKind::Blocked => "lock-held",
                    WaitKind::Delayed => "delayed",
                });
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: match kind {
                        WaitKind::Blocked => EventKind::LockBlock {
                            txn: id,
                            step: step as u32,
                            file,
                            reason,
                        },
                        WaitKind::Delayed => EventKind::LockDeny {
                            txn: id,
                            step: step as u32,
                            file,
                            reason,
                        },
                    },
                });
                self.fx(|| match kind {
                    WaitKind::Blocked => Effect::Blocked {
                        txn: id,
                        step,
                        file,
                    },
                    WaitKind::Delayed => Effect::Delayed {
                        txn: id,
                        step,
                        file,
                    },
                });
                match pending_seq {
                    Some(seq) => {
                        let i = self.pending_pos(seq).expect("pending vanished");
                        let p = &mut self.pending[i];
                        p.kind = kind;
                        p.eligible = false;
                    }
                    None => {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        // `next_seq` is monotone, so this append keeps
                        // `pending` sorted by seq.
                        self.pending.push(PendingReq {
                            seq,
                            id,
                            step,
                            file,
                            kind,
                            eligible: false,
                        });
                    }
                }
                self.arm_retry_tick();
                false
            }
        }
    }

    fn dispatch_step(&mut self, id: TxnId, step: usize) {
        let now = self.now();
        let (file, cost) = {
            let s = &self.txn(id).spec.steps[step];
            (s.file, s.cost)
        };
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::StepDispatch {
                txn: id,
                step: step as u32,
            },
        });
        let nodes = self.placement.nodes(file);
        let per_cohort = self.placement.cohort_objects(cost);
        let work = self.cfg.costs.scan_time(per_cohort);
        if work.is_zero() {
            // Degenerate zero-I/O step: return immediately (receive msg).
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "recv");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::StepDone { step },
                },
            );
            return;
        }
        let quantum = self.cfg.costs.quantum(self.cfg.dd);
        self.txns
            .get_mut(id.0)
            .expect("dispatch unknown txn")
            .outstanding_cohorts = nodes.len() as u32;
        let start_at = now + self.cfg.costs.net_delay;
        for node in nodes {
            let cid = CohortId(self.next_cohort);
            self.next_cohort += 1;
            self.cohort_owner.insert(cid.0, id.0);
            let cohort = Cohort {
                id: cid,
                remaining: work,
                quantum,
            };
            if !self.faults_on {
                // Fault-free fast path, byte-identical to the pre-fault
                // simulator.
                self.tracer.emit(|| Rec {
                    at: start_at,
                    kind: EventKind::CohortStart {
                        txn: id,
                        step: step as u32,
                        node: node.0,
                    },
                });
                // net_delay is zero in the paper; the cohort starts now.
                debug_assert_eq!(start_at, now);
                let epoch = self.dpn_epoch[node.0 as usize];
                if let Some(end) = self.with_dpn(node.0, |d| d.add_cohort(start_at, cohort)) {
                    self.schedule_slice_end(node.0, end, epoch);
                }
                continue;
            }
            // Fault path: apply the link model, then degraded routing at
            // delivery time.
            let link = self.cfg.faults.link;
            if !self.link_on {
                self.deliver_cohort(start_at, node.0, cohort);
                continue;
            }
            let mut deliver_at = start_at + link.delay;
            if link.loss_per_mille > 0
                && self.fault_rng.next_range(1000) < u64::from(link.loss_per_mille)
            {
                // The dispatch message is lost; the home node redelivers
                // after its timeout.
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: Some(node.0),
                        what: "link-loss",
                    },
                });
                deliver_at += link.redeliver_after;
            }
            self.events.schedule_at(
                deliver_at,
                Event::CohortArrive {
                    node: node.0,
                    cohort,
                },
            );
        }
    }

    /// Hand a dispatched cohort to its DPN, applying degraded-mode
    /// routing when the target is down. Drops the cohort silently when
    /// its owner was aborted while the message was in flight.
    fn deliver_cohort(&mut self, now: SimTime, node: u32, cohort: Cohort) {
        let Some(owner) = self.cohort_owner.get(cohort.id.0).map(TxnId) else {
            return;
        };
        let target = if self.node_up[node as usize] {
            Some(node)
        } else {
            match self.cfg.faults.degraded {
                DegradedMode::Reroute => self.first_up_node(node),
                DegradedMode::Hold => None,
            }
        };
        let Some(n) = target else {
            self.held_cohorts.push((node, cohort));
            return;
        };
        let step = self.txn(owner).step as u32;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::CohortStart {
                txn: owner,
                step,
                node: n,
            },
        });
        let epoch = self.dpn_epoch[n as usize];
        if let Some(end) = self.with_dpn(n, |d| d.add_cohort(now, cohort)) {
            self.schedule_slice_end(n, end, epoch);
        }
    }

    /// The first up node at or after `from` in ring order, if any.
    fn first_up_node(&self, from: u32) -> Option<u32> {
        let n = self.node_up.len() as u32;
        (0..n)
            .map(|k| (from + k) % n)
            .find(|&cand| self.node_up[cand as usize])
    }

    fn on_slice_end(&mut self, node: u32, epoch: u32) {
        if epoch != self.dpn_epoch[node as usize] {
            // Scheduled before the node crashed: the slice never ran.
            return;
        }
        let now = self.now();
        let out = self.with_dpn(node, |d| d.on_slice_end(now));
        if let Some(end) = out.next_slice_end {
            self.schedule_slice_end(node, end, epoch);
        }
        if self.tracer.enabled() {
            // Owner lookup must precede the `finished` removal below.
            if let Some(txn) = self.cohort_owner.get(out.ran.0).map(TxnId) {
                let start = now - out.slice;
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::Quantum { txn, node, start },
                });
            }
        }
        if let Some(cid) = out.finished {
            let id = match self.cohort_owner.remove(cid.0).map(TxnId) {
                Some(id) => id,
                None => {
                    // Orphan of a fault-aborted transaction: its CPU was
                    // wasted, its completion is ignored.
                    debug_assert!(self.faults_on, "finished cohort has no owner");
                    return;
                }
            };
            let cur_step = self.txn(id).step as u32;
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::CohortFinish {
                    txn: id,
                    step: cur_step,
                    node,
                },
            });
            let step = {
                let txn = self.txns.get_mut(id.0).expect("cohort of unknown txn");
                txn.outstanding_cohorts -= 1;
                if txn.outstanding_cohorts > 0 {
                    return;
                }
                txn.step
            };
            // All cohorts returned to the home node; the transaction
            // returns to the CN (receive message).
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "recv");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::StepDone { step },
                },
            );
        }
    }

    fn finish_step(&mut self, id: TxnId, step: usize) {
        let now = self.now();
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::StepDone {
                txn: id,
                step: step as u32,
            },
        });
        self.op(|| SchedOp::StepComplete { id, step });
        let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
        self.scheduler.step_complete(id, step);
        self.obs.phase_end(tok);
        let total_steps = self.txn(id).spec.len();
        let next = step + 1;
        self.txns.get_mut(id.0).expect("unknown txn").step = next;
        if next < total_steps {
            self.begin_step(id, next);
        } else {
            let done = self.cn_work(now, self.cfg.costs.cot_time, Some(id), "cot");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::Commit,
                },
            );
        }
    }

    fn finish_txn(&mut self, id: TxnId) {
        let now = self.now();
        self.op(|| SchedOp::Validate { id });
        let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
        let valid = self.scheduler.validate(id).decision;
        self.obs.phase_end(tok);
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Certify { txn: id, ok: valid },
        });
        if valid {
            let mut touched = std::mem::take(&mut self.released_buf);
            touched.clear();
            self.op(|| SchedOp::Commit { id });
            let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
            self.scheduler.commit_into(id, &mut touched);
            self.obs.phase_end(tok);
            let txn = self.txns.remove(id.0).expect("commit of unknown txn");
            self.live.add(now, -1.0);
            self.completed += 1;
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::Commit { txn: id },
            });
            self.fx(|| Effect::Committed { txn: id });
            let rt_secs = now.since(txn.arrival).as_secs_f64();
            self.rt.push(rt_secs);
            if let Some(h) = &mut self.rt_hist {
                h.record(rt_secs);
            }
            self.rt_log.record_secs(rt_secs);
            // Files the committed transaction touched (declared), even
            // if the scheduler held no lock on them (OPT): their
            // contention state changed.
            touched.extend(txn.spec.steps.iter().map(|s| s.file));
            touched.sort_unstable();
            touched.dedup();
            self.wake_waiters(&touched);
            self.released_buf = touched;
            self.sweep_retries();
            self.try_admissions();
        } else {
            // OPT validation failure: abort and restart from scratch.
            self.abort_txn(id, AbortCause::Validation);
            self.try_admissions();
        }
    }

    /// Abort `id` and queue its restart; all its I/O will be redone.
    ///
    /// Scheduler and validation aborts retry after `restart_delay`
    /// (unchanged legacy behaviour). Fault aborts retry under the
    /// plan's exponential-backoff policy and are killed permanently —
    /// scheduler state dropped via `Scheduler::forget`, no restart —
    /// once the kill count reaches the retry cap.
    fn abort_txn(&mut self, id: TxnId, cause: AbortCause) {
        let now = self.now();
        self.restarts += 1;
        match cause {
            AbortCause::Validation => self.aborts_validation += 1,
            AbortCause::Scheduler => self.aborts_scheduler += 1,
            AbortCause::Fault => self.aborts_fault += 1,
        }
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Abort { txn: id },
        });
        self.fx(|| Effect::Aborted { txn: id, cause });
        let kills = if cause == AbortCause::Fault {
            let txn = self.txns.get_mut(id.0).expect("fault abort of unknown txn");
            txn.fault_kills += 1;
            txn.fault_kills
        } else {
            0
        };
        let kill_for_good =
            cause == AbortCause::Fault && kills >= self.cfg.faults.retry.max_attempts;
        let mut released = std::mem::take(&mut self.released_buf);
        released.clear();
        let tok = self.obs.phase_start(ObsPhase::SchedulerDecide);
        if kill_for_good {
            self.op(|| SchedOp::Forget { id });
            self.scheduler.forget(id, &mut released);
        } else {
            self.op(|| SchedOp::Abort { id });
            self.scheduler.abort_into(id, &mut released);
        }
        self.obs.phase_end(tok);
        self.live.add(now, -1.0);
        let had_cohorts = {
            let txn = self.txns.get_mut(id.0).expect("abort of unknown txn");
            let had = txn.outstanding_cohorts > 0;
            txn.step = 0;
            txn.outstanding_cohorts = 0;
            had
        };
        if had_cohorts {
            // Orphan every cohort of the aborted attempt: still-running
            // or in-flight cohorts lose their owner and are dropped when
            // they finish or arrive. Only fault aborts can get here —
            // scheduler/validation aborts never have work outstanding.
            self.cohort_owner.retain(|_, owner| owner != id.0);
        }
        if kill_for_good {
            self.txns.remove(id.0);
            self.killed += 1;
            self.retry_hist.record_ticks(u64::from(kills));
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::TxnKilled {
                    txn: id,
                    attempts: kills,
                },
            });
            self.fx(|| Effect::Killed { txn: id });
            // Defensive: a killed transaction must not linger anywhere.
            self.pending.retain(|p| p.id != id);
        } else {
            let delay = if cause == AbortCause::Fault {
                self.cfg.faults.retry.delay_for(kills)
            } else {
                self.cfg.restart_delay
            };
            // Anchored at the engine clock, not the queue clock: during
            // a sharded run the queue clock can lag while lane-held
            // slice ends are processed.
            self.events.schedule_at(now + delay, Event::Restart { id });
        }
        self.wake_waiters(&released);
        self.released_buf = released;
    }

    /// Legacy entry point: abort with the scheduler cause.
    fn restart_txn(&mut self, id: TxnId) {
        self.abort_txn(id, AbortCause::Scheduler);
    }

    // ----- fault injection --------------------------------------------

    fn on_fault(&mut self, action: FaultAction) {
        let now = self.now();
        self.fx(|| Effect::Fault(action));
        match action {
            FaultAction::CrashNode { node } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: Some(node),
                        what: "dpn-crash",
                    },
                });
                let n = node as usize;
                self.node_up[n] = false;
                self.down_since[n] = Some(now);
                // Tombstone every slice scheduled on this node.
                self.bump_epoch(node);
                let lost = self.with_dpn(node, |d| d.crash(now));
                let mut victims: Vec<TxnId> = lost
                    .iter()
                    .filter_map(|cid| self.cohort_owner.remove(cid.0).map(TxnId))
                    .collect();
                victims.sort_unstable();
                victims.dedup();
                for id in victims {
                    self.abort_txn(id, AbortCause::Fault);
                }
                self.sweep_retries();
                self.try_admissions();
            }
            FaultAction::RecoverNode { node } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::NodeRecovered { node },
                });
                let n = node as usize;
                self.node_up[n] = true;
                if let Some(since) = self.down_since[n].take() {
                    self.downtime[n] += now.since(since);
                }
                // Deliver cohorts held for this node (Hold mode); their
                // owners may have been aborted meanwhile, in which case
                // deliver_cohort drops them.
                let mut held = std::mem::take(&mut self.held_cohorts);
                held.retain(|&(home, cohort)| {
                    if home == node {
                        self.deliver_cohort(now, node, cohort);
                        false
                    } else {
                        true
                    }
                });
                self.held_cohorts = held;
            }
            FaultAction::StallCn { dur } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: None,
                        what: "cn-stall",
                    },
                });
                self.cn.stall_until(now + dur);
            }
        }
    }

    // ----- retries -----------------------------------------------------

    /// Mark pending requests eligible: those (blocked or delayed) whose
    /// file's contention state just changed. Delayed requests on
    /// unrelated files are re-submitted by the retry tick instead —
    /// waking every delayed request on every commit would melt the CN
    /// under C2PL's hundreds of live transactions.
    fn wake_waiters(&mut self, touched: &[FileId]) {
        for p in &mut self.pending {
            if touched.contains(&p.file) {
                p.eligible = true;
            }
        }
        if !self.pending.is_empty() {
            self.arm_retry_tick();
        }
    }

    fn sweep_retries(&mut self) {
        let mut eligible = std::mem::take(&mut self.eligible_buf);
        eligible.clear();
        eligible.extend(self.pending.iter().filter(|p| p.eligible).map(|p| p.seq));
        for &seq in &eligible {
            // A retry earlier in this sweep may have removed (or
            // restarted) this request; look it up fresh each time.
            let (id, step) = match self.pending_pos(seq) {
                Some(i) => {
                    let p = &mut self.pending[i];
                    p.eligible = false;
                    (p.id, p.step)
                }
                None => continue,
            };
            self.submit_request(id, step, Some(seq));
        }
        self.eligible_buf = eligible;
    }

    fn arm_retry_tick(&mut self) {
        if !self.retry_tick_armed && !self.pending.is_empty() {
            self.retry_tick_armed = true;
            // Engine clock, not queue clock (see `abort_txn`).
            let at = self.now() + self.cfg.retry_delay;
            self.events.schedule_at(at, Event::RetryTick);
        }
    }

    fn on_retry_tick(&mut self) {
        self.retry_tick_armed = false;
        for p in &mut self.pending {
            p.eligible = true;
        }
        self.sweep_retries();
        self.try_admissions();
        self.arm_retry_tick();
    }

    // ----- scheduler hot-swap -----------------------------------------

    /// Swap the concurrency-control protocol at an epoch boundary:
    /// pause admissions, drain every live (admitted) transaction to
    /// commit or abort, build the new scheduler, re-register every
    /// still-in-flight (queued or restarting) declaration, and resume
    /// admissions. Returns the number of events processed while
    /// draining.
    ///
    /// Arrivals keep flowing during the drain — they queue up behind
    /// the held admission gate. If the horizon is reached before the
    /// live set runs dry (a pathological plan), the swap proceeds
    /// anyway; the remaining live transactions are re-registered as
    /// not-yet-started, which only matters if the engine is driven
    /// past the horizon.
    ///
    /// # Panics
    /// Panics after [`Engine::replace_scheduler`]: a custom scheduler
    /// has no `SchedulerKind` to swap back to.
    pub fn swap_scheduler(&mut self, kind: SchedulerKind) -> u64 {
        assert!(
            !self.custom_scheduler,
            "swap_scheduler after replace_scheduler"
        );
        self.admission_hold = true;
        let horizon = self.horizon();
        let mut drained = 0u64;
        while self.scheduler.live_count() > 0 && self.pump(horizon).is_some() {
            drained += 1;
        }
        // Re-seed: every in-flight transaction (start queue, restart
        // delay, or — past the horizon — still live) re-registers its
        // declaration, already DD-scaled, with the fresh scheduler.
        let mut sched = kind.build(&self.cfg.costs);
        let mut ids = self.txns.ids();
        ids.sort_unstable();
        if let Some(log) = &mut self.oplog {
            log.clear();
        }
        for raw in ids {
            let spec = self
                .txns
                .get(raw)
                .expect("listed txn vanished")
                .spec
                .clone();
            let id = TxnId(raw);
            self.op(|| SchedOp::Register {
                id,
                spec: spec.clone(),
            });
            sched.register(id, spec);
        }
        self.scheduler = sched;
        self.label = kind.label();
        // Keep cfg.scheduler in sync so `cache_key` (and snapshots
        // taken after the swap) describe the engine actually running.
        self.cfg.scheduler = kind;
        self.admission_hold = false;
        self.try_admissions();
        drained
    }

    // ----- checkpoint / restore ---------------------------------------

    /// Capture the complete simulation state. Requires
    /// [`Engine::enable_checkpointing`] to have run before the first
    /// event (the scheduler is captured as its op-log). The tracer and
    /// effect buffer are *not* captured: both are observers, and a
    /// restored engine starts with them off.
    ///
    /// # Panics
    /// Panics if checkpointing is not enabled.
    pub fn snapshot(&mut self) -> Snapshot {
        let tok = self.obs.phase_start(ObsPhase::Snapshot);
        let snap = self.snapshot_inner();
        self.obs.phase_end(tok);
        snap
    }

    fn snapshot_inner(&mut self) -> Snapshot {
        let oplog = self
            .oplog
            .as_ref()
            .expect("snapshot requires enable_checkpointing before the first event")
            .clone();
        let gen_cursor = self
            .genr
            .save_cursor()
            .expect("workload generator does not support checkpointing");
        let (cn_free_at, cn_busy, cn_total_demand, cn_jobs) = self.cn.state();
        let dpns = self
            .dpns
            .iter()
            .map(|d| {
                let (ready, running, busy, busy_time, completed) = d.state();
                DpnState {
                    ready,
                    running,
                    busy,
                    busy_time,
                    completed,
                }
            })
            .collect();
        let (arrivals_rng, arrivals_next) = self.arrivals.state();
        let mut txns: Vec<(u64, Txn)> = self
            .txns
            .ids()
            .into_iter()
            .map(|id| (id, self.txns.get(id).expect("listed txn vanished").clone()))
            .collect();
        txns.sort_by_key(|&(id, _)| id);
        let mut cohort_owner = self.cohort_owner.pairs();
        cohort_owner.sort_unstable();
        let rt_hist = self
            .rt_hist
            .as_ref()
            .map(|h| (h.width(), h.counts().to_vec(), h.overflow(), h.total()));
        let hist_state = |h: &LogHistogram| {
            let (counts, total, sum_ticks, min_ticks, max_ticks) = h.state();
            HistState {
                counts: counts.to_vec(),
                total,
                sum_ticks,
                min_ticks,
                max_ticks,
            }
        };
        let retry_hist = hist_state(&self.retry_hist);
        let rt_log = hist_state(&self.rt_log);
        let metrics_prev = self.metrics_prev.clone();
        let metrics = self.metrics.active().map(|s| MetricsState {
            next_ms: s.next_ms(),
            dt_ms: s.series.dt_ms(),
            names: s.series.names().to_vec(),
            times_ms: s.series.times_ms().to_vec(),
            values: s.series.values().to_vec(),
            prev: metrics_prev,
        });
        Snapshot {
            cache_key: self.cfg.cache_key(),
            scheduler: self.cfg.scheduler,
            label: self.label.clone(),
            now: self.events.now(),
            events_popped: self.events.events_processed(),
            events: self
                .events
                .snapshot_entries()
                .into_iter()
                .map(|s| (s.at, s.event))
                .collect(),
            cn_free_at,
            cn_busy,
            cn_total_demand,
            cn_jobs,
            dpns,
            oplog,
            arrivals_rng,
            arrivals_next,
            gen_cursor,
            txns,
            start_queue: self.start_queue.iter().map(|id| id.0).collect(),
            pending: self.pending.clone(),
            next_txn: self.next_txn,
            next_seq: self.next_seq,
            next_cohort: self.next_cohort,
            cohort_owner,
            live: self.live,
            rt: self.rt,
            rt_hist,
            arrived: self.arrived,
            started: self.started,
            completed: self.completed,
            restarts: self.restarts,
            lock_requests: self.lock_requests,
            requests_denied: self.requests_denied,
            retry_tick_armed: self.retry_tick_armed,
            fault_rng: self.fault_rng.state(),
            node_up: self.node_up.clone(),
            dpn_epoch: self.dpn_epoch.clone(),
            down_since: self.down_since.clone(),
            downtime: self.downtime.clone(),
            held_cohorts: self.held_cohorts.clone(),
            aborts_validation: self.aborts_validation,
            aborts_scheduler: self.aborts_scheduler,
            aborts_fault: self.aborts_fault,
            killed: self.killed,
            retry_hist,
            rt_log,
            metrics,
        }
    }

    /// [`Engine::restore`], timing the rebuild (including oplog replay)
    /// under `obs`'s `Restore` phase and carrying `obs` onto the
    /// restored engine. Restore builds a fresh engine, so the caller's
    /// profiler must be moved across explicitly (see
    /// [`Engine::take_profiler`]).
    pub fn restore_with_profiler(base: &SimConfig, snap: &Snapshot, mut obs: Profiler) -> Engine {
        let tok = obs.phase_start(ObsPhase::Restore);
        let mut e = Engine::restore(base, snap);
        obs.phase_end(tok);
        e.obs = obs;
        e
    }

    /// Rebuild an engine from a snapshot. `base` must be the
    /// configuration of the run that produced the snapshot (its
    /// `scheduler` field is overridden by the snapshot's, so a snapshot
    /// taken after [`Engine::swap_scheduler`] restores correctly).
    ///
    /// The restored engine continues byte-identically to the
    /// uninterrupted run. Checkpointing stays enabled (the op-log is
    /// carried over), so a snapshot of a restored run works too. The
    /// tracer and effect buffer start off.
    ///
    /// # Panics
    /// Panics if `base` (with the snapshot's scheduler) does not match
    /// the snapshot's configuration cache key, or if the snapshot's
    /// generator cursor does not fit the configured workload.
    pub fn restore(base: &SimConfig, snap: &Snapshot) -> Engine {
        let mut cfg = base.clone();
        cfg.scheduler = snap.scheduler;
        assert_eq!(
            cfg.cache_key(),
            snap.cache_key,
            "snapshot was taken under a different configuration"
        );
        let mut e = Engine::new(&cfg);
        e.events = EventQueue::from_snapshot(
            snap.now,
            snap.events_popped,
            snap.events
                .iter()
                .map(|&(at, event)| Scheduled { at, event })
                .collect(),
        );
        e.clock = snap.now;
        e.cn = FcfsServer::from_state(
            snap.cn_free_at,
            snap.cn_busy,
            snap.cn_total_demand,
            snap.cn_jobs,
        );
        e.dpns = snap
            .dpns
            .iter()
            .map(|d| Dpn::from_state(d.ready.clone(), d.running, d.busy, d.busy_time, d.completed))
            .collect();
        // The scheduler is a deterministic, RNG-free state machine:
        // replaying its recorded call history against a fresh instance
        // reproduces its exact state. Outputs are discarded.
        let mut sched = cfg.scheduler.build(&cfg.costs);
        let mut scratch: Vec<FileId> = Vec::new();
        for op in &snap.oplog {
            match op {
                SchedOp::Register { id, spec } => sched.register(*id, spec.clone()),
                SchedOp::TryStart { id } => {
                    let _ = sched.try_start(*id);
                }
                SchedOp::Request { id, step } => {
                    let _ = sched.request(*id, *step);
                }
                SchedOp::StepComplete { id, step } => sched.step_complete(*id, *step),
                SchedOp::Validate { id } => {
                    let _ = sched.validate(*id);
                }
                SchedOp::Commit { id } => {
                    scratch.clear();
                    sched.commit_into(*id, &mut scratch);
                }
                SchedOp::Abort { id } => {
                    scratch.clear();
                    sched.abort_into(*id, &mut scratch);
                }
                SchedOp::Forget { id } => {
                    scratch.clear();
                    sched.forget(*id, &mut scratch);
                }
                SchedOp::Drain => {
                    let _ = sched.drain_constraints();
                }
            }
        }
        e.scheduler = sched;
        e.arrivals =
            PoissonArrivals::from_state(cfg.lambda_tps, snap.arrivals_rng, snap.arrivals_next);
        assert!(
            e.genr.load_cursor(&snap.gen_cursor),
            "workload-generator cursor does not match the configured workload"
        );
        e.txns = Arena::new();
        // Insertion order differs from the original run's, which is
        // safe: the arena is never iterated order-sensitively (only the
        // checkpoint layer enumerates it, and it sorts).
        for (id, txn) in &snap.txns {
            e.txns.insert(*id, txn.clone());
        }
        e.start_queue = snap.start_queue.iter().map(|&id| TxnId(id)).collect();
        e.pending = snap.pending.clone();
        e.next_txn = snap.next_txn;
        e.next_seq = snap.next_seq;
        e.next_cohort = snap.next_cohort;
        e.cohort_owner = IdMap::new();
        for &(k, v) in &snap.cohort_owner {
            e.cohort_owner.insert(k, v);
        }
        e.live = snap.live;
        e.rt = snap.rt;
        e.rt_hist = snap
            .rt_hist
            .as_ref()
            .map(|(width, counts, overflow, total)| {
                Histogram::from_state(*width, counts.clone(), *overflow, *total)
            });
        e.arrived = snap.arrived;
        e.started = snap.started;
        e.completed = snap.completed;
        e.restarts = snap.restarts;
        e.lock_requests = snap.lock_requests;
        e.requests_denied = snap.requests_denied;
        e.retry_tick_armed = snap.retry_tick_armed;
        e.label = snap.label.clone();
        e.fault_rng = bds_des::rng::Xoshiro256::from_state(snap.fault_rng);
        e.node_up = snap.node_up.clone();
        e.dpn_epoch = snap.dpn_epoch.clone();
        e.down_since = snap.down_since.clone();
        e.downtime = snap.downtime.clone();
        e.held_cohorts = snap.held_cohorts.clone();
        e.aborts_validation = snap.aborts_validation;
        e.aborts_scheduler = snap.aborts_scheduler;
        e.aborts_fault = snap.aborts_fault;
        e.killed = snap.killed;
        let hist = |s: &HistState| {
            LogHistogram::from_state(
                s.counts.clone(),
                s.total,
                s.sum_ticks,
                s.min_ticks,
                s.max_ticks,
            )
        };
        e.retry_hist = hist(&snap.retry_hist);
        e.rt_log = hist(&snap.rt_log);
        match &snap.metrics {
            Some(m) => {
                e.metrics = Sampler::resume(
                    m.next_ms,
                    TimeSeries::from_parts(
                        m.dt_ms,
                        m.names.clone(),
                        m.times_ms.clone(),
                        m.values.clone(),
                    ),
                );
                e.metrics_prev = m.prev.clone();
            }
            None => {
                e.metrics = Sampler::Off;
                e.metrics_prev = PrevSample::default();
            }
        }
        e.oplog = Some(snap.oplog.clone());
        e
    }
}

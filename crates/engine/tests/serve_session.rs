//! End-to-end smoke of the `bds-serve` NDJSON protocol: spawn the real
//! binary, drive a session through submit → run → snapshot →
//! hot-swap → restore → metrics, and check the conservation invariant
//! (arrivals = commits + kills + in-flight) at every probe point.

use bds_metrics::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Serve {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn() -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bds-serve"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn bds-serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        Serve {
            child,
            stdin,
            stdout,
        }
    }

    /// Send one request line, read one reply line, require `"ok":true`.
    fn send(&mut self, req: &str) -> JsonValue {
        writeln!(self.stdin, "{req}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read reply");
        let reply = parse(&line).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"));
        assert_eq!(
            reply.get("ok"),
            Some(&JsonValue::Bool(true)),
            "request {req} failed: {line}"
        );
        reply
    }

    /// Send a streaming request: collect `{"watch":true,...}` delta
    /// lines until the final reply arrives, which must be `"ok":true`.
    fn send_watch(&mut self, req: &str) -> (Vec<JsonValue>, JsonValue) {
        writeln!(self.stdin, "{req}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut deltas = Vec::new();
        loop {
            let mut line = String::new();
            self.stdout.read_line(&mut line).expect("read stream line");
            let v = parse(&line).unwrap_or_else(|e| panic!("bad stream line {line:?}: {e}"));
            if v.get("watch") == Some(&JsonValue::Bool(true)) {
                deltas.push(v);
                continue;
            }
            assert_eq!(
                v.get("ok"),
                Some(&JsonValue::Bool(true)),
                "request {req} failed: {line}"
            );
            return (deltas, v);
        }
    }

    /// Send a request that must be refused.
    fn send_err(&mut self, req: &str) -> String {
        writeln!(self.stdin, "{req}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read reply");
        let reply = parse(&line).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"));
        assert_eq!(
            reply.get("ok"),
            Some(&JsonValue::Bool(false)),
            "request {req} unexpectedly succeeded: {line}"
        );
        reply
            .get("error")
            .and_then(JsonValue::as_str)
            .expect("error message")
            .to_string()
    }

    fn quit(mut self) {
        self.send(r#"{"cmd":"quit"}"#);
        let status = self.child.wait().expect("wait for bds-serve");
        assert!(status.success(), "bds-serve exited with {status}");
    }
}

fn num(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_num)
        .unwrap_or_else(|| panic!("missing {key} in {v:?}")) as u64
}

/// The invariant every status reply must satisfy.
fn check_conserved(status: &JsonValue) {
    assert_eq!(status.get("conserved"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        num(status, "arrived"),
        num(status, "completed") + num(status, "killed") + num(status, "in_flight"),
    );
}

#[test]
fn session_with_snapshot_swap_and_restore() {
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("bds-serve-ckpt-{}.json", std::process::id()));
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");
    let mut s = Serve::spawn();

    // Commands before configure are refused, not fatal.
    let msg = s.send_err(r#"{"cmd":"run"}"#);
    assert!(msg.contains("configure"), "unhelpful error: {msg}");

    let r = s.send(
        r#"{"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":300,"seed":7,"faults":"crash=2@80x15,retry=1000:8000:4"}"#,
    );
    assert_eq!(r.get("scheduler").and_then(JsonValue::as_str), Some("GOW"));

    // An out-of-band submission rides along with the Poisson stream.
    let r = s.send(r#"{"cmd":"submit","steps":[["r",3,1200.0],["w",7,600.0]]}"#);
    let submitted = num(&r, "txn");
    let r = s.send(r#"{"cmd":"submit","steps":[["rs",5,800.0]]}"#);
    assert_ne!(num(&r, "txn"), submitted, "submissions get distinct ids");

    let r = s.send(r#"{"cmd":"run-until","t_ms":60000}"#);
    assert!(num(&r, "events") > 0);
    assert!(num(&r, "now_ms") <= 60_000);

    // Single-stepping reports effects.
    let r = s.send(r#"{"cmd":"step","n":25}"#);
    assert_eq!(num(&r, "events"), 25);
    let effects = r
        .get("effects")
        .and_then(JsonValue::as_arr)
        .expect("effects");
    assert!(
        !effects.is_empty(),
        "25 mid-run events must produce effects"
    );

    let snap = s.send(&format!(r#"{{"cmd":"snapshot","path":"{ckpt_str}"}}"#));
    let snap_now = num(&snap, "now_ms");
    let snap_events = num(&snap, "events");
    assert!(num(&snap, "bytes") > 0);

    // Hot-swap at an epoch boundary: the engine drains in-flight work,
    // re-registers survivors, and keeps every transaction accounted for.
    let r = s.send(r#"{"cmd":"swap-scheduler","scheduler":"asl"}"#);
    assert_eq!(r.get("scheduler").and_then(JsonValue::as_str), Some("ASL"));
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);

    s.send(r#"{"cmd":"run-until","t_ms":150000}"#);
    let status = s.send(r#"{"cmd":"status"}"#);
    assert_eq!(
        status.get("scheduler").and_then(JsonValue::as_str),
        Some("ASL")
    );
    check_conserved(&status);

    // Restore rewinds to the checkpoint: same clock, same event count,
    // original scheduler.
    let r = s.send(&format!(r#"{{"cmd":"restore","path":"{ckpt_str}"}}"#));
    assert_eq!(r.get("scheduler").and_then(JsonValue::as_str), Some("GOW"));
    assert_eq!(num(&r, "now_ms"), snap_now);
    assert_eq!(num(&r, "events"), snap_events);
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);

    // Prometheus exposition parses: TYPE lines and the core series.
    let m = s.send(r#"{"cmd":"metrics"}"#);
    let body = m
        .get("body")
        .and_then(JsonValue::as_str)
        .expect("prom body");
    for needle in [
        "# TYPE bds_txns_arrived counter",
        "# TYPE bds_txns_in_flight gauge",
        "# TYPE bds_response_time_seconds histogram",
        "bds_response_time_seconds_bucket",
        "scheduler=\"GOW\"",
    ] {
        assert!(
            body.contains(needle),
            "prom text missing {needle:?}:\n{body}"
        );
    }
    for line in body.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "unparseable prom line {line:?}"
        );
    }

    let m = s.send(r#"{"cmd":"metrics","format":"csv"}"#);
    let body = m.get("body").and_then(JsonValue::as_str).expect("csv body");
    assert!(body.starts_with("metric,value\n"));
    assert!(body.lines().count() > 5);

    // Run out the horizon and read the final report.
    s.send(r#"{"cmd":"run"}"#);
    let r = s.send(r#"{"cmd":"report"}"#);
    let report = r.get("report").expect("report object");
    assert_eq!(
        report.get("scheduler").and_then(JsonValue::as_str),
        Some("GOW")
    );
    assert!(num(report, "completed") > 0);
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);

    s.quit();
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn restored_session_finishes_identically() {
    // Drive two sessions: one straight through, one snapshotted midway,
    // swapped to a different scheduler, then restored. Their final
    // reports must be identical text.
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("bds-serve-ident-{}.json", std::process::id()));
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");
    let cfg = r#"{"cmd":"configure","scheduler":"c2pl","lambda":0.6,"horizon_s":300,"seed":11}"#;

    let mut a = Serve::spawn();
    a.send(cfg);
    a.send(r#"{"cmd":"run"}"#);
    let straight = a.send(r#"{"cmd":"report"}"#);
    a.quit();

    let mut b = Serve::spawn();
    b.send(cfg);
    b.send(r#"{"cmd":"run-until","t_ms":90000}"#);
    b.send(&format!(r#"{{"cmd":"snapshot","path":"{ckpt_str}"}}"#));
    b.send(r#"{"cmd":"swap-scheduler","scheduler":"wdl"}"#);
    b.send(r#"{"cmd":"run-until","t_ms":200000}"#);
    b.send(&format!(r#"{{"cmd":"restore","path":"{ckpt_str}"}}"#));
    b.send(r#"{"cmd":"run"}"#);
    let restored = b.send(r#"{"cmd":"report"}"#);
    b.quit();

    assert_eq!(
        straight.get("report"),
        restored.get("report"),
        "detour through swap + restore changed the outcome"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn batch_epoch_schedulers_serve_end_to_end() {
    // The batch/epoch family (DGCC, BROOK) drives through the full
    // session surface: configure, run, hot-swap between the two, and a
    // snapshot/restore round trip that preserves the kind on the wire.
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("bds-serve-dgcc-{}.json", std::process::id()));
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");

    let mut s = Serve::spawn();
    let r =
        s.send(r#"{"cmd":"configure","scheduler":"dgcc","lambda":0.6,"horizon_s":300,"seed":13}"#);
    assert_eq!(r.get("scheduler").and_then(JsonValue::as_str), Some("DGCC"));
    s.send(r#"{"cmd":"run-until","t_ms":60000}"#);
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);

    s.send(&format!(r#"{{"cmd":"snapshot","path":"{ckpt_str}"}}"#));
    let r = s.send(r#"{"cmd":"swap-scheduler","scheduler":"brook"}"#);
    assert_eq!(
        r.get("scheduler").and_then(JsonValue::as_str),
        Some("BROOK")
    );
    s.send(r#"{"cmd":"run-until","t_ms":150000}"#);
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);
    // Brook never aborts of its own accord, served or not.
    let r = s.send(r#"{"cmd":"report"}"#);
    let report = r.get("report").expect("report object");
    assert_eq!(num(report, "aborts_scheduler"), 0);

    // Restore rewinds to the DGCC checkpoint: the kind round-trips.
    let r = s.send(&format!(r#"{{"cmd":"restore","path":"{ckpt_str}"}}"#));
    assert_eq!(r.get("scheduler").and_then(JsonValue::as_str), Some("DGCC"));
    s.send(r#"{"cmd":"run"}"#);
    let r = s.send(r#"{"cmd":"report"}"#);
    let report = r.get("report").expect("report object");
    assert!(num(report, "completed") > 0);
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);

    s.quit();
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn sharded_session_matches_serial() {
    // The `shards` knob changes wall-clock strategy only: a session run
    // with worker shards must produce byte-identical reports — and keep
    // snapshot/restore working — versus a plain serial session.
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("bds-serve-shard-{}.json", std::process::id()));
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");
    let serial_cfg = r#"{"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":300,"seed":17,"faults":"crash=1@60x20"}"#;
    let sharded_cfg = r#"{"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":300,"seed":17,"faults":"crash=1@60x20","shards":4}"#;

    let mut a = Serve::spawn();
    a.send(serial_cfg);
    a.send(r#"{"cmd":"run"}"#);
    let serial = a.send(r#"{"cmd":"report"}"#);
    a.quit();

    let mut b = Serve::spawn();
    let r = b.send(sharded_cfg);
    assert_eq!(num(&r, "shards"), 4);
    b.send(r#"{"cmd":"run-until","t_ms":90000}"#);
    let status = b.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);
    // A snapshot taken between sharded runs restores into the same
    // session and the remainder still matches the serial outcome.
    b.send(&format!(r#"{{"cmd":"snapshot","path":"{ckpt_str}"}}"#));
    b.send(r#"{"cmd":"run-until","t_ms":200000}"#);
    b.send(&format!(r#"{{"cmd":"restore","path":"{ckpt_str}"}}"#));
    b.send(r#"{"cmd":"run"}"#);
    let sharded = b.send(r#"{"cmd":"report"}"#);
    b.quit();

    assert_eq!(
        serial.get("report"),
        sharded.get("report"),
        "sharded session diverged from serial"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn watch_streams_live_telemetry_deltas() {
    // Reference: the same point run straight through, serial, unprofiled.
    let mut a = Serve::spawn();
    a.send(r#"{"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":300,"seed":5}"#);
    a.send(r#"{"cmd":"run"}"#);
    let plain = a.send(r#"{"cmd":"report"}"#);
    a.quit();

    // Watched session: sharded, advanced in 20 s chunks with one
    // telemetry delta streamed per chunk.
    let mut s = Serve::spawn();
    s.send(
        r#"{"cmd":"configure","scheduler":"gow","lambda":0.6,"horizon_s":300,"seed":5,"shards":2}"#,
    );
    let (deltas, reply) = s.send_watch(r#"{"cmd":"watch","t_ms":120000,"interval_ms":20000}"#);
    assert_eq!(num(&reply, "deltas"), deltas.len() as u64);
    assert!(deltas.len() >= 3, "wanted >=3 deltas, got {}", deltas.len());
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(num(d, "seq"), i as u64 + 1);
        assert_eq!(num(d, "now_ms"), 20_000 * (i as u64 + 1));
        let rates = d.get("rates").expect("rates object");
        assert!(rates
            .get("commits_per_s")
            .and_then(JsonValue::as_num)
            .is_some());
        // watch auto-installs the profiler, so phase shares stream live.
        let phases = d.get("phases").expect("phase shares");
        assert!(phases
            .get("event_queue")
            .and_then(JsonValue::as_num)
            .is_some());
        let obs = d.get("obs").expect("shard/barrier stats");
        assert!(obs.get("windows").and_then(JsonValue::as_num).is_some());
    }
    let last = deltas.last().expect("deltas");
    assert!(num(last, "events") > 0);
    assert!(num(last, "completed") > 0);
    assert!(
        num(last.get("obs").expect("obs"), "windows") > 0,
        "sharded watch saw no barrier windows: {last:?}"
    );

    // Status is enriched with shard, profiler, fallback, and build info.
    let status = s.send(r#"{"cmd":"status"}"#);
    check_conserved(&status);
    assert_eq!(num(&status, "shards"), 2);
    assert_eq!(status.get("profiler"), Some(&JsonValue::Bool(true)));
    assert_eq!(status.get("shard_fallback"), Some(&JsonValue::Null));
    let build = status.get("build").expect("build info");
    assert_eq!(
        build.get("package").and_then(JsonValue::as_str),
        Some("batchsched")
    );
    assert!(build.get("version").and_then(JsonValue::as_str).is_some());

    // Finish the horizon under watch; chunked advance + live profiling
    // must not perturb the simulation outcome.
    let (tail, _) = s.send_watch(r#"{"cmd":"watch","interval_ms":60000}"#);
    assert!(!tail.is_empty());
    let watched = s.send(r#"{"cmd":"report"}"#);
    s.quit();
    assert_eq!(
        plain.get("report"),
        watched.get("report"),
        "watch changed the outcome"
    );
}

#[test]
fn tcp_listener_serves_the_same_protocol() {
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_bds-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn bds-serve --listen");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |req: &str| -> JsonValue {
        writeln!(writer, "{req}").expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        let v = parse(&line).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)), "{req} -> {line}");
        v
    };

    ask(r#"{"cmd":"configure","scheduler":"low","lambda":0.5,"horizon_s":120,"seed":3}"#);
    let r = ask(r#"{"cmd":"run-until","t_ms":60000}"#);
    assert!(num(&r, "events") > 0);
    let status = ask(r#"{"cmd":"status"}"#);
    assert_eq!(
        status.get("scheduler").and_then(JsonValue::as_str),
        Some("LOW")
    );
    check_conserved(&status);
    ask(r#"{"cmd":"quit"}"#);

    let status = child.wait().expect("wait");
    assert!(status.success(), "bds-serve exited with {status}");
}

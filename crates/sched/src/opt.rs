//! OPT — Optimistic locking (Kung & Robinson \[11\]).
//!
//! Transactions run without any locks, recording read and write sets; at
//! commit the scheduler certifies serializability by **backward
//! validation**: the committing transaction fails if any transaction
//! that committed during its lifetime wrote a file the validator read or
//! wrote. On failure the transaction is aborted and restarted from its
//! first step — all its I/O is redone, which under the paper's
//! high-data-contention batch workloads makes OPT the worst performer
//! (Fig. 8, Table 4) and saturates the DPNs with wasted work (Fig. 10's
//! flat speedup).

use crate::{Outcome, ReqDecision, Scheduler, StartDecision};
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

/// A committed transaction's footprint retained for validation.
#[derive(Debug, Clone)]
struct CommittedEntry {
    /// Commit serial number.
    seq: u64,
    /// The committed transaction (for the audit constraint log).
    id: TxnId,
    /// Files the committed transaction wrote.
    write_set: Vec<FileId>,
}

/// The OPT scheduler.
#[derive(Debug, Default)]
pub struct Opt {
    specs: BTreeMap<TxnId, BatchSpec>,
    /// Live transactions → the commit serial number at their start.
    active: BTreeMap<TxnId, u64>,
    committed: Vec<CommittedEntry>,
    commit_seq: u64,
    validation_failures: u64,
    /// Last committed writer per file, for the audit constraint log.
    last_writer: BTreeMap<FileId, TxnId>,
    /// Certify-time precedence constraints on the committed history (see
    /// [`Scheduler::drain_constraints`]): true dependencies point from
    /// each footprint file's last committed writer to the committer;
    /// would-be validation misses are recorded as a 2-cycle so the
    /// serializability oracle flags them.
    constraints: Vec<(TxnId, TxnId)>,
}

impl Opt {
    /// Create the scheduler.
    pub fn new() -> Self {
        Opt::default()
    }

    /// Total validation failures so far (each causes a restart).
    pub fn validation_failures(&self) -> u64 {
        self.validation_failures
    }

    /// Drop committed entries no active transaction can conflict with.
    fn prune(&mut self) {
        let min_start = self
            .active
            .values()
            .min()
            .copied()
            .unwrap_or(self.commit_seq);
        self.committed.retain(|e| e.seq > min_start);
    }
}

impl Scheduler for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.active.insert(id, self.commit_seq);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, _id: TxnId, _step: usize) -> Outcome<ReqDecision> {
        Outcome::free(ReqDecision::Granted)
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, id: TxnId) -> Outcome<bool> {
        let start_seq = self.active[&id];
        let spec = &self.specs[&id];
        let mut footprint = spec.read_set();
        footprint.extend(spec.write_set());
        footprint.sort_unstable();
        footprint.dedup();
        let ok = !self
            .committed
            .iter()
            .filter(|e| e.seq > start_seq)
            .any(|e| {
                e.write_set
                    .iter()
                    .any(|w| footprint.binary_search(w).is_ok())
            });
        if !ok {
            self.validation_failures += 1;
            return Outcome::free(false).because("validation-conflict");
        }
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let start_seq = self.active[&id];
        let spec = &self.specs[&id];
        let write_set = spec.write_set();
        let mut footprint = spec.read_set();
        footprint.extend(write_set.iter().copied());
        footprint.sort_unstable();
        footprint.dedup();
        // Audit log: every transaction that committed a conflicting
        // write during this one's lifetime should have failed this
        // one's validation — record the overlap as a 2-cycle so the
        // oracle (`wtpg::oracle::is_serializable`) rejects the history
        // if validation ever lets one through.
        for e in self.committed.iter().filter(|e| e.seq > start_seq) {
            if e.write_set
                .iter()
                .any(|w| footprint.binary_search(w).is_ok())
            {
                self.constraints.push((e.id, id));
                self.constraints.push((id, e.id));
            }
        }
        // True wr/ww dependencies: the last committed writer of each
        // footprint file precedes this commit in the equivalent serial
        // order (which for backward validation is commit order).
        for f in &footprint {
            if let Some(&w) = self.last_writer.get(f) {
                if w != id {
                    self.constraints.push((w, id));
                }
            }
        }
        for f in &write_set {
            self.last_writer.insert(*f, id);
        }
        self.commit_seq += 1;
        self.committed.push(CommittedEntry {
            seq: self.commit_seq,
            id,
            write_set,
        });
        self.active.remove(&id);
        self.specs.remove(&id);
        self.prune();
        Vec::new()
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        self.active.remove(&id);
        self.prune();
        Vec::new()
    }

    fn forget(&mut self, id: TxnId, _released: &mut Vec<FileId>) {
        self.active.remove(&id);
        self.specs.remove(&id);
        self.prune();
    }

    fn live_count(&self) -> usize {
        self.active.len()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        std::mem::take(&mut self.constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;
    use bds_workload::LockMode;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }

    fn writer(file: FileId) -> BatchSpec {
        BatchSpec::new(vec![Step::write(file, 1.0)])
    }
    fn reader(file: FileId) -> BatchSpec {
        BatchSpec::new(vec![Step::read(file, LockMode::Shared, 1.0)])
    }

    #[test]
    fn non_overlapping_transactions_validate() {
        let mut s = Opt::new();
        s.register(t(1), writer(f(0)));
        s.register(t(2), writer(f(1)));
        s.try_start(t(1));
        s.try_start(t(2));
        assert!(s.validate(t(1)).decision);
        s.commit(t(1));
        assert!(s.validate(t(2)).decision, "disjoint files: no conflict");
        s.commit(t(2));
        assert_eq!(s.validation_failures(), 0);
    }

    #[test]
    fn write_write_overlap_fails_validation() {
        let mut s = Opt::new();
        s.register(t(1), writer(f(0)));
        s.register(t(2), writer(f(0)));
        s.try_start(t(1));
        s.try_start(t(2));
        s.validate(t(1));
        s.commit(t(1));
        assert!(!s.validate(t(2)).decision, "t1 committed a write t2 wrote");
        assert_eq!(s.validation_failures(), 1);
    }

    #[test]
    fn read_of_committed_write_fails() {
        let mut s = Opt::new();
        s.register(t(1), writer(f(0)));
        s.register(t(2), reader(f(0)));
        s.try_start(t(2)); // reader starts first…
        s.try_start(t(1));
        s.commit(t(1)); // …writer commits during its lifetime
        assert!(!s.validate(t(2)).decision);
    }

    #[test]
    fn commits_before_start_are_invisible() {
        let mut s = Opt::new();
        s.register(t(1), writer(f(0)));
        s.try_start(t(1));
        s.commit(t(1));
        // t2 starts after t1 committed: no conflict.
        s.register(t(2), writer(f(0)));
        s.try_start(t(2));
        assert!(s.validate(t(2)).decision);
    }

    #[test]
    fn restart_revalidates_from_new_start_point() {
        let mut s = Opt::new();
        s.register(t(1), writer(f(0)));
        s.register(t(2), writer(f(0)));
        s.try_start(t(1));
        s.try_start(t(2));
        s.commit(t(1));
        assert!(!s.validate(t(2)).decision);
        s.abort(t(2));
        // Restart: new start sequence, nothing committed since.
        s.try_start(t(2));
        assert!(s.validate(t(2)).decision);
        s.commit(t(2));
    }

    #[test]
    fn committed_log_is_pruned() {
        let mut s = Opt::new();
        for i in 0..100 {
            s.register(t(i), writer(f(i as u32)));
            s.try_start(t(i));
            s.validate(t(i));
            s.commit(t(i));
        }
        assert!(
            s.committed.len() <= 1,
            "log must not grow without active transactions: {}",
            s.committed.len()
        );
    }

    #[test]
    fn reads_never_invalidate_readers() {
        let mut s = Opt::new();
        s.register(t(1), reader(f(0)));
        s.register(t(2), reader(f(0)));
        s.try_start(t(1));
        s.try_start(t(2));
        s.commit(t(1));
        assert!(s.validate(t(2)).decision, "read-read is not a conflict");
    }
}

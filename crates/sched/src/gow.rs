//! GOW — Globally-Optimized WTPG scheduler (the paper's Fig. 4; called
//! the Chain-WTPG scheduler in \[13\]).
//!
//! * **Phase 0** (admission): a new transaction may start only if the
//!   WTPG stays *chain-form* — the conflict graph remains a disjoint
//!   union of simple paths. Costs `toptime` per test.
//! * **Phase 1**: a request conflicting with a held lock is blocked.
//! * **Phase 2**: compute the full serializable order `W` minimizing the
//!   WTPG critical path (the chain dynamic program). Costs `chaintime`.
//! * **Phase 3**: granting the request implies orientations `Ti → Tj`
//!   toward every live conflicting declarer of the file; the request is
//!   granted only if those orientations are consistent with an optimal
//!   `W` — i.e. forcing them still achieves the optimal critical path.
//!   Otherwise the request is delayed.
//! * **Phase 4**: apply the newly determined precedence edges.

use crate::lock_table::LockTable;
use crate::wtpg_core::WtpgCore;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::chain;
use bds_wtpg::TxnId;

/// The GOW scheduler.
#[derive(Debug, Default)]
pub struct Gow {
    core: WtpgCore,
    table: LockTable,
    chain_time: Duration,
    top_time: Duration,
    /// Admission refusals due to the chain-form constraint (statistic).
    chain_refusals: u64,
    /// Incremental chain critical-path engine: only chains touched since
    /// the previous decision re-run the Pareto DP.
    engine: chain::ChainEngine,
    /// Scratch: conflict set collected during the chain-form test.
    conflicts_buf: Vec<TxnId>,
    /// Scratch: implied orientations of the current request.
    orient_buf: Vec<(TxnId, TxnId)>,
}

impl Gow {
    /// Create with Table 1 costs: `chaintime` (30 ms) for the order
    /// optimization and `toptime` (5 ms) for the chain-form test.
    pub fn new(chain_time: Duration, top_time: Duration) -> Self {
        Gow {
            chain_time,
            top_time,
            ..Gow::default()
        }
    }

    /// Number of chain-form admission refusals so far.
    pub fn chain_refusals(&self) -> u64 {
        self.chain_refusals
    }
}

impl Scheduler for Gow {
    fn name(&self) -> &'static str {
        "GOW"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        self.core.register(id, spec);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        // Phase 0: chain-form test against the would-be conflict set.
        let conflicts = &mut self.conflicts_buf;
        conflicts.clear();
        {
            let core = &self.core;
            let spec = core.spec(id);
            conflicts.extend(
                core.graph
                    .txns()
                    .filter(|&other| other != id)
                    .filter(|&other| bds_workload::conflict::conflicts(spec, core.spec(other))),
            );
        }
        if !chain::accepts_new_txn(&self.core.graph, conflicts) {
            self.chain_refusals += 1;
            return Outcome::costed(StartDecision::Refuse, self.top_time).because("chain-form");
        }
        self.core.add_live(id, &self.table);
        debug_assert!(chain::is_chain_form(&self.core.graph));
        Outcome::costed(StartDecision::Admit, self.top_time)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.core.spec(id).steps[step];
        // Phase 1: conflicts with the current lock held on the file.
        if !self.table.can_grant(id, s.file, s.mode) {
            return Outcome::free(ReqDecision::Blocked).because("lock-held");
        }
        self.core
            .implied_orientations_into(id, s.file, s.mode, &mut self.orient_buf);
        // Decided-adverse pairs make the grant non-serializable outright.
        let adverse = self.core.has_adverse_declarer(id, s.file, s.mode);
        if self.orient_buf.is_empty() && !adverse {
            // Nothing to decide: grant without running the optimizer.
            self.table.grant(id, s.file, s.mode);
            return Outcome::free(ReqDecision::Granted);
        }
        // Phase 2: the globally optimal order's critical path…
        let optimal = self.engine.min_critical(&mut self.core.graph, &[]);
        // Phase 3: …must still be achievable with the grant's
        // orientations forced.
        let forced = if adverse {
            f64::INFINITY
        } else {
            self.engine
                .min_critical(&mut self.core.graph, &self.orient_buf)
        };
        if forced > optimal + 1e-9 {
            let reason = if adverse {
                "decided-adverse"
            } else {
                "critical-path"
            };
            return Outcome::costed(ReqDecision::Delayed, self.chain_time).because(reason);
        }
        // Phase 4: grant and enforce the decided edges.
        self.table.grant(id, s.file, s.mode);
        self.core.apply_orientations(&self.orient_buf);
        Outcome::costed(ReqDecision::Granted, self.chain_time)
    }

    fn step_complete(&mut self, id: TxnId, step: usize) {
        self.core.step_complete(id, step);
    }

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove(id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove_live_only(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        // Permanent kill: drop the WTPG slot, spec and every lock row.
        self.core.remove(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.core.live_count()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.core.drain_constraints()
    }

    fn telemetry(&self) -> SchedTelemetry {
        let (wtpg_slots, wtpg_free) = self.core.graph.arena_stats();
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            wtpg_nodes: self.core.graph.len(),
            wtpg_edges: self.core.graph.edges().count(),
            wtpg_slots,
            wtpg_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn gow() -> Gow {
        Gow::new(Duration::from_millis(30), Duration::from_millis(5))
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn admission_enforces_chain_form() {
        let mut s = gow();
        // Three transactions all updating F0: a triangle of conflicts.
        for i in 1..=3 {
            s.register(t(i), BatchSpec::new(vec![w(f(0), 1.0)]));
        }
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
        // T3 would conflict with both T1 and T2 which are already
        // adjacent — the conflict graph would become a triangle.
        assert_eq!(s.try_start(t(3)).decision, StartDecision::Refuse);
        assert_eq!(s.chain_refusals(), 1);
        // Admission costs toptime.
        assert_eq!(s.try_start(t(3)).cpu, Duration::from_millis(5));
    }

    #[test]
    fn grant_consistent_with_optimum() {
        // Two transactions conflicting on F0. T1 cheap-first: the
        // optimal order is T1 → T2 when T2's remaining-after-block cost
        // is smaller than T1's.
        let mut s = gow();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 5.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(2), 5.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        // Weights: w(T1→T2) = T2 declared from its step 1 = 1.
        //          w(T2→T1) = T1 declared from its step 0 = 6.
        // Optimal: critical(T1→T2) = max(6, 6+1) = 7;
        //          critical(T2→T1) = max(6, 6+6) = 12 → W = {T1→T2}.
        let o = s.request(t(1), 0);
        assert_eq!(o.decision, ReqDecision::Granted);
        assert_eq!(o.cpu, Duration::from_millis(30));
        // T2's later request for F0 conflicts with the held lock: blocked.
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Blocked);
    }

    #[test]
    fn inconsistent_grant_is_delayed() {
        let mut s = gow();
        // Mirror of the above: now T2 requests first, but granting T2
        // the lock on F0 would force T2 → T1 whose critical path is
        // worse than the optimum → delayed.
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 5.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(2), 5.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        let o = s.request(t(2), 1);
        assert_eq!(o.decision, ReqDecision::Delayed);
        assert_eq!(o.reason, Some("critical-path"));
        // After T1 takes and finishes with F0 the order is decided
        // T1 → T2; once T1 commits, T2's request succeeds.
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn non_conflicting_requests_grant_without_optimizer() {
        let mut s = gow();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        let o = s.request(t(1), 0);
        assert_eq!(o.decision, ReqDecision::Granted);
        assert!(o.cpu.is_zero(), "no conflicts → no chaintime");
    }

    #[test]
    fn serializable_constraints() {
        let mut s = gow();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 2.0), w(f(2), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        let _ = s.request(t(1), 0);
        let _ = s.request(t(2), 0);
        let _ = s.request(t(1), 1);
        s.commit(t(1));
        s.commit(t(2));
        let cs = s.drain_constraints();
        assert!(bds_wtpg::oracle::is_serializable(&cs), "{cs:?}");
    }

    #[test]
    fn chain_extension_at_endpoints_is_accepted() {
        let mut s = gow();
        // T1-T2 conflict on F0; T3 conflicts with T2 on F1 (an endpoint).
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(3), BatchSpec::new(vec![w(f(1), 1.0)]));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(3)).decision, StartDecision::Admit);
        assert_eq!(s.live_count(), 3);
    }
}

//! Brook-2PL — deadlock-free two-phase locking via total lock ordering
//! (arXiv 2508.18576, adapted to the paper's declared-lock-set model).
//!
//! Brook-2PL eliminates deadlocks *structurally*: all lock acquisition
//! follows one global total order over the lock space (the SLW-graph's
//! topological order — here, ascending [`FileId`], the canonical order
//! for an unstructured file universe). A transaction acquires its
//! declared locks as an ascending **prefix**: before executing a step on
//! file `f` it first acquires every declared lock on files `≤ f` it does
//! not yet hold, in order, each at its strongest declared mode (so S→X
//! upgrades — the classic hidden deadlock — never happen). If some lock
//! in the prefix is unavailable the request blocks *without holding
//! anything beyond the prefix below it*.
//!
//! Deadlock-freedom argument: every blocked transaction waits on a file
//! strictly greater (in the total order) than every lock it holds, so a
//! wait-for cycle would have to be strictly increasing in file order all
//! the way around — impossible. Consequently Brook never issues
//! [`ReqDecision::Restart`]: `aborts_scheduler` is exactly 0 in every
//! run, which the chaos corpus asserts.
//!
//! The same property makes the grant-time precedence orientations
//! (shared [`WtpgCore`] machinery, as in C2PL) provably consistent:
//! `apply_orientations`'s inconsistency panic doubles as a structural
//! assertion, and [`Scheduler::audit_invariant`] re-checks the prefix
//! discipline on demand.

use crate::lock_table::LockTable;
use crate::wtpg_core::WtpgCore;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{BatchSpec, FileId, LockMode};
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

/// The Brook-2PL scheduler.
#[derive(Debug, Default)]
pub struct Brook {
    core: WtpgCore,
    table: LockTable,
    dd_time: Duration,
    /// Declared lock set per registered transaction, sorted ascending by
    /// file (the global acquisition order), each at its strongest mode.
    order: BTreeMap<TxnId, Vec<(FileId, LockMode)>>,
    /// Length of the acquired prefix of `order`, per live transaction.
    acquired: BTreeMap<TxnId, usize>,
    /// Scratch: implied orientations of the current grant.
    orient_buf: Vec<(TxnId, TxnId)>,
}

impl Brook {
    /// Create with the per-request CPU cost (`ddtime`).
    pub fn new(dd_time: Duration) -> Self {
        Brook {
            dd_time,
            ..Brook::default()
        }
    }
}

impl Scheduler for Brook {
    fn name(&self) -> &'static str {
        "BROOK"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let mut sorted = spec.lock_set();
        sorted.sort_unstable_by_key(|&(file, _)| file);
        self.order.insert(id, sorted);
        self.core.register(id, spec);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.core.add_live(id, &self.table);
        self.acquired.insert(id, 0);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.core.spec(id).steps[step];
        // Extend the acquired prefix up through the step's file, in the
        // global order. Blocking mid-prefix leaves the invariant intact:
        // the held set is still an exact prefix.
        loop {
            let k = self.acquired[&id];
            let (file, mode) = match self.order[&id].get(k) {
                Some(&(file, mode)) if file <= s.file => (file, mode),
                _ => break,
            };
            if !self.table.can_grant(id, file, mode) {
                return Outcome::costed(ReqDecision::Blocked, self.dd_time).because("slw-order");
            }
            self.table.grant(id, file, mode);
            // Grant-time precedence: `id` now precedes every live
            // conflicting declarer of `file`. Ascending acquisition makes
            // a reverse orientation impossible (see the module docs);
            // `apply_orientations` panics if that ever breaks.
            self.core
                .implied_orientations_into(id, file, mode, &mut self.orient_buf);
            self.core.apply_orientations(&self.orient_buf);
            self.acquired.insert(id, k + 1);
        }
        debug_assert!(
            self.table.holds_sufficient(id, s.file, s.mode),
            "Brook prefix through {:?} does not cover step file {:?}",
            self.order[&id].get(self.acquired[&id].wrapping_sub(1)),
            s.file
        );
        Outcome::costed(ReqDecision::Granted, self.dd_time)
    }

    fn step_complete(&mut self, id: TxnId, step: usize) {
        self.core.step_complete(id, step);
    }

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove(id);
        self.order.remove(&id);
        self.acquired.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        // Keep the registration (and its sorted order) for the restart.
        self.core.remove_live_only(id);
        self.core.purge_constraints(id);
        self.acquired.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove(id);
        self.core.purge_constraints(id);
        self.order.remove(&id);
        self.acquired.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.core.live_count()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.core.drain_constraints()
    }

    fn telemetry(&self) -> SchedTelemetry {
        let (wtpg_slots, wtpg_free) = self.core.graph.arena_stats();
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            wtpg_nodes: self.core.graph.len(),
            wtpg_edges: self.core.graph.edges().count(),
            wtpg_slots,
            wtpg_free,
        }
    }

    fn audit_invariant(&self) -> Option<Result<(), String>> {
        // Structural zero-deadlock invariant: every live transaction's
        // held locks are exactly the ascending prefix of its sorted
        // declared set, at the declared modes. A waiter therefore waits
        // on a file strictly above everything it holds, and no wait-for
        // cycle can close.
        for (&id, &k) in &self.acquired {
            let order = &self.order[&id];
            let held = self.table.files_of(id);
            if held.len() != k {
                return Some(Err(format!(
                    "{id:?} holds {} locks but its acquired prefix is {k}",
                    held.len()
                )));
            }
            for (i, &(file, mode)) in order[..k].iter().enumerate() {
                if held[i] != file {
                    return Some(Err(format!(
                        "{id:?} holdings diverge from the SLW prefix at {i}: \
                         held {:?}, declared {file:?}",
                        held[i]
                    )));
                }
                if !self.table.holds_sufficient(id, file, mode) {
                    return Some(Err(format!(
                        "{id:?} holds {file:?} below its declared mode {mode:?}"
                    )));
                }
            }
        }
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }
    fn brook() -> Brook {
        Brook::new(Duration::from_millis(1))
    }

    /// The textbook deadlock: T1 takes A then B, T2 takes B then A. The
    /// total order forces both to acquire A first, so the second txn
    /// blocks up front instead of deadlocking halfway.
    #[test]
    fn opposite_acquisition_orders_cannot_deadlock() {
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        // T2's first step is on F1, but the order makes it acquire F0
        // first — held by T1, so it blocks holding nothing.
        let o = s.request(t(2), 0);
        assert_eq!(o.decision, ReqDecision::Blocked);
        assert_eq!(o.reason, Some("slw-order"));
        assert!(s.table.files_of(t(2)).is_empty());
        assert_eq!(s.audit_invariant(), Some(Ok(())));
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Granted);
        s.commit(t(2));
    }

    #[test]
    fn locks_are_acquired_at_strongest_declared_mode() {
        // S then X on the same file: Brook takes X up front, so the
        // upgrade deadlock (two sharers both upgrading) cannot occur.
        let mut s = brook();
        let spec = BatchSpec::new(vec![
            Step::read(f(0), LockMode::Shared, 1.0),
            Step::write(f(0), 1.0),
        ]);
        s.register(t(1), spec.clone());
        s.register(t(2), spec);
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.table.mode_held(t(1), f(0)), Some(LockMode::Exclusive));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn prefix_covers_later_out_of_order_steps() {
        // Steps visit F2 then F0; the prefix through F2 includes F0, so
        // the later step on F0 is already covered.
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(2), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.table.files_of(t(1)), &[f(0), f(2)]);
        assert_eq!(s.audit_invariant(), Some(Ok(())));
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn blocked_waiter_resumes_after_release() {
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        // T2 acquires F0 fine, then blocks on F1 holding its prefix.
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Blocked);
        assert_eq!(s.table.files_of(t(2)), &[f(0)]);
        assert_eq!(s.audit_invariant(), Some(Ok(())));
        let released = s.commit(t(1));
        assert_eq!(released, vec![f(1)]);
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn constraints_follow_the_lock_order() {
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        s.commit(t(2));
        let cs = s.drain_constraints();
        assert!(bds_wtpg::oracle::is_serializable(&cs), "{cs:?}");
        assert!(cs.contains(&(t(1), t(2))));
    }

    #[test]
    fn abort_resets_the_prefix_for_the_restart() {
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.try_start(t(1));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        let released = s.abort(t(1));
        assert_eq!(released, vec![f(0)]);
        assert_eq!(s.live_count(), 0);
        // Restart: the registration survived, the prefix starts over.
        s.try_start(t(1));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        s.commit(t(1));
        assert_eq!(s.telemetry().locks_held, 0);
    }

    #[test]
    fn forget_leaves_no_state_behind() {
        let mut s = brook();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        let _ = s.request(t(1), 0);
        let mut rel = Vec::new();
        s.forget(t(1), &mut rel);
        assert_eq!(rel, vec![f(0)]);
        let tel = s.telemetry();
        assert_eq!(tel.locks_held, 0);
        assert_eq!(tel.wtpg_nodes, 0);
        assert_eq!(tel.wtpg_slots - tel.wtpg_free, 0);
        assert!(s.order.is_empty());
        assert!(s.acquired.is_empty());
    }

    /// Randomized structural fuzz: drive many conflicting transactions
    /// through admission/request/commit in a random interleaving and
    /// re-check the prefix invariant after every single call.
    #[test]
    fn prefix_invariant_holds_under_random_interleavings() {
        use bds_des::rng::Xoshiro256;
        for case in 0..50u64 {
            let mut rng = Xoshiro256::seed_from_u64(0xB200C ^ case.wrapping_mul(0x9E37_79B9));
            let mut s = brook();
            let n = 8u64;
            let mut next_step: Vec<usize> = vec![0; n as usize + 1];
            for i in 1..=n {
                let mut steps = Vec::new();
                for _ in 0..(rng.next_range(3) + 1) {
                    let file = f(rng.next_range(4) as u32);
                    if rng.next_range(2) == 0 {
                        steps.push(Step::read(file, LockMode::Shared, 1.0));
                    } else {
                        steps.push(w(file, 1.0));
                    }
                }
                s.register(t(i), BatchSpec::new(steps));
                s.try_start(t(i));
            }
            let mut done = 0;
            let mut spins = 0;
            while done < n && spins < 10_000 {
                spins += 1;
                let i = rng.next_range(n) + 1;
                if !s.core.is_live(t(i)) {
                    continue;
                }
                let len = s.core.spec(t(i)).len();
                let step = next_step[i as usize];
                if step >= len {
                    s.commit(t(i));
                    done += 1;
                } else if s.request(t(i), step).decision == ReqDecision::Granted {
                    s.step_complete(t(i), step);
                    next_step[i as usize] += 1;
                }
                if let Some(Err(e)) = s.audit_invariant() {
                    panic!("case {case}: {e}");
                }
            }
            // Deadlock-freedom in action: random scheduling always
            // drains the whole set (no livelock, no stuck cycle).
            assert_eq!(done, n, "case {case}: transactions wedged");
            let cs = s.drain_constraints();
            assert!(bds_wtpg::oracle::is_serializable(&cs), "case {case}");
        }
    }
}

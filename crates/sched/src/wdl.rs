//! WDL — Wait-Depth Limited locking (extension beyond the paper).
//!
//! A restart-oriented protocol in the spirit of Franaszek & Robinson's
//! wait-depth limitation: a lock request conflicting with held locks may
//! **block only if no conflicting holder is itself waiting** (so blocking
//! chains never exceed depth 1); otherwise the *requester restarts* —
//! releasing everything it holds and redoing its I/O from the first step.
//!
//! This gives an interesting contrast to the paper's six schedulers: it
//! shares ASL/GOW/LOW's freedom from long blocking chains, but pays for
//! it with rollbacks like OPT. The ablation experiments
//! (`batchsched::experiments::ablations`) show it landing between the
//! two regimes, which is exactly the paper's point — for *batch*
//! transactions, redoing bulk I/O is so expensive that avoiding
//! rollback (requirement 3) matters as much as avoiding blocking
//! chains (requirement 1).

use crate::lock_table::LockTable;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// The WDL scheduler (wait depth limited to 1).
#[derive(Debug, Default)]
pub struct Wdl {
    table: LockTable,
    specs: BTreeMap<TxnId, BatchSpec>,
    live: BTreeSet<TxnId>,
    /// Transactions with an unsatisfied lock request (they are waiting —
    /// blocking behind them would create a depth-2 chain).
    waiting: BTreeSet<TxnId>,
    check_time: Duration,
    restarts: u64,
}

impl Wdl {
    /// Create; `check_time` is the CPU charge per conflict check (we
    /// reuse the paper's `ddtime`, as the check is of the same nature as
    /// C2PL's deadlock test).
    pub fn new(check_time: Duration) -> Self {
        Wdl {
            check_time,
            ..Wdl::default()
        }
    }

    /// Restarts the scheduler has demanded so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

impl Scheduler for Wdl {
    fn name(&self) -> &'static str {
        "WDL"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.live.insert(id);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.specs[&id].steps[step];
        if self.table.can_grant(id, s.file, s.mode) {
            self.table.grant(id, s.file, s.mode);
            self.waiting.remove(&id);
            return Outcome::costed(ReqDecision::Granted, self.check_time);
        }
        let any_holder_waiting = self
            .table
            .conflicting_holders_iter(id, s.file, s.mode)
            .any(|h| self.waiting.contains(&h));
        if any_holder_waiting {
            // Waiting here would create a chain of depth ≥ 2: restart.
            self.restarts += 1;
            self.waiting.remove(&id);
            Outcome::costed(ReqDecision::Restart, self.check_time).because("wait-depth")
        } else {
            self.waiting.insert(id);
            Outcome::costed(ReqDecision::Blocked, self.check_time).because("lock-held")
        }
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.waiting.remove(&id);
        self.specs.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.waiting.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.waiting.remove(&id);
        self.specs.remove(&id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.live.len()
    }

    fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            ..SchedTelemetry::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn wdl() -> Wdl {
        Wdl::new(Duration::from_millis(1))
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn first_waiter_blocks() {
        let mut s = wdl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.restarts(), 0);
    }

    #[test]
    fn depth_two_wait_restarts() {
        // T1 holds F0 and waits on F1 (held by T0). T2 wants F0: its
        // holder T1 is waiting — depth would be 2 — so T2 restarts.
        let mut s = wdl();
        s.register(t(0), BatchSpec::new(vec![w(f(1), 1.0)]));
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        for i in 0..=2 {
            s.try_start(t(i));
        }
        assert_eq!(s.request(t(0), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Blocked);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Restart);
        assert_eq!(s.restarts(), 1);
    }

    #[test]
    fn deadlock_is_broken_by_restart() {
        // The classic two-txn deadlock pattern: with WDL the second
        // waiter restarts instead of closing the cycle.
        let mut s = wdl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Blocked);
        // T2 wants F0 whose holder T1 is waiting: restart T2, which
        // releases F1 and unblocks T1.
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Restart);
        let released = s.abort(t(2));
        assert_eq!(released, vec![f(1)]);
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn grant_clears_waiting_state() {
        let mut s = wdl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        let _ = s.request(t(1), 0);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        // T2 is no longer waiting: newcomers may block behind it.
        s.register(t(3), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(3));
        assert_eq!(s.request(t(3), 0).decision, ReqDecision::Blocked);
    }
}

//! NODC — NO Data Contention.
//!
//! Grants any lock at any time, so only *resource* contention remains.
//! The paper uses it as the performance upper bound (its saturation
//! point is the machine's raw capacity: ~1.04 TPS for Pattern 1 on 8
//! nodes). NODC produces non-serializable schedules by design.

use crate::{Outcome, ReqDecision, Scheduler, StartDecision};
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// The NODC scheduler.
#[derive(Debug, Default)]
pub struct Nodc {
    specs: BTreeMap<TxnId, BatchSpec>,
    /// Admitted (started, not yet finished) transactions. Kept apart
    /// from `specs`: under an MPL cap the engine gates admissions on
    /// `live_count`, and counting registered-but-queued transactions
    /// wedges the gate permanently once the backlog exceeds the cap.
    live: BTreeSet<TxnId>,
}

impl Nodc {
    /// Create the scheduler.
    pub fn new() -> Self {
        Nodc::default()
    }
}

impl Scheduler for Nodc {
    fn name(&self) -> &'static str {
        "NODC"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.live.insert(id);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, _id: TxnId, _step: usize) -> Outcome<ReqDecision> {
        Outcome::free(ReqDecision::Granted)
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        self.specs.remove(&id);
        self.live.remove(&id);
        Vec::new()
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        // The registration stays so the transaction can restart.
        self.live.remove(&id);
        Vec::new()
    }

    fn forget(&mut self, id: TxnId, _released: &mut Vec<FileId>) {
        // A permanent kill drops the registration too.
        self.specs.remove(&id);
        self.live.remove(&id);
    }

    fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    #[test]
    fn everything_is_granted() {
        let mut s = Nodc::new();
        let spec = BatchSpec::new(vec![Step::write(FileId(0), 1.0)]);
        for i in 0..10 {
            s.register(TxnId(i), spec.clone());
            assert_eq!(s.try_start(TxnId(i)).decision, StartDecision::Admit);
            assert_eq!(s.request(TxnId(i), 0).decision, ReqDecision::Granted);
        }
        assert_eq!(s.live_count(), 10);
        assert!(s.validate(TxnId(0)).decision);
        assert!(s.commit(TxnId(0)).is_empty());
        assert_eq!(s.live_count(), 9);
    }

    #[test]
    fn decisions_cost_nothing() {
        let mut s = Nodc::new();
        s.register(TxnId(1), BatchSpec::new(vec![Step::write(FileId(0), 1.0)]));
        assert!(s.try_start(TxnId(1)).cpu.is_zero());
        assert!(s.request(TxnId(1), 0).cpu.is_zero());
    }
}

//! LOW — Locally-Optimized WTPG scheduler (the paper's Fig. 7; called
//! the K-conflict WTPG scheduler in \[13\]).
//!
//! LOW relaxes GOW's chain-form constraint: any conflict graph is
//! allowed as long as no access-declaration conflicts with more than
//! `K` other declarations on the same file (the paper evaluates K = 2).
//! On a lock request `q` it computes the *local* contention estimate
//! `E(q)` — the WTPG critical path after tentatively granting `q`
//! (deadlock ⇒ ∞) — and grants `q` only if `E(q) ≤ E(p)` for every
//! conflicting declaration `p` on the same file; otherwise the lock
//! should rather go to the transaction declaring the cheaper `p`, and
//! `q` is delayed. Each `E(·)` evaluation costs `kwtpgtime`.

use crate::lock_table::LockTable;
use crate::wtpg_core::WtpgCore;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{BatchSpec, FileId, LockMode};
use bds_wtpg::{eq, paths, TxnId};

/// The LOW scheduler.
#[derive(Debug, Default)]
pub struct Low {
    core: WtpgCore,
    table: LockTable,
    k: u32,
    kwtpg_time: Duration,
    k_refusals: u64,
    /// Reused trial graph + traversal marks for `E(·)` evaluations.
    scratch: eq::EqScratch,
    /// Reused traversal state for post-grant propagation.
    ps: paths::Scratch,
    /// Scratch: orientations implied by granting the request `q`.
    orient_q: Vec<(TxnId, TxnId)>,
    /// Scratch: orientations implied by granting a competitor `p`.
    orient_p: Vec<(TxnId, TxnId)>,
}

impl Low {
    /// Create with the conflict bound `K` (paper: 2) and `kwtpgtime`
    /// (10 ms) per `E(·)` evaluation.
    pub fn new(k: u32, kwtpg_time: Duration) -> Self {
        Low {
            k,
            kwtpg_time,
            ..Low::default()
        }
    }

    /// Number of K-conflict admission refusals so far.
    pub fn k_refusals(&self) -> u64 {
        self.k_refusals
    }

    /// Would admitting `id` violate the K-conflict bound for any
    /// declaration (the candidate's or a live transaction's)?
    fn violates_k(&self, id: TxnId) -> bool {
        let spec = self.core.spec(id);
        for (file, mode) in spec.lock_set() {
            let mut count = 0u32;
            for other in self.core.graph.txns() {
                if other == id {
                    continue;
                }
                if let Some(m) = self.core.spec(other).mode_on(file) {
                    if !m.compatible(mode) {
                        count += 1;
                        // The other side's declaration also gains a
                        // conflicting partner; its own count must stay
                        // within K too.
                        let other_count =
                            self.core.conflicting_declarer_count(other, file, m) as u32 + 1;
                        if other_count > self.k {
                            return true;
                        }
                    }
                }
            }
            if count > self.k {
                return true;
            }
        }
        false
    }

    /// Fill `out` with the orientations implied by granting a lock of
    /// `mode` on `file` to `who` (toward every conflicting declarer,
    /// decided or not — `eval_grant` maps decided-adverse pairs to ∞).
    fn fill_grant_orientations(
        core: &WtpgCore,
        who: TxnId,
        file: FileId,
        mode: LockMode,
        out: &mut Vec<(TxnId, TxnId)>,
    ) {
        out.clear();
        out.extend(
            core.conflicting_declarers_iter(who, file, mode)
                .map(|other| (who, other)),
        );
    }
}

impl Scheduler for Low {
    fn name(&self) -> &'static str {
        "LOW"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        self.core.register(id, spec);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        if self.violates_k(id) {
            self.k_refusals += 1;
            return Outcome::free(StartDecision::Refuse).because("k-conflict");
        }
        self.core.add_live(id, &self.table);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.core.spec(id).steps[step];
        // Phase 1: conflicts with the current lock held on the file.
        if !self.table.can_grant(id, s.file, s.mode) {
            return Outcome::free(ReqDecision::Blocked).because("lock-held");
        }
        if self.core.conflicting_declarer_count(id, s.file, s.mode) == 0 {
            // No contention on this file at all: grant for free.
            self.table.grant(id, s.file, s.mode);
            return Outcome::free(ReqDecision::Granted);
        }
        // Phase 2: E(q).
        let mut cpu = self.kwtpg_time;
        Self::fill_grant_orientations(&self.core, id, s.file, s.mode, &mut self.orient_q);
        let e_q = eq::eval_grant_with(&mut self.scratch, &self.core.graph, &self.orient_q);
        if e_q.is_infinite() {
            // Granting q would deadlock (or contradict a decided order).
            return Outcome::costed(ReqDecision::Delayed, cpu).because("deadlock-risk");
        }
        // Phase 3: E(p) for each conflicting declaration p on the file,
        // capped at K competitors (deterministically: the first K in
        // declaration order — they are the requester's own orientation
        // targets, `(id, other)` pairs of `orient_q`).
        for i in 0..self.orient_q.len().min(self.k as usize) {
            let (_, other) = self.orient_q[i];
            // Skip declarations whose order against `id` is already
            // decided `id → other` — they can no longer win the lock
            // first.
            if self.core.graph.is_decided(id, other) {
                continue;
            }
            let other_mode = self
                .core
                .spec(other)
                .mode_on(s.file)
                .expect("declarer must declare the file");
            Self::fill_grant_orientations(
                &self.core,
                other,
                s.file,
                other_mode,
                &mut self.orient_p,
            );
            let e_p = eq::eval_grant_with(&mut self.scratch, &self.core.graph, &self.orient_p);
            cpu += self.kwtpg_time;
            if e_q > e_p + 1e-9 {
                return Outcome::costed(ReqDecision::Delayed, cpu).because("E(q)>E(p)");
            }
        }
        // Phase 4: grant, orient, propagate forced pairs (Fig. 6).
        self.table.grant(id, s.file, s.mode);
        {
            // Keep only the still-undecided orientations, in order.
            let graph = &self.core.graph;
            self.orient_q
                .retain(|&(from, to)| !graph.is_decided(from, to));
        }
        self.core.apply_orientations(&self.orient_q);
        self.ps
            .propagate(&mut self.core.graph)
            .expect("E(q) was finite, propagation cannot contradict");
        Outcome::costed(ReqDecision::Granted, cpu)
    }

    fn step_complete(&mut self, id: TxnId, step: usize) {
        self.core.step_complete(id, step);
    }

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove(id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove_live_only(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        // Permanent kill: drop the WTPG slot, spec and every lock row.
        self.core.remove(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.core.live_count()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.core.drain_constraints()
    }

    fn telemetry(&self) -> SchedTelemetry {
        let (wtpg_slots, wtpg_free) = self.core.graph.arena_stats();
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            wtpg_nodes: self.core.graph.len(),
            wtpg_edges: self.core.graph.edges().count(),
            wtpg_slots,
            wtpg_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn low(k: u32) -> Low {
        Low::new(k, Duration::from_millis(10))
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn k_limit_bounds_admission() {
        let mut s = low(2);
        for i in 1..=4 {
            s.register(t(i), BatchSpec::new(vec![w(f(0), 1.0)]));
        }
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(3)).decision, StartDecision::Admit);
        // A fourth X-declarer would give everyone 3 conflicting
        // declarations (> K = 2).
        assert_eq!(s.try_start(t(4)).decision, StartDecision::Refuse);
        assert_eq!(s.k_refusals(), 1);
    }

    #[test]
    fn k1_still_allows_non_chain_graphs() {
        // The paper: "Even at K=1, LOW allows a non chain-form WTPG."
        // A star: center conflicts once per file with three leaves, each
        // on a different file, so every declaration has exactly 1
        // conflict.
        let mut s = low(1);
        s.register(
            t(1),
            BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0), w(f(2), 1.0)]),
        );
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(3), BatchSpec::new(vec![w(f(1), 1.0)]));
        s.register(t(4), BatchSpec::new(vec![w(f(2), 1.0)]));
        for i in 1..=4 {
            assert_eq!(
                s.try_start(t(i)).decision,
                StartDecision::Admit,
                "txn {i} refused"
            );
        }
        // Degree of T1 in the conflict graph is 3 — not chain-form.
        assert_eq!(s.core.graph.degree(t(1)), 3);
    }

    #[test]
    fn cheaper_competitor_wins_the_lock() {
        let mut s = low(2);
        // T1: expensive remaining work after taking F0; T2 cheap.
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 9.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        // E(T1 grant): orient T1→T2: critical ≈ t0(T1) + w(T1→T2)
        //   = 10 + 1 = 11.
        // E(T2 grant): orient T2→T1: critical ≈ t0(T2) + w(T2→T1)
        //   = 1 + 10 = 11.
        // Tie → both may be granted; make T1 strictly worse by raising
        // its remaining demand.
        // (With these numbers E(q)=E(p): LOW grants q on ≤.)
        let o = s.request(t(1), 0);
        assert_eq!(o.decision, ReqDecision::Granted);
        // Each evaluation costed kwtpgtime: E(q) + one E(p).
        assert_eq!(o.cpu, Duration::from_millis(20));
    }

    #[test]
    fn expensive_requester_is_delayed() {
        let mut s = low(2);
        // T1's grant leads to a longer critical path than granting T2.
        s.register(t(1), BatchSpec::new(vec![w(f(2), 9.0), w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        // Weights: w(T1→T2) = 1 (T2 from step 0), w(T2→T1) = 1 (T1 from
        // its conflicting step 1). t0: T1 = 10, T2 = 1.
        // E(T1 grant): T1→T2 path = 10 + 1 = 11.
        // E(T2 grant): T2→T1 path = 1 + 1 = 2.
        // E(q) = 11 > E(p) = 2 → delay T1's request.
        let o = s.request(t(1), 1);
        assert_eq!(o.decision, ReqDecision::Delayed);
        // T2's own request is granted (E roles swap).
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
    }

    #[test]
    fn blocked_when_lock_held() {
        let mut s = low(2);
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        s.commit(t(1));
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
    }

    #[test]
    fn deadlock_risk_is_delayed() {
        let mut s = low(2);
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        // T2 requesting F1 would orient T2→T1 against decided T1→T2.
        let o = s.request(t(2), 0);
        assert_eq!(o.decision, ReqDecision::Delayed);
        // Only E(q) was computed before the ∞ bail-out.
        assert_eq!(o.cpu, Duration::from_millis(10));
    }

    #[test]
    fn serializable_constraints() {
        let mut s = low(2);
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(2), 1.0)]));
        s.register(t(3), BatchSpec::new(vec![w(f(2), 1.0)]));
        for i in 1..=3 {
            s.try_start(t(i));
        }
        let _ = s.request(t(1), 0);
        let _ = s.request(t(2), 0);
        let _ = s.request(t(1), 1);
        let _ = s.request(t(3), 0);
        s.commit(t(1));
        s.commit(t(2));
        s.commit(t(3));
        let cs = s.drain_constraints();
        assert!(bds_wtpg::oracle::is_serializable(&cs), "{cs:?}");
    }
}

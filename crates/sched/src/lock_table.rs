//! File-granularity S/X lock table.
//!
//! The control node keeps one lock per file (the paper's locking
//! granule). Locks are held until commitment (strictness); upgrades from
//! S to X are permitted when the requester is the sole holder.
//!
//! The table implements *state*, not *policy*: whether a conflicting
//! request blocks, is delayed, or aborts is each scheduler's decision.
//!
//! Storage is dense: one holder row per `FileId`, indexed by the id's
//! integer value, plus a per-transaction holdings list. Rows persist
//! (empty) across grant/release cycles and retired per-transaction lists
//! are recycled, so the steady-state grant/release hot path performs no
//! allocation. Schedulers that only *read* conflict state borrow it via
//! [`LockTable::holders`] / [`LockTable::conflicting_holders_iter`]
//! instead of collecting.

use bds_workload::{FileId, LockMode};
use bds_wtpg::TxnId;

/// The lock table.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    /// `files[f]` = current holders of `FileId(f)`, sorted by txn id.
    files: Vec<Vec<(TxnId, LockMode)>>,
    /// Per-transaction holdings, sorted by txn id; inner lists sorted by
    /// file id (matching the ascending release order of the original
    /// `BTreeSet`-backed table).
    by_txn: Vec<(TxnId, Vec<FileId>)>,
    /// Retired holdings lists, recycled on a transaction's first grant.
    spare: Vec<Vec<FileId>>,
    /// Total (txn, file) entries, maintained incrementally.
    total: usize,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    fn row(&self, file: FileId) -> &[(TxnId, LockMode)] {
        self.files.get(file.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// The mode `txn` currently holds on `file`, if any.
    pub fn mode_held(&self, txn: TxnId, file: FileId) -> Option<LockMode> {
        let row = self.row(file);
        row.binary_search_by_key(&txn, |&(t, _)| t)
            .ok()
            .map(|i| row[i].1)
    }

    /// Does `txn` hold a lock on `file` covering `mode`?
    pub fn holds_sufficient(&self, txn: TxnId, file: FileId, mode: LockMode) -> bool {
        self.mode_held(txn, file).is_some_and(|m| m.covers(mode))
    }

    /// Can `txn` be granted `mode` on `file` right now? True when every
    /// *other* holder is compatible (so an S→X upgrade succeeds iff the
    /// requester is the only holder).
    pub fn can_grant(&self, txn: TxnId, file: FileId, mode: LockMode) -> bool {
        self.row(file)
            .iter()
            .all(|&(t, m)| t == txn || m.compatible(mode))
    }

    /// Grant `mode` on `file` to `txn` (upgrading if it already holds a
    /// weaker mode).
    ///
    /// # Panics
    /// Panics if the grant is incompatible — callers must check
    /// [`LockTable::can_grant`] first.
    pub fn grant(&mut self, txn: TxnId, file: FileId, mode: LockMode) {
        assert!(
            self.can_grant(txn, file, mode),
            "incompatible grant: {txn:?} wants {mode:?} on {file:?}"
        );
        let idx = file.0 as usize;
        if idx >= self.files.len() {
            self.files.resize_with(idx + 1, Vec::new);
        }
        let row = &mut self.files[idx];
        match row.binary_search_by_key(&txn, |&(t, _)| t) {
            Ok(i) => {
                let held = &mut row[i].1;
                *held = (*held).max(mode);
            }
            Err(i) => {
                row.insert(i, (txn, mode));
                self.total += 1;
                match self.by_txn.binary_search_by_key(&txn, |&(t, _)| t) {
                    Ok(j) => {
                        let held = &mut self.by_txn[j].1;
                        if let Err(k) = held.binary_search(&file) {
                            held.insert(k, file);
                        }
                    }
                    Err(j) => {
                        let mut held = self.spare.pop().unwrap_or_default();
                        held.push(file);
                        self.by_txn.insert(j, (txn, held));
                    }
                }
            }
        }
    }

    /// Release every lock `txn` holds, appending the affected files to
    /// `out` in ascending file order. The caller owns (and clears) the
    /// buffer; nothing is appended when `txn` holds no locks.
    pub fn release_all_into(&mut self, txn: TxnId, out: &mut Vec<FileId>) {
        let Ok(j) = self.by_txn.binary_search_by_key(&txn, |&(t, _)| t) else {
            return;
        };
        let (_, mut held) = self.by_txn.remove(j);
        for &file in &held {
            let row = &mut self.files[file.0 as usize];
            if let Ok(i) = row.binary_search_by_key(&txn, |&(t, _)| t) {
                row.remove(i);
                self.total -= 1;
            }
            out.push(file);
        }
        held.clear();
        self.spare.push(held);
    }

    /// Release every lock `txn` holds; returns the affected files.
    /// Allocating convenience over [`LockTable::release_all_into`].
    pub fn release_all(&mut self, txn: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.release_all_into(txn, &mut out);
        out
    }

    /// Current holders of `file` with their modes, in id order (borrowed
    /// — no allocation).
    pub fn holders(&self, file: FileId) -> &[(TxnId, LockMode)] {
        self.row(file)
    }

    /// Holders of `file` whose mode conflicts with `mode`, excluding
    /// `txn` itself, in id order — borrowed iterator, no allocation.
    pub fn conflicting_holders_iter(
        &self,
        txn: TxnId,
        file: FileId,
        mode: LockMode,
    ) -> impl Iterator<Item = TxnId> + '_ {
        self.row(file)
            .iter()
            .filter(move |&&(t, m)| t != txn && !m.compatible(mode))
            .map(|&(t, _)| t)
    }

    /// Holders of `file` whose mode conflicts with `mode`, excluding
    /// `txn` itself. Allocating convenience over
    /// [`LockTable::conflicting_holders_iter`].
    pub fn conflicting_holders(&self, txn: TxnId, file: FileId, mode: LockMode) -> Vec<TxnId> {
        self.conflicting_holders_iter(txn, file, mode).collect()
    }

    /// Files held by `txn`, in ascending file order (borrowed).
    pub fn files_of(&self, txn: TxnId) -> &[FileId] {
        match self.by_txn.binary_search_by_key(&txn, |&(t, _)| t) {
            Ok(j) => &self.by_txn[j].1,
            Err(_) => &[],
        }
    }

    /// Total number of (txn, file) lock entries.
    pub fn total_locks(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        assert!(lt.can_grant(t(1), f(0), Shared));
        lt.grant(t(1), f(0), Shared);
        assert!(lt.can_grant(t(2), f(0), Shared));
        lt.grant(t(2), f(0), Shared);
        assert_eq!(lt.holders(f(0)).len(), 2);
        assert!(!lt.can_grant(t(3), f(0), Exclusive));
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        assert!(!lt.can_grant(t(2), f(0), Shared));
        assert!(!lt.can_grant(t(2), f(0), Exclusive));
        // The holder itself is always compatible with its own lock.
        assert!(lt.can_grant(t(1), f(0), Exclusive));
        assert_eq!(lt.conflicting_holders(t(2), f(0), Shared), vec![t(1)]);
        assert!(lt.conflicting_holders(t(1), f(0), Exclusive).is_empty());
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Shared);
        assert!(lt.can_grant(t(1), f(0), Exclusive));
        lt.grant(t(1), f(0), Exclusive);
        assert_eq!(lt.mode_held(t(1), f(0)), Some(Exclusive));
        assert!(lt.holds_sufficient(t(1), f(0), Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Shared);
        lt.grant(t(2), f(0), Shared);
        assert!(!lt.can_grant(t(1), f(0), Exclusive));
    }

    #[test]
    fn release_all_frees_files() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(1), f(3), Shared);
        lt.grant(t(2), f(3), Shared);
        let mut released = lt.release_all(t(1));
        released.sort_unstable();
        assert_eq!(released, vec![f(0), f(3)]);
        assert!(lt.can_grant(t(9), f(0), Exclusive));
        // t2 still shares f3.
        assert!(!lt.can_grant(t(9), f(3), Exclusive));
        assert_eq!(lt.total_locks(), 1);
        assert!(lt.release_all(t(1)).is_empty(), "double release is a no-op");
    }

    #[test]
    fn grant_is_idempotent_at_same_mode() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(1), f(0), Exclusive);
        assert_eq!(lt.total_locks(), 1);
        // Re-granting weaker keeps the stronger mode.
        lt.grant(t(1), f(0), Shared);
        assert_eq!(lt.mode_held(t(1), f(0)), Some(Exclusive));
    }

    #[test]
    #[should_panic(expected = "incompatible grant")]
    fn incompatible_grant_panics() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(2), f(0), Shared);
    }

    #[test]
    fn files_of_lists_holdings() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(2), Shared);
        lt.grant(t(1), f(7), Exclusive);
        assert_eq!(lt.files_of(t(1)), vec![f(2), f(7)]);
        assert!(lt.files_of(t(2)).is_empty());
    }

    #[test]
    fn release_all_into_appends_in_file_order() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(9), Exclusive);
        lt.grant(t(1), f(2), Shared);
        lt.grant(t(1), f(5), Shared);
        let mut out = Vec::new();
        lt.release_all_into(t(1), &mut out);
        assert_eq!(out, vec![f(2), f(5), f(9)]);
        // Appends (does not clear): a second txn's release accumulates.
        lt.grant(t(2), f(0), Exclusive);
        lt.release_all_into(t(2), &mut out);
        assert_eq!(out, vec![f(2), f(5), f(9), f(0)]);
        assert_eq!(lt.total_locks(), 0);
    }

    #[test]
    fn rows_are_reused_after_release() {
        let mut lt = LockTable::new();
        for round in 0..3u64 {
            let id = t(round + 1);
            lt.grant(id, f(4), Exclusive);
            assert_eq!(lt.holders(f(4)), &[(id, Exclusive)]);
            assert_eq!(lt.release_all(id), vec![f(4)]);
        }
        assert!(lt.holders(f(4)).is_empty());
        assert_eq!(lt.total_locks(), 0);
    }

    #[test]
    fn conflicting_holders_iter_matches_vec() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Shared);
        lt.grant(t(3), f(0), Shared);
        lt.grant(t(5), f(0), Shared);
        let from_iter: Vec<TxnId> = lt.conflicting_holders_iter(t(3), f(0), Exclusive).collect();
        assert_eq!(from_iter, lt.conflicting_holders(t(3), f(0), Exclusive));
        assert_eq!(from_iter, vec![t(1), t(5)]);
    }
}

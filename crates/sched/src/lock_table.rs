//! File-granularity S/X lock table.
//!
//! The control node keeps one lock per file (the paper's locking
//! granule). Locks are held until commitment (strictness); upgrades from
//! S to X are permitted when the requester is the sole holder.
//!
//! The table implements *state*, not *policy*: whether a conflicting
//! request blocks, is delayed, or aborts is each scheduler's decision.

use bds_workload::{FileId, LockMode};
use bds_wtpg::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// The lock table.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    holders: BTreeMap<FileId, BTreeMap<TxnId, LockMode>>,
    by_txn: BTreeMap<TxnId, BTreeSet<FileId>>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// The mode `txn` currently holds on `file`, if any.
    pub fn mode_held(&self, txn: TxnId, file: FileId) -> Option<LockMode> {
        self.holders.get(&file).and_then(|h| h.get(&txn)).copied()
    }

    /// Does `txn` hold a lock on `file` covering `mode`?
    pub fn holds_sufficient(&self, txn: TxnId, file: FileId, mode: LockMode) -> bool {
        self.mode_held(txn, file).is_some_and(|m| m.covers(mode))
    }

    /// Can `txn` be granted `mode` on `file` right now? True when every
    /// *other* holder is compatible (so an S→X upgrade succeeds iff the
    /// requester is the only holder).
    pub fn can_grant(&self, txn: TxnId, file: FileId, mode: LockMode) -> bool {
        match self.holders.get(&file) {
            None => true,
            Some(h) => h.iter().all(|(&t, &m)| t == txn || m.compatible(mode)),
        }
    }

    /// Grant `mode` on `file` to `txn` (upgrading if it already holds a
    /// weaker mode).
    ///
    /// # Panics
    /// Panics if the grant is incompatible — callers must check
    /// [`LockTable::can_grant`] first.
    pub fn grant(&mut self, txn: TxnId, file: FileId, mode: LockMode) {
        assert!(
            self.can_grant(txn, file, mode),
            "incompatible grant: {txn:?} wants {mode:?} on {file:?}"
        );
        let h = self.holders.entry(file).or_default();
        let entry = h.entry(txn).or_insert(mode);
        *entry = entry.max(mode);
        self.by_txn.entry(txn).or_default().insert(file);
    }

    /// Release every lock `txn` holds; returns the affected files.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<FileId> {
        let files = self.by_txn.remove(&txn).unwrap_or_default();
        let mut released = Vec::with_capacity(files.len());
        for file in files {
            if let Some(h) = self.holders.get_mut(&file) {
                h.remove(&txn);
                if h.is_empty() {
                    self.holders.remove(&file);
                }
            }
            released.push(file);
        }
        released
    }

    /// Current holders of `file` with their modes, in id order.
    pub fn holders(&self, file: FileId) -> Vec<(TxnId, LockMode)> {
        self.holders
            .get(&file)
            .map(|h| h.iter().map(|(&t, &m)| (t, m)).collect())
            .unwrap_or_default()
    }

    /// Holders of `file` whose mode conflicts with `mode`, excluding
    /// `txn` itself.
    pub fn conflicting_holders(&self, txn: TxnId, file: FileId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .get(&file)
            .map(|h| {
                h.iter()
                    .filter(|(&t, &m)| t != txn && !m.compatible(mode))
                    .map(|(&t, _)| t)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Files held by `txn`.
    pub fn files_of(&self, txn: TxnId) -> Vec<FileId> {
        self.by_txn
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Total number of (txn, file) lock entries.
    pub fn total_locks(&self) -> usize {
        self.holders.values().map(|h| h.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        assert!(lt.can_grant(t(1), f(0), Shared));
        lt.grant(t(1), f(0), Shared);
        assert!(lt.can_grant(t(2), f(0), Shared));
        lt.grant(t(2), f(0), Shared);
        assert_eq!(lt.holders(f(0)).len(), 2);
        assert!(!lt.can_grant(t(3), f(0), Exclusive));
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        assert!(!lt.can_grant(t(2), f(0), Shared));
        assert!(!lt.can_grant(t(2), f(0), Exclusive));
        // The holder itself is always compatible with its own lock.
        assert!(lt.can_grant(t(1), f(0), Exclusive));
        assert_eq!(lt.conflicting_holders(t(2), f(0), Shared), vec![t(1)]);
        assert!(lt.conflicting_holders(t(1), f(0), Exclusive).is_empty());
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Shared);
        assert!(lt.can_grant(t(1), f(0), Exclusive));
        lt.grant(t(1), f(0), Exclusive);
        assert_eq!(lt.mode_held(t(1), f(0)), Some(Exclusive));
        assert!(lt.holds_sufficient(t(1), f(0), Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Shared);
        lt.grant(t(2), f(0), Shared);
        assert!(!lt.can_grant(t(1), f(0), Exclusive));
    }

    #[test]
    fn release_all_frees_files() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(1), f(3), Shared);
        lt.grant(t(2), f(3), Shared);
        let mut released = lt.release_all(t(1));
        released.sort_unstable();
        assert_eq!(released, vec![f(0), f(3)]);
        assert!(lt.can_grant(t(9), f(0), Exclusive));
        // t2 still shares f3.
        assert!(!lt.can_grant(t(9), f(3), Exclusive));
        assert_eq!(lt.total_locks(), 1);
        assert!(lt.release_all(t(1)).is_empty(), "double release is a no-op");
    }

    #[test]
    fn grant_is_idempotent_at_same_mode() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(1), f(0), Exclusive);
        assert_eq!(lt.total_locks(), 1);
        // Re-granting weaker keeps the stronger mode.
        lt.grant(t(1), f(0), Shared);
        assert_eq!(lt.mode_held(t(1), f(0)), Some(Exclusive));
    }

    #[test]
    #[should_panic(expected = "incompatible grant")]
    fn incompatible_grant_panics() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(0), Exclusive);
        lt.grant(t(2), f(0), Shared);
    }

    #[test]
    fn files_of_lists_holdings() {
        let mut lt = LockTable::new();
        lt.grant(t(1), f(2), Shared);
        lt.grant(t(1), f(7), Exclusive);
        assert_eq!(lt.files_of(t(1)), vec![f(2), f(7)]);
        assert!(lt.files_of(t(2)).is_empty());
    }
}

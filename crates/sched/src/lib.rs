//! # bds-sched — concurrency-control schedulers for batch transactions
//!
//! The six schedulers evaluated by the paper, behind one [`Scheduler`]
//! trait driven by the `batchsched` simulator:
//!
//! | Scheduler | Module | Strategy |
//! |-----------|--------|----------|
//! | NODC | [`nodc`] | grant everything (performance upper bound) |
//! | ASL  | [`asl`]  | atomic static locking: all locks at start |
//! | C2PL | [`c2pl`] | cautious 2PL: block, but never toward deadlock |
//! | OPT  | [`opt`]  | optimistic: no locks, certify at commit |
//! | GOW  | [`gow`]  | chain-form WTPG, globally optimized order |
//! | LOW  | [`low`]  | K-conflict WTPG, locally optimized `E(q)` |
//!
//! (`C2PL+M` is C2PL run under a finite multiprogramming level; the
//! throttle lives in the simulator, not here.)
//!
//! Post-1991 extensions behind the same trait:
//!
//! | Scheduler | Module | Strategy |
//! |-----------|--------|----------|
//! | WDL   | [`wdl`]   | wait-depth-limited locking (restart-based) |
//! | DGCC  | [`dgcc`]  | window batching via conflict-graph coloring |
//! | BROOK | [`brook`] | deadlock-free 2PL via total lock ordering |
//!
//! Every scheduler decision reports the control-node CPU time it costs
//! (Table 1: `ddtime`, `kwtpgtime`, `chaintime`, `toptime`), which the
//! simulator serializes through the CN's FCFS CPU.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asl;
pub mod brook;
pub mod c2pl;
pub mod dgcc;
pub mod gow;
pub mod lock_table;
pub mod low;
pub mod nodc;
pub mod opt;
pub mod wdl;
pub mod wtpg_core;

use bds_des::time::Duration;
use bds_machine::CostBook;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;

/// Admission decision for a transaction attempting to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartDecision {
    /// The transaction becomes live and may issue its first lock request.
    Admit,
    /// The transaction cannot start now (GOW's chain-form abort, LOW's
    /// K-conflict refusal, ASL's unavailable lock set); it stays queued
    /// and is retried later.
    Refuse,
}

/// Decision on a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqDecision {
    /// Lock granted; the step may execute.
    Granted,
    /// Conflicts with a currently *held* lock; retry when the file's
    /// locks are released (the paper's "blocked").
    Blocked,
    /// Refused by scheduler policy (deadlock prediction, inconsistency
    /// with the optimal order, losing the `E(q)` comparison); retried
    /// after a delay or on a state change (the paper's "delayed").
    Delayed,
    /// The requesting transaction must abort and restart from its first
    /// step (used by restart-oriented protocols such as the wait-depth
    /// limited extension scheduler; none of the paper's six locking
    /// protocols restarts).
    Restart,
}

/// A decision together with the control-node CPU time it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome<D> {
    /// The decision.
    pub decision: D,
    /// CPU time to charge on the control node.
    pub cpu: Duration,
    /// Short static policy reason for a refusal/denial decision, surfaced
    /// in traces (e.g. `"predicted-deadlock"`, `"E(q)>E(p)"`). `None` for
    /// grants and for decisions whose cause is self-evident.
    pub reason: Option<&'static str>,
}

impl<D> Outcome<D> {
    /// A decision that consumed no measurable CPU.
    pub fn free(decision: D) -> Self {
        Outcome {
            decision,
            cpu: Duration::ZERO,
            reason: None,
        }
    }

    /// A decision with a CPU charge.
    pub fn costed(decision: D, cpu: Duration) -> Self {
        Outcome {
            decision,
            cpu,
            reason: None,
        }
    }

    /// Attach a policy reason (builder-style).
    pub fn because(mut self, reason: &'static str) -> Self {
        self.reason = Some(reason);
        self
    }
}

/// A cheap snapshot of scheduler-internal state, sampled by the metrics
/// subsystem at its Δt grid points (never on the per-event hot path, so
/// an O(edges) walk is acceptable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// File locks currently held across all live transactions.
    pub locks_held: usize,
    /// Transactions tracked in the WTPG (0 for non-WTPG schedulers).
    pub wtpg_nodes: usize,
    /// Undirected pair edges in the WTPG (0 for non-WTPG schedulers).
    pub wtpg_edges: usize,
    /// Slots allocated in the WTPG arena (live + free-listed); 0 for
    /// non-WTPG schedulers. Leak invariant: `wtpg_slots - wtpg_free ==
    /// wtpg_nodes` must hold at every quiescent point.
    pub wtpg_slots: usize,
    /// Slots currently on the WTPG arena free list.
    pub wtpg_free: usize,
}

/// The scheduler interface driven by the simulator.
///
/// Lifecycle per transaction:
/// `register` → (`try_start` until `Admit`) → per step needing a lock:
/// (`request` until `Granted`) → `step_complete` → … → `validate` →
/// `commit` (or `abort` + later `try_start` again, for OPT restarts).
pub trait Scheduler: Send {
    /// Short machine-readable name ("GOW", "LOW", …).
    fn name(&self) -> &'static str;

    /// Make the transaction's access declaration known. Called once per
    /// transaction, before any `try_start`.
    fn register(&mut self, id: TxnId, spec: BatchSpec);

    /// Attempt admission. On [`StartDecision::Admit`] the transaction is
    /// live (and, for ASL, holds its whole lock set).
    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision>;

    /// Lock request for the given step of a live transaction. Only
    /// called for steps whose lock is not already covered
    /// ([`BatchSpec::needs_lock_request`]).
    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision>;

    /// The step's scan finished; remaining-demand bookkeeping (the WTPG
    /// `T0` weights) updates here.
    fn step_complete(&mut self, id: TxnId, step: usize);

    /// Certification at commit. Locking schedulers always pass; OPT
    /// validates backward and fails on read/write-set intersection.
    fn validate(&mut self, id: TxnId) -> Outcome<bool>;

    /// Commit: release all locks, drop the transaction from internal
    /// structures. Returns the files whose locks were released (the
    /// simulator wakes their waiters).
    fn commit(&mut self, id: TxnId) -> Vec<FileId>;

    /// Abort (OPT restart): drop live state but keep the registration so
    /// the transaction can `try_start` again. Returns released files.
    fn abort(&mut self, id: TxnId) -> Vec<FileId>;

    /// Scratch-buffer variant of [`Scheduler::commit`]: append the
    /// released files to `released` (the caller owns and clears the
    /// buffer). The default delegates to `commit`; lock-table schedulers
    /// override it to release without allocating.
    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        released.extend(self.commit(id));
    }

    /// Scratch-buffer variant of [`Scheduler::abort`]; see
    /// [`Scheduler::commit_into`].
    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        released.extend(self.abort(id));
    }

    /// Permanently remove a transaction: like [`Scheduler::abort_into`]
    /// but the registration is dropped too — the transaction will never
    /// `try_start` again. Used by fault injection when a transaction
    /// exhausts its retry budget. Implementations must leave no lock
    /// rows, WTPG slots, chain entries or validation history behind.
    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.abort_into(id, released);
    }

    /// Number of live (started, uncommitted) transactions.
    fn live_count(&self) -> usize;

    /// Drain precedence constraints observed since the last call — used
    /// by serializability tests. Default: none recorded.
    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        Vec::new()
    }

    /// Snapshot internal occupancy for the metrics sampler. The default
    /// reports zeros (suitable for schedulers with no lock table).
    fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry::default()
    }

    /// Structural self-audit of an invariant the scheduler claims *by
    /// construction* — e.g. Brook-2PL's ascending-prefix lock discipline
    /// (the source of its deadlock-freedom) or DGCC's conflict-free
    /// batches. Returns `Some(Ok(()))` when the invariant holds,
    /// `Some(Err(description))` when it is violated, and `None` for
    /// schedulers that assert nothing structurally. The conformance
    /// harness probes this at quiescent points; implementations may walk
    /// their state (never called on the per-event hot path).
    fn audit_invariant(&self) -> Option<Result<(), String>> {
        None
    }
}

/// Which scheduler to run — the paper's six (C2PL+M is C2PL plus a
/// simulator-level mpl cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// No data contention (upper bound).
    Nodc,
    /// Atomic static locking.
    Asl,
    /// Cautious two-phase locking.
    C2pl,
    /// Optimistic locking.
    Opt,
    /// Globally-Optimized WTPG scheduler.
    Gow,
    /// Locally-Optimized WTPG scheduler with the given K (paper: K = 2).
    Low(u32),
    /// Wait-Depth Limited locking (extension beyond the paper): block
    /// only when no conflicting holder is itself waiting, restart the
    /// requester otherwise — bounds blocking chains to depth 1 at the
    /// price of rollbacks.
    Wdl,
    /// DGCC-style dependency-graph batcher (arXiv 1503.03642): color the
    /// conflict graph of an admission window into non-conflicting
    /// batches, released epoch-by-epoch.
    Dgcc,
    /// Brook-2PL (arXiv 2508.18576): deadlock-free 2PL acquiring locks
    /// in one global total order (ascending file id).
    Brook,
}

impl SchedulerKind {
    /// All six schedulers as evaluated in the paper (LOW with K = 2).
    pub const PAPER_SET: [SchedulerKind; 6] = [
        SchedulerKind::Nodc,
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
    ];

    /// The paper's six plus the post-1991 batch/epoch family (DGCC and
    /// Brook-2PL) — the set the differential fuzzer cross-checks on one
    /// workload + fault plan. `PAPER_SET` stays frozen (the golden
    /// artifact hashes derive from it); extended surfaces use this.
    pub const EXTENDED_SET: [SchedulerKind; 8] = [
        SchedulerKind::Nodc,
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
        SchedulerKind::Dgcc,
        SchedulerKind::Brook,
    ];

    /// Every scheduler kind the conformance suite must cover: the
    /// extended set plus the WDL extension.
    pub const ALL: [SchedulerKind; 9] = [
        SchedulerKind::Nodc,
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
        SchedulerKind::Wdl,
        SchedulerKind::Dgcc,
        SchedulerKind::Brook,
    ];

    /// Instantiate the scheduler with the given cost book.
    pub fn build(self, costs: &CostBook) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Nodc => Box::new(nodc::Nodc::new()),
            SchedulerKind::Asl => Box::new(asl::Asl::new()),
            SchedulerKind::C2pl => Box::new(c2pl::C2pl::new(costs.dd_time)),
            SchedulerKind::Opt => Box::new(opt::Opt::new()),
            SchedulerKind::Gow => Box::new(gow::Gow::new(costs.chain_time, costs.top_time)),
            SchedulerKind::Low(k) => Box::new(low::Low::new(k, costs.kwtpg_time)),
            SchedulerKind::Wdl => Box::new(wdl::Wdl::new(costs.dd_time)),
            SchedulerKind::Dgcc => Box::new(dgcc::Dgcc::new(costs.dd_time)),
            SchedulerKind::Brook => Box::new(brook::Brook::new(costs.dd_time)),
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> String {
        match self {
            SchedulerKind::Nodc => "NODC".into(),
            SchedulerKind::Asl => "ASL".into(),
            SchedulerKind::C2pl => "C2PL".into(),
            SchedulerKind::Opt => "OPT".into(),
            SchedulerKind::Gow => "GOW".into(),
            SchedulerKind::Low(2) => "LOW".into(),
            SchedulerKind::Low(k) => format!("LOW(K={k})"),
            SchedulerKind::Wdl => "WDL".into(),
            SchedulerKind::Dgcc => "DGCC".into(),
            SchedulerKind::Brook => "BROOK".into(),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

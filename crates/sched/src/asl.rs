//! ASL — Atomic Static Locking (conservative two-phase locking).
//!
//! A transaction must obtain **all** the locks it declared, atomically,
//! at its start; otherwise it does not start at all. Running
//! transactions therefore never block and never deadlock — the paper's
//! requirement (1) "avoiding chains of blocking" and (3) "no rollback"
//! are satisfied by construction, at the price of starting fewer
//! transactions when the lock set touches a hot file (requirement (2)
//! fails — Table 4 shows ASL worst on the hot-set workload).

use crate::lock_table::LockTable;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

/// The ASL scheduler.
#[derive(Debug, Default)]
pub struct Asl {
    table: LockTable,
    specs: BTreeMap<TxnId, BatchSpec>,
    live: std::collections::BTreeSet<TxnId>,
    constraints: Vec<(TxnId, TxnId)>,
    /// Pending declarers per file, used to record precedence constraints
    /// for the serializability audit (grant order = serialization order).
    grant_log: BTreeMap<FileId, Vec<TxnId>>,
}

impl Asl {
    /// Create the scheduler.
    pub fn new() -> Self {
        Asl::default()
    }
}

impl Scheduler for Asl {
    fn name(&self) -> &'static str {
        "ASL"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        let spec = &self.specs[&id];
        let lock_set = spec.lock_set();
        let all_free = lock_set
            .iter()
            .all(|&(file, mode)| self.table.can_grant(id, file, mode));
        if !all_free {
            return Outcome::free(StartDecision::Refuse).because("lock-set-unavailable");
        }
        for (file, mode) in lock_set {
            self.table.grant(id, file, mode);
            // Serialization audit: this txn follows every earlier grantee
            // of the same file that is still live and conflicting.
            if let Some(log) = self.grant_log.get(&file) {
                for &earlier in log {
                    if self.live.contains(&earlier) {
                        self.constraints.push((earlier, id));
                    }
                }
            }
            self.grant_log.entry(file).or_default().push(id);
        }
        self.live.insert(id);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let spec = &self.specs[&id];
        let s = &spec.steps[step];
        assert!(
            self.table.holds_sufficient(id, s.file, s.mode),
            "ASL transaction {id:?} executed without its pre-acquired lock"
        );
        Outcome::free(ReqDecision::Granted)
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.specs.remove(&id);
        for log in self.grant_log.values_mut() {
            log.retain(|&t| t != id);
        }
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        // Void the aborted attempt's undrained audit constraints: a
        // restarted attempt may be ordered the other way.
        self.constraints.retain(|&(a, b)| a != id && b != id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        // Same cleanup as commit: drop the registration and every
        // grant-log row so nothing dangles for a transaction that will
        // never restart.
        self.live.remove(&id);
        self.specs.remove(&id);
        for log in self.grant_log.values_mut() {
            log.retain(|&t| t != id);
        }
        self.constraints.retain(|&(a, b)| a != id && b != id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.live.len()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        std::mem::take(&mut self.constraints)
    }

    fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            ..SchedTelemetry::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;
    use bds_workload::LockMode;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }

    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn admits_only_with_full_lock_set() {
        let mut s = Asl::new();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(2), 1.0)]));
        s.register(t(3), BatchSpec::new(vec![w(f(3), 1.0)]));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        // t2 shares f1 with t1: refused.
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Refuse);
        // t3 is disjoint: admitted.
        assert_eq!(s.try_start(t(3)).decision, StartDecision::Admit);
        assert_eq!(s.live_count(), 2);
        // After t1 commits, t2 can start.
        let released = s.commit(t(1));
        assert_eq!(released, vec![f(0), f(1)]);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
    }

    #[test]
    fn running_transactions_never_block() {
        let mut s = Asl::new();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.try_start(t(1));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn shared_lock_sets_coexist() {
        let mut s = Asl::new();
        let read = |file| BatchSpec::new(vec![Step::read(file, LockMode::Shared, 2.0)]);
        s.register(t(1), read(f(0)));
        s.register(t(2), read(f(0)));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
    }

    #[test]
    fn constraints_follow_grant_order() {
        let mut s = Asl::new();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.commit(t(1));
        s.try_start(t(2));
        // t1 was no longer live when t2 started: no constraint needed.
        assert!(s.drain_constraints().is_empty());
    }
}

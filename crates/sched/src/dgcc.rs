//! DGCC — dependency-graph batched concurrency control (arXiv
//! 1503.03642, adapted to the paper's declared-lock-set model).
//!
//! Instead of deciding lock-by-lock, DGCC collects an **admission
//! window** of waiting transactions, builds the conflict graph over
//! their declared lock sets, and greedy-colors it into **batches** of
//! mutually non-conflicting transactions. Batches are released
//! epoch-by-epoch: every member of the current batch is admitted with
//! its whole lock set (conflict-free by construction, so no member ever
//! blocks), and the next batch opens only when the current one has fully
//! drained. A new window is sealed from the wait pool once the previous
//! window's last batch finishes.
//!
//! The coloring work is charged to the control node once per window
//! (`ddtime` per windowed transaction), on the `try_start` that seals
//! it; all per-step lock requests are then free grants, which is the
//! protocol's whole selling point.
//!
//! Aborted members (fault kills, external restarts) drop back into the
//! wait pool and are re-colored into a later window.

use crate::lock_table::LockTable;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{conflict, BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum transactions colored into one window. Bounds the O(n²)
/// conflict-graph construction under a saturated start queue; overflow
/// simply waits for the next window (FIFO by id, so no starvation).
pub const WINDOW_CAP: usize = 64;

/// The DGCC scheduler.
#[derive(Debug, Default)]
pub struct Dgcc {
    /// Per-transaction CPU charge for the window coloring (`ddtime`).
    color_time: Duration,
    specs: BTreeMap<TxnId, BatchSpec>,
    /// Registered transactions waiting for the next window (ascending
    /// id = arrival order).
    waiting: BTreeSet<TxnId>,
    /// Open window: batch (color) index per still-unfinished member.
    epoch_of: BTreeMap<TxnId, usize>,
    /// Unfinished members per batch of the open window.
    remaining: Vec<usize>,
    /// Index of the batch currently being released; `== remaining.len()`
    /// means the window is exhausted.
    cur: usize,
    live: BTreeSet<TxnId>,
    table: LockTable,
    constraints: Vec<(TxnId, TxnId)>,
    /// Admission-order grantees per file, for the serializability audit
    /// (same recording rule as ASL: admission grants are atomic).
    grant_log: BTreeMap<FileId, Vec<TxnId>>,
}

impl Dgcc {
    /// Create with the per-transaction coloring CPU cost (`ddtime`).
    pub fn new(color_time: Duration) -> Self {
        Dgcc {
            color_time,
            ..Dgcc::default()
        }
    }

    /// Seal a new window from the wait pool: greedy-color the conflict
    /// graph over declared lock sets into mutually non-conflicting
    /// batches. Returns the number of transactions colored.
    fn seal_window(&mut self) -> usize {
        debug_assert!(self.epoch_of.is_empty(), "window sealed while one is open");
        debug_assert!(self.live.is_empty(), "window sealed with live members");
        let ids: Vec<TxnId> = self.waiting.iter().take(WINDOW_CAP).copied().collect();
        let mut batches: Vec<Vec<TxnId>> = Vec::new();
        for &id in &ids {
            self.waiting.remove(&id);
            let spec = &self.specs[&id];
            let slot = batches.iter().position(|batch| {
                batch
                    .iter()
                    .all(|&other| !conflict::conflicts(spec, &self.specs[&other]))
            });
            match slot {
                Some(b) => {
                    batches[b].push(id);
                    self.epoch_of.insert(id, b);
                }
                None => {
                    self.epoch_of.insert(id, batches.len());
                    batches.push(vec![id]);
                }
            }
        }
        self.remaining = batches.iter().map(Vec::len).collect();
        self.cur = 0;
        ids.len()
    }

    /// A window member finished (commit, abort or kill): retire it from
    /// its batch and advance the release pointer past drained batches.
    fn finish_window_member(&mut self, id: TxnId) {
        if let Some(batch) = self.epoch_of.remove(&id) {
            self.remaining[batch] -= 1;
            while self.cur < self.remaining.len() && self.remaining[self.cur] == 0 {
                self.cur += 1;
            }
        }
    }

    fn drop_grant_log_rows(&mut self, id: TxnId) {
        for log in self.grant_log.values_mut() {
            log.retain(|&t| t != id);
        }
    }
}

impl Scheduler for Dgcc {
    fn name(&self) -> &'static str {
        "DGCC"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
        self.waiting.insert(id);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        // Window exhausted (or none yet): seal the next one and charge
        // the coloring pass once, on this outcome.
        let mut seal_cost = Duration::ZERO;
        if self.cur >= self.remaining.len() && !self.waiting.is_empty() {
            let n = self.seal_window();
            seal_cost = Duration::from_secs_f64(self.color_time.as_secs_f64() * n as f64);
        }
        let decide = |d: StartDecision| {
            if seal_cost.is_zero() {
                Outcome::free(d)
            } else {
                Outcome::costed(d, seal_cost)
            }
        };
        match self.epoch_of.get(&id) {
            Some(&batch) if batch == self.cur => {
                // Current batch: admit with the whole lock set. Members
                // are pairwise non-conflicting, so every grant succeeds.
                let spec = &self.specs[&id];
                for (file, mode) in spec.lock_set() {
                    assert!(
                        self.table.can_grant(id, file, mode),
                        "DGCC batch member {id:?} conflicts inside its own batch"
                    );
                    self.table.grant(id, file, mode);
                    if let Some(log) = self.grant_log.get(&file) {
                        for &earlier in log {
                            if self.live.contains(&earlier) {
                                self.constraints.push((earlier, id));
                            }
                        }
                    }
                    self.grant_log.entry(file).or_default().push(id);
                }
                self.live.insert(id);
                decide(StartDecision::Admit)
            }
            Some(_) => decide(StartDecision::Refuse).because("later-epoch"),
            None => decide(StartDecision::Refuse).because("next-window"),
        }
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = &self.specs[&id].steps[step];
        assert!(
            self.table.holds_sufficient(id, s.file, s.mode),
            "DGCC transaction {id:?} executed without its batch-time lock"
        );
        Outcome::free(ReqDecision::Granted)
    }

    fn step_complete(&mut self, _id: TxnId, _step: usize) {}

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.specs.remove(&id);
        self.waiting.remove(&id);
        self.drop_grant_log_rows(id);
        self.finish_window_member(id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        // The aborted attempt's undrained audit edges are void; the
        // restarted attempt will be re-colored into a later window.
        self.constraints.retain(|&(a, b)| a != id && b != id);
        self.drop_grant_log_rows(id);
        self.finish_window_member(id);
        self.waiting.insert(id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.live.remove(&id);
        self.specs.remove(&id);
        self.waiting.remove(&id);
        self.constraints.retain(|&(a, b)| a != id && b != id);
        self.drop_grant_log_rows(id);
        self.finish_window_member(id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.live.len()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        std::mem::take(&mut self.constraints)
    }

    fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            ..SchedTelemetry::default()
        }
    }

    fn audit_invariant(&self) -> Option<Result<(), String>> {
        // Structural batch invariant: every live transaction belongs to
        // the batch currently being released, and the batch is pairwise
        // conflict-free.
        let live: Vec<TxnId> = self.live.iter().copied().collect();
        for &id in &live {
            match self.epoch_of.get(&id) {
                Some(&b) if b == self.cur => {}
                Some(&b) => {
                    return Some(Err(format!(
                        "live {id:?} is in batch {b}, not the released batch {}",
                        self.cur
                    )))
                }
                None => return Some(Err(format!("live {id:?} is outside the open window"))),
            }
        }
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if conflict::conflicts(&self.specs[&a], &self.specs[&b]) {
                    return Some(Err(format!(
                        "batch {} members {a:?} and {b:?} conflict",
                        self.cur
                    )));
                }
            }
        }
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;
    use bds_workload::LockMode;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }
    fn dgcc() -> Dgcc {
        Dgcc::new(Duration::from_millis(1))
    }

    #[test]
    fn window_colors_conflicting_txns_into_separate_batches() {
        let mut s = dgcc();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)])); // conflicts with t1
        s.register(t(3), BatchSpec::new(vec![w(f(1), 1.0)])); // disjoint

        // First try_start seals the window and charges 3 × ddtime.
        let o = s.try_start(t(1));
        assert_eq!(o.decision, StartDecision::Admit);
        assert_eq!(o.cpu, Duration::from_millis(3));
        // t2 conflicts with t1: later batch. t3 is conflict-free: same
        // batch as t1, admitted for free.
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Refuse);
        let o3 = s.try_start(t(3));
        assert_eq!(o3.decision, StartDecision::Admit);
        assert!(o3.cpu.is_zero());
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.audit_invariant(), Some(Ok(())));
        // Batch 0 must fully drain before t2's batch opens.
        s.commit(t(1));
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Refuse);
        s.commit(t(3));
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
    }

    #[test]
    fn batch_members_never_block_on_requests() {
        let mut s = dgcc();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.try_start(t(1));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn late_arrival_waits_for_the_next_window() {
        let mut s = dgcc();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        // t2 arrives after the window sealed: refused until it drains.
        s.register(t(2), BatchSpec::new(vec![w(f(5), 1.0)]));
        let o = s.try_start(t(2));
        assert_eq!(o.decision, StartDecision::Refuse);
        assert_eq!(o.reason, Some("next-window"));
        s.commit(t(1));
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
    }

    #[test]
    fn aborted_member_is_recolored_into_a_later_window() {
        let mut s = dgcc();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        let released = s.abort(t(1));
        assert_eq!(released, vec![f(0)]);
        // t1 is back in the pool; the open window still has t2 in flight.
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Refuse);
        s.commit(t(2));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
    }

    #[test]
    fn forget_leaves_no_state_behind() {
        let mut s = dgcc();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        let mut rel = Vec::new();
        s.forget(t(1), &mut rel);
        assert_eq!(rel, vec![f(0)]);
        assert_eq!(s.live_count(), 0);
        assert_eq!(s.telemetry().locks_held, 0);
        // t2 (batch 1 of the sealed window) opens once t1 is gone.
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
        s.commit(t(2));
        assert!(s.specs.is_empty());
        assert!(s.epoch_of.is_empty());
        assert!(s.waiting.is_empty());
    }

    #[test]
    fn shared_readers_share_a_batch() {
        let mut s = dgcc();
        let read = |file| BatchSpec::new(vec![Step::read(file, LockMode::Shared, 2.0)]);
        s.register(t(1), read(f(0)));
        s.register(t(2), read(f(0)));
        assert_eq!(s.try_start(t(1)).decision, StartDecision::Admit);
        assert_eq!(s.try_start(t(2)).decision, StartDecision::Admit);
        assert_eq!(s.audit_invariant(), Some(Ok(())));
    }

    #[test]
    fn constraints_are_acyclic_over_batched_commits() {
        let mut s = dgcc();
        for i in 1..=4 {
            s.register(t(i), BatchSpec::new(vec![w(f(0), 1.0)]));
        }
        // All four conflict: one singleton batch each, released in order.
        let mut committed = 0;
        while committed < 4 {
            for i in 1..=4 {
                let queued = !s.live.contains(&t(i)) && s.specs.contains_key(&t(i));
                if queued && s.try_start(t(i)).decision == StartDecision::Admit {
                    s.commit(t(i));
                    committed += 1;
                }
            }
        }
        let cs = s.drain_constraints();
        assert!(bds_wtpg::oracle::is_serializable(&cs), "{cs:?}");
    }

    #[test]
    fn window_cap_bounds_the_coloring_pass() {
        let mut s = dgcc();
        for i in 0..(WINDOW_CAP as u64 + 10) {
            s.register(t(i + 1), BatchSpec::new(vec![w(f(i as u32), 1.0)]));
        }
        let o = s.try_start(t(1));
        assert_eq!(o.decision, StartDecision::Admit);
        assert_eq!(o.cpu, Duration::from_millis(WINDOW_CAP as u64));
        // The overflow transaction is outside this window.
        let o = s.try_start(t(WINDOW_CAP as u64 + 5));
        assert_eq!(o.reason, Some("next-window"));
    }
}

//! C2PL — Cautious Two-Phase Locking (Nishio et al. \[12\]).
//!
//! Strict 2PL over declared accesses with **deadlock prediction**: the
//! scheduler keeps an (unweighted) transaction-precedence graph over the
//! live transactions; a lock grant orients `Ti → Tj` toward every live
//! conflicting declarer `Tj` of the file. A request is granted iff it is
//! compatible with the held locks **and** its orientations cannot close
//! a precedence cycle (which would inevitably lead to a deadlock among
//! blocked transactions). A request that would close a cycle is
//! *delayed*; one that merely conflicts with a held lock is *blocked*.
//! C2PL never deadlocks and never aborts, but it does build chains of
//! blocking — the paper's §5 shows exactly that weakness.

use crate::lock_table::LockTable;
use crate::wtpg_core::WtpgCore;
use crate::{Outcome, ReqDecision, SchedTelemetry, Scheduler, StartDecision};
use bds_des::time::Duration;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::{paths, TxnId};

/// The C2PL scheduler. (C2PL+M is this scheduler under a finite
/// multiprogramming level imposed by the simulator.)
#[derive(Debug, Default)]
pub struct C2pl {
    core: WtpgCore,
    table: LockTable,
    dd_time: Duration,
    /// Reused traversal state for the deadlock-prediction search.
    ps: paths::Scratch,
    /// Scratch: implied orientations of the current request.
    orient_buf: Vec<(TxnId, TxnId)>,
}

impl C2pl {
    /// Create with the deadlock-detection CPU cost (`ddtime`, 1 ms).
    pub fn new(dd_time: Duration) -> Self {
        C2pl {
            dd_time,
            ..C2pl::default()
        }
    }

    /// Would applying these orientations close a precedence cycle?
    fn creates_cycle(
        ps: &mut paths::Scratch,
        core: &WtpgCore,
        orientations: &[(TxnId, TxnId)],
    ) -> bool {
        if core.any_inconsistent(orientations) {
            return true;
        }
        // A cycle appears iff `to ⇝ from` already holds for some new
        // edge `from → to`. All added edges leave the same `from`, so
        // they cannot chain with each other: one multi-source search
        // from the `to` set looking for `from` suffices.
        let from = match orientations.first() {
            Some(&(f, _)) => f,
            None => return false,
        };
        debug_assert!(orientations.iter().all(|&(f, _)| f == from));
        ps.reachable_from_any(&core.graph, orientations.iter().map(|&(_, to)| to), from)
    }
}

impl Scheduler for C2pl {
    fn name(&self) -> &'static str {
        "C2PL"
    }

    fn register(&mut self, id: TxnId, spec: BatchSpec) {
        self.core.register(id, spec);
    }

    fn try_start(&mut self, id: TxnId) -> Outcome<StartDecision> {
        self.core.add_live(id, &self.table);
        Outcome::free(StartDecision::Admit)
    }

    fn request(&mut self, id: TxnId, step: usize) -> Outcome<ReqDecision> {
        let s = self.core.spec(id).steps[step];
        // Phase 1: conflicts with a held lock → blocked.
        if !self.table.can_grant(id, s.file, s.mode) {
            return Outcome::costed(ReqDecision::Blocked, self.dd_time).because("lock-held");
        }
        // Phase 2: deadlock prediction over declared accesses.
        self.core
            .implied_orientations_into(id, s.file, s.mode, &mut self.orient_buf);
        if Self::creates_cycle(&mut self.ps, &self.core, &self.orient_buf) {
            return Outcome::costed(ReqDecision::Delayed, self.dd_time)
                .because("predicted-deadlock");
        }
        // Grant.
        self.table.grant(id, s.file, s.mode);
        self.core.apply_orientations(&self.orient_buf);
        Outcome::costed(ReqDecision::Granted, self.dd_time)
    }

    fn step_complete(&mut self, id: TxnId, step: usize) {
        // C2PL's graph is unweighted, but keeping remaining demand
        // up to date costs nothing and aids debugging.
        self.core.step_complete(id, step);
    }

    fn validate(&mut self, _id: TxnId) -> Outcome<bool> {
        Outcome::free(true)
    }

    fn commit(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.commit_into(id, &mut out);
        out
    }

    fn abort(&mut self, id: TxnId) -> Vec<FileId> {
        let mut out = Vec::new();
        self.abort_into(id, &mut out);
        out
    }

    fn commit_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove(id);
        self.table.release_all_into(id, released);
    }

    fn abort_into(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        self.core.remove_live_only(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn forget(&mut self, id: TxnId, released: &mut Vec<FileId>) {
        // Permanent kill: drop the WTPG slot, spec and every lock row.
        self.core.remove(id);
        self.core.purge_constraints(id);
        self.table.release_all_into(id, released);
    }

    fn live_count(&self) -> usize {
        self.core.live_count()
    }

    fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.core.drain_constraints()
    }

    fn telemetry(&self) -> SchedTelemetry {
        let (wtpg_slots, wtpg_free) = self.core.graph.arena_stats();
        SchedTelemetry {
            locks_held: self.table.total_locks(),
            wtpg_nodes: self.core.graph.len(),
            wtpg_edges: self.core.graph.edges().count(),
            wtpg_slots,
            wtpg_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn c2pl() -> C2pl {
        C2pl::new(Duration::from_millis(1))
    }
    fn w(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn grants_are_charged_ddtime() {
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        let o = s.request(t(1), 0);
        assert_eq!(o.decision, ReqDecision::Granted);
        assert_eq!(o.cpu, Duration::from_millis(1));
    }

    #[test]
    fn conflicting_request_blocks() {
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Blocked);
        // After t1 commits the lock is free again.
        let released = s.commit(t(1));
        assert_eq!(released, vec![f(0)]);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
    }

    /// The textbook deadlock: T1 takes A then wants B; T2 takes B then
    /// wants A. C2PL must delay the *second* acquisition that would
    /// close the cycle, not block into a deadlock.
    #[test]
    fn predicted_deadlock_is_delayed() {
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        // T1 gets A; orientation T1 → T2 (T2 declared A).
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        // T2 requests B: would orient T2 → T1, closing the cycle.
        let o = s.request(t(2), 0);
        assert_eq!(o.decision, ReqDecision::Delayed);
        assert_eq!(o.reason, Some("predicted-deadlock"));
        // T1 can proceed to B (consistent direction), then commit.
        assert_eq!(s.request(t(1), 1).decision, ReqDecision::Granted);
        s.commit(t(1));
        // Now T2 is alone and gets both locks.
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Granted);
    }

    #[test]
    fn chains_of_blocking_are_allowed() {
        // T1 holds F0; T2 waits on F0 while holding F1; T3 waits on F1.
        // No cycle: all fine for C2PL (this is exactly its weakness).
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.register(t(3), BatchSpec::new(vec![w(f(1), 1.0)]));
        for i in 1..=3 {
            s.try_start(t(i));
        }
        assert_eq!(s.request(t(1), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 0).decision, ReqDecision::Granted);
        assert_eq!(s.request(t(2), 1).decision, ReqDecision::Blocked);
        assert_eq!(s.request(t(3), 0).decision, ReqDecision::Blocked);
    }

    #[test]
    fn constraints_are_serializable() {
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0), w(f(1), 1.0)]));
        s.register(t(2), BatchSpec::new(vec![w(f(1), 1.0), w(f(0), 1.0)]));
        s.try_start(t(1));
        s.try_start(t(2));
        let _ = s.request(t(1), 0);
        let _ = s.request(t(2), 0);
        let _ = s.request(t(1), 1);
        s.commit(t(1));
        let _ = s.request(t(2), 0);
        let _ = s.request(t(2), 1);
        s.commit(t(2));
        let cs = s.drain_constraints();
        assert!(bds_wtpg::oracle::is_serializable(&cs), "{cs:?}");
    }

    #[test]
    fn late_starter_is_ordered_after_holder() {
        let mut s = c2pl();
        s.register(t(1), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(1));
        let _ = s.request(t(1), 0);
        // T2 starts while T1 holds the conflicting lock.
        s.register(t(2), BatchSpec::new(vec![w(f(0), 1.0)]));
        s.try_start(t(2));
        let cs = s.drain_constraints();
        assert!(cs.contains(&(t(1), t(2))));
    }
}

//! Shared bookkeeping for the WTPG-based schedulers (C2PL, GOW, LOW):
//! registered declarations, the live set, WTPG node/edge maintenance and
//! the grant-time orientation rule.

use crate::lock_table::LockTable;
use bds_workload::{conflict, BatchSpec, FileId, LockMode};
use bds_wtpg::{TxnId, Wtpg};
use std::collections::BTreeMap;

/// Registered declarations plus the WTPG over the live transactions.
#[derive(Debug, Clone, Default)]
pub struct WtpgCore {
    /// The weighted graph over live transactions.
    pub graph: Wtpg,
    specs: BTreeMap<TxnId, BatchSpec>,
    /// Per-file index of *live* transactions declaring the file, with
    /// their strongest declared mode (hot path for conflict lookups).
    /// Dense — row `f` lists the declarers of `FileId(f)` in admission
    /// (push) order, which downstream decisions observe; rows persist
    /// empty so steady-state admission/removal does not allocate.
    by_file: Vec<Vec<(TxnId, LockMode)>>,
    /// Precedence constraints recorded for serializability auditing.
    constraints: Vec<(TxnId, TxnId)>,
}

impl WtpgCore {
    /// Empty state.
    pub fn new() -> Self {
        WtpgCore::default()
    }

    /// Register a declaration (before admission).
    pub fn register(&mut self, id: TxnId, spec: BatchSpec) {
        let prev = self.specs.insert(id, spec);
        assert!(prev.is_none(), "duplicate registration of {id:?}");
    }

    /// The declaration of a registered transaction.
    pub fn spec(&self, id: TxnId) -> &BatchSpec {
        &self.specs[&id]
    }

    /// Is the transaction live (admitted, uncommitted)?
    pub fn is_live(&self, id: TxnId) -> bool {
        self.graph.contains(id)
    }

    /// Live transaction count.
    pub fn live_count(&self) -> usize {
        self.graph.len()
    }

    /// The live transactions that declared an access to `file`
    /// conflicting with `mode`, other than `id`, in admission order —
    /// borrowed iterator, no allocation.
    pub fn conflicting_declarers_iter(
        &self,
        id: TxnId,
        file: FileId,
        mode: LockMode,
    ) -> impl Iterator<Item = TxnId> + '_ {
        self.by_file
            .get(file.0 as usize)
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .filter(move |&&(other, m)| other != id && !m.compatible(mode))
            .map(|&(other, _)| other)
    }

    /// The live transactions that declared an access to `file`
    /// conflicting with `mode`, other than `id`, in admission order.
    /// Allocating convenience over
    /// [`WtpgCore::conflicting_declarers_iter`].
    pub fn conflicting_declarers(&self, id: TxnId, file: FileId, mode: LockMode) -> Vec<TxnId> {
        self.conflicting_declarers_iter(id, file, mode).collect()
    }

    /// How many live declarations on `file` conflict with `mode`
    /// (excluding `id`'s own) — counting variant, no allocation.
    pub fn conflicting_declarer_count(&self, id: TxnId, file: FileId, mode: LockMode) -> usize {
        self.conflicting_declarers_iter(id, file, mode).count()
    }

    /// Does any conflicting declarer of `file` already precede `id` in
    /// the decided order (which makes granting `id` the lock
    /// non-serializable outright)?
    pub fn has_adverse_declarer(&self, id: TxnId, file: FileId, mode: LockMode) -> bool {
        self.conflicting_declarers_iter(id, file, mode)
            .any(|other| self.graph.is_decided(other, id))
    }

    /// The live transactions whose declarations conflict with `id`'s
    /// declaration on *any* file, in ascending id order.
    pub fn conflicting_live(&self, id: TxnId) -> Vec<TxnId> {
        let spec = &self.specs[&id];
        let mut out: Vec<TxnId> = spec
            .lock_set()
            .into_iter()
            .flat_map(|(file, mode)| self.conflicting_declarers_iter(id, file, mode))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Admit `id` into the WTPG: add its node (T0 weight = total declared
    /// demand), declare conflict edges against every conflicting live
    /// transaction, and orient edges toward transactions that already
    /// hold a conflicting lock on a shared-conflict file (they accessed
    /// it first, so they precede `id`).
    pub fn add_live(&mut self, id: TxnId, table: &LockTable) {
        let spec = self.specs[&id].clone();
        self.graph.add_txn(id, spec.total_declared());
        let others: Vec<TxnId> = self.conflicting_live(id);
        for (file, mode) in spec.lock_set() {
            let idx = file.0 as usize;
            if idx >= self.by_file.len() {
                self.by_file.resize_with(idx + 1, Vec::new);
            }
            self.by_file[idx].push((id, mode));
        }
        for other in others {
            let ospec = &self.specs[&other];
            if let Some((w_new_other, w_other_new)) = conflict::edge_weights(&spec, ospec) {
                self.graph
                    .declare_conflict(id, other, w_new_other, w_other_new);
                // If `other` already holds a conflicting lock on one of
                // the pair's conflict files, its access came first.
                let holds_first =
                    conflict::conflicting_files(&spec, ospec)
                        .into_iter()
                        .any(
                            |file| match (table.mode_held(other, file), spec.mode_on(file)) {
                                (Some(held), Some(want)) => !held.compatible(want),
                                _ => false,
                            },
                        );
                if holds_first {
                    self.set_precedence(other, id);
                }
            }
        }
    }

    /// Remove a committed/aborted transaction from the graph (its spec
    /// registration is dropped too).
    pub fn remove(&mut self, id: TxnId) {
        self.remove_live_only(id);
        self.specs.remove(&id);
    }

    /// Drop only the live state (OPT-style restart would not use this —
    /// it is for schedulers that keep the registration on refusal).
    pub fn remove_live_only(&mut self, id: TxnId) {
        if self.graph.contains(id) {
            self.graph.remove_txn(id);
            let spec = &self.specs[&id];
            for s in &spec.steps {
                if let Some(v) = self.by_file.get_mut(s.file.0 as usize) {
                    v.retain(|&(t, _)| t != id);
                }
            }
        }
    }

    /// Update the `T0` weight after `step` finished: remaining declared
    /// demand from the next step on.
    pub fn step_complete(&mut self, id: TxnId, step: usize) {
        if !self.graph.contains(id) {
            return;
        }
        let remaining = if step + 1 >= self.specs[&id].len() {
            0.0
        } else {
            self.specs[&id].declared_from(step + 1)
        };
        self.graph.set_t0_weight(id, remaining);
    }

    /// The precedence orientations implied by granting `id` a lock of
    /// `mode` on `file`: `id → other` for every conflicting declarer.
    /// Pairs already decided in this direction are omitted; pairs decided
    /// in the *opposite* direction are still returned so callers can
    /// detect the inconsistency (granting would be non-serializable).
    pub fn implied_orientations(
        &self,
        id: TxnId,
        file: FileId,
        mode: LockMode,
    ) -> Vec<(TxnId, TxnId)> {
        let mut out = Vec::new();
        self.implied_orientations_into(id, file, mode, &mut out);
        out
    }

    /// Scratch-buffer variant of [`WtpgCore::implied_orientations`]:
    /// clears `out` and fills it with the implied orientations.
    pub fn implied_orientations_into(
        &self,
        id: TxnId,
        file: FileId,
        mode: LockMode,
        out: &mut Vec<(TxnId, TxnId)>,
    ) {
        out.clear();
        out.extend(
            self.conflicting_declarers_iter(id, file, mode)
                .filter(|&other| !self.graph.is_decided(id, other))
                .map(|other| (id, other)),
        );
    }

    /// Record and apply a decided precedence, skipping already-decided
    /// pairs.
    ///
    /// # Panics
    /// Panics if the pair is decided in the opposite direction — callers
    /// must never apply inconsistent orientations.
    pub fn set_precedence(&mut self, from: TxnId, to: TxnId) {
        if self.graph.is_decided(from, to) {
            return;
        }
        self.graph.set_precedence(from, to);
        self.constraints.push((from, to));
    }

    /// Apply all orientations (grant committed); panics on inconsistency.
    pub fn apply_orientations(&mut self, orientations: &[(TxnId, TxnId)]) {
        for &(from, to) in orientations {
            if self.graph.contains(from) && self.graph.contains(to) {
                self.set_precedence(from, to);
            }
        }
    }

    /// Would any of these orientations contradict an already-decided
    /// edge?
    pub fn any_inconsistent(&self, orientations: &[(TxnId, TxnId)]) -> bool {
        orientations
            .iter()
            .any(|&(from, to)| self.graph.is_decided(to, from))
    }

    /// Drain recorded precedence constraints.
    pub fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        std::mem::take(&mut self.constraints)
    }

    /// Void the undrained constraints of an aborted attempt: edges
    /// decided for or against `id` belong to work that never committed,
    /// and a restarted attempt may legitimately be ordered the other
    /// way. Leaving them in the log would make the serializability
    /// audit reject correct histories under fault-induced aborts.
    pub fn purge_constraints(&mut self, id: TxnId) {
        self.constraints.retain(|&(a, b)| a != id && b != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_workload::spec::Step;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }

    fn xw(file: FileId, cost: f64) -> Step {
        Step::write(file, cost)
    }

    #[test]
    fn add_live_builds_conflict_edges() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        core.register(t(1), BatchSpec::new(vec![xw(f(0), 1.0), xw(f(1), 2.0)]));
        core.register(t(2), BatchSpec::new(vec![xw(f(1), 3.0), xw(f(2), 1.0)]));
        core.add_live(t(1), &table);
        core.add_live(t(2), &table);
        assert!(core.graph.is_conflict(t(1), t(2)));
        assert_eq!(core.graph.t0_weight(t(1)), 3.0);
        assert_eq!(core.graph.t0_weight(t(2)), 4.0);
        // w(T1→T2): T2's first conflicting step is step 0 (f1): 3+1 = 4.
        let key = bds_wtpg::graph::PairKey::new(t(1), t(2));
        assert_eq!(
            core.graph.edge(t(1), t(2)).unwrap().weight_from(key, t(1)),
            4.0
        );
        // w(T2→T1): T1's first conflicting step is step 1 (f1): 2.
        assert_eq!(
            core.graph.edge(t(1), t(2)).unwrap().weight_from(key, t(2)),
            2.0
        );
    }

    #[test]
    fn add_live_orients_toward_holders() {
        let mut core = WtpgCore::new();
        let mut table = LockTable::new();
        core.register(t(1), BatchSpec::new(vec![xw(f(0), 1.0)]));
        core.add_live(t(1), &table);
        table.grant(t(1), f(0), LockMode::Exclusive);
        core.register(t(2), BatchSpec::new(vec![xw(f(0), 5.0)]));
        core.add_live(t(2), &table);
        assert!(core.graph.is_decided(t(1), t(2)));
        let cs = core.drain_constraints();
        assert_eq!(cs, vec![(t(1), t(2))]);
    }

    #[test]
    fn step_complete_updates_t0() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        core.register(t(1), BatchSpec::new(vec![xw(f(0), 1.0), xw(f(1), 2.0)]));
        core.add_live(t(1), &table);
        core.step_complete(t(1), 0);
        assert_eq!(core.graph.t0_weight(t(1)), 2.0);
        core.step_complete(t(1), 1);
        assert_eq!(core.graph.t0_weight(t(1)), 0.0);
    }

    #[test]
    fn implied_orientations_skip_decided() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        core.register(t(1), BatchSpec::new(vec![xw(f(0), 1.0)]));
        core.register(t(2), BatchSpec::new(vec![xw(f(0), 1.0)]));
        core.register(t(3), BatchSpec::new(vec![xw(f(0), 1.0)]));
        for i in 1..=3 {
            core.add_live(t(i), &table);
        }
        let o = core.implied_orientations(t(1), f(0), LockMode::Exclusive);
        assert_eq!(o, vec![(t(1), t(2)), (t(1), t(3))]);
        core.set_precedence(t(1), t(2));
        let o = core.implied_orientations(t(1), f(0), LockMode::Exclusive);
        assert_eq!(o, vec![(t(1), t(3))]);
        // Adverse decided pair is detected as inconsistent.
        core.set_precedence(t(3), t(1));
        assert!(core.any_inconsistent(&[(t(1), t(3))]));
    }

    #[test]
    fn remove_cleans_up() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        core.register(t(1), BatchSpec::new(vec![xw(f(0), 1.0)]));
        core.add_live(t(1), &table);
        assert_eq!(core.live_count(), 1);
        core.remove(t(1));
        assert_eq!(core.live_count(), 0);
        assert!(!core.is_live(t(1)));
    }

    #[test]
    fn conflicting_declarers_respects_modes() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        core.register(
            t(1),
            BatchSpec::new(vec![Step::read(f(0), LockMode::Shared, 1.0)]),
        );
        core.register(
            t(2),
            BatchSpec::new(vec![Step::read(f(0), LockMode::Shared, 1.0)]),
        );
        core.register(t(3), BatchSpec::new(vec![xw(f(0), 1.0)]));
        for i in 1..=3 {
            core.add_live(t(i), &table);
        }
        // S vs S: no conflict; X conflicts with both.
        assert!(core
            .conflicting_declarers(t(1), f(0), LockMode::Shared)
            .contains(&t(3)));
        assert_eq!(
            core.conflicting_declarers(t(3), f(0), LockMode::Exclusive),
            vec![t(1), t(2)]
        );
    }

    #[test]
    fn purge_drops_only_the_aborted_attempts_edges() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        for i in 1..=3 {
            core.register(t(i), BatchSpec::new(vec![xw(f(0), 1.0)]));
            core.add_live(t(i), &table);
        }
        core.set_precedence(t(1), t(2));
        core.set_precedence(t(2), t(3));
        core.set_precedence(t(1), t(3));
        core.purge_constraints(t(2));
        // Every edge mentioning t2 — on either side — is void; the
        // unrelated t1→t3 edge survives.
        assert_eq!(core.drain_constraints(), vec![(t(1), t(3))]);
    }

    #[test]
    fn scratch_variants_match_allocating_api() {
        let mut core = WtpgCore::new();
        let table = LockTable::new();
        for i in 1..=3 {
            core.register(t(i), BatchSpec::new(vec![xw(f(0), 1.0)]));
            core.add_live(t(i), &table);
        }
        core.set_precedence(t(1), t(2));
        assert_eq!(
            core.conflicting_declarer_count(t(1), f(0), LockMode::Exclusive),
            2
        );
        let mut buf = vec![(t(9), t(9))]; // stale content must be cleared
        core.implied_orientations_into(t(1), f(0), LockMode::Exclusive, &mut buf);
        assert_eq!(
            buf,
            core.implied_orientations(t(1), f(0), LockMode::Exclusive)
        );
        assert_eq!(buf, vec![(t(1), t(3))]);
        assert!(!core.has_adverse_declarer(t(1), f(0), LockMode::Exclusive));
        assert!(core.has_adverse_declarer(t(2), f(0), LockMode::Exclusive));
    }
}

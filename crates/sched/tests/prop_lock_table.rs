//! Property tests for the lock table: compatibility is never violated,
//! release is complete, and the table agrees with a naive model.

use bds_sched::lock_table::LockTable;
use bds_workload::{FileId, LockMode};
use bds_wtpg::TxnId;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire { txn: u8, file: u8, exclusive: bool },
    ReleaseAll { txn: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12, 0u8..6, any::<bool>())
                .prop_map(|(txn, file, exclusive)| Op::Acquire { txn, file, exclusive }),
            (0u8..12).prop_map(|txn| Op::ReleaseAll { txn }),
        ],
        0..200,
    )
}

/// Naive reference: map file -> holders.
#[derive(Default)]
struct Model {
    holders: BTreeMap<u8, BTreeMap<u8, LockMode>>,
}

impl Model {
    fn can_grant(&self, txn: u8, file: u8, mode: LockMode) -> bool {
        self.holders
            .get(&file)
            .map(|h| h.iter().all(|(&t, &m)| t == txn || m.compatible(mode)))
            .unwrap_or(true)
    }
    fn grant(&mut self, txn: u8, file: u8, mode: LockMode) {
        let e = self
            .holders
            .entry(file)
            .or_default()
            .entry(txn)
            .or_insert(mode);
        *e = e.max(mode);
    }
    fn release_all(&mut self, txn: u8) {
        for h in self.holders.values_mut() {
            h.remove(&txn);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn table_agrees_with_model(ops in arb_ops()) {
        let mut table = LockTable::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Acquire { txn, file, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let t = TxnId(txn as u64);
                    let f = FileId(file as u32);
                    let expect = model.can_grant(txn, file, mode);
                    prop_assert_eq!(table.can_grant(t, f, mode), expect);
                    if expect {
                        table.grant(t, f, mode);
                        model.grant(txn, file, mode);
                        prop_assert!(table.holds_sufficient(t, f, mode));
                    }
                }
                Op::ReleaseAll { txn } => {
                    let t = TxnId(txn as u64);
                    let released = table.release_all(t);
                    model.release_all(txn);
                    // Released files no longer list the txn as holder.
                    for f in released {
                        prop_assert!(table.mode_held(t, f).is_none());
                    }
                    prop_assert!(table.files_of(t).is_empty());
                }
            }
            // Global invariant: X-held files have exactly one holder.
            for file in 0u8..6 {
                let holders = table.holders(FileId(file as u32));
                let x_holders = holders
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Exclusive)
                    .count();
                if x_holders > 0 {
                    prop_assert_eq!(
                        holders.len(), 1,
                        "X lock on F{} coexists with other holders", file
                    );
                }
            }
        }
    }

    #[test]
    fn total_locks_matches_holder_sum(ops in arb_ops()) {
        let mut table = LockTable::new();
        for op in ops {
            match op {
                Op::Acquire { txn, file, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let (t, f) = (TxnId(txn as u64), FileId(file as u32));
                    if table.can_grant(t, f, mode) {
                        table.grant(t, f, mode);
                    }
                }
                Op::ReleaseAll { txn } => {
                    table.release_all(TxnId(txn as u64));
                }
            }
        }
        let by_file: usize = (0u32..6).map(|f| table.holders(FileId(f)).len()).sum();
        prop_assert_eq!(table.total_locks(), by_file);
    }
}

//! Randomized tests for the lock table: compatibility is never
//! violated, release is complete, and the table agrees with a naive
//! model. Operation sequences are generated from a fixed-seed
//! [`Xoshiro256`] stream, so the suite is deterministic.

use bds_des::rng::Xoshiro256;
use bds_sched::lock_table::LockTable;
use bds_workload::{FileId, LockMode};
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

const CASES: u64 = 256;

#[derive(Debug, Clone)]
enum Op {
    Acquire { txn: u8, file: u8, exclusive: bool },
    ReleaseAll { txn: u8 },
}

fn gen_ops(case: u64, salt: u64) -> Vec<Op> {
    let mut r = Xoshiro256::seed_from_u64(0x10C4 ^ salt ^ case.wrapping_mul(0x9E37_79B9));
    let n = r.next_index(200);
    (0..n)
        .map(|_| {
            if r.next_range(3) < 2 {
                Op::Acquire {
                    txn: r.next_range(12) as u8,
                    file: r.next_range(6) as u8,
                    exclusive: r.next_range(2) == 1,
                }
            } else {
                Op::ReleaseAll {
                    txn: r.next_range(12) as u8,
                }
            }
        })
        .collect()
}

/// Naive reference: map file -> holders.
#[derive(Default)]
struct Model {
    holders: BTreeMap<u8, BTreeMap<u8, LockMode>>,
}

impl Model {
    fn can_grant(&self, txn: u8, file: u8, mode: LockMode) -> bool {
        self.holders
            .get(&file)
            .map(|h| h.iter().all(|(&t, &m)| t == txn || m.compatible(mode)))
            .unwrap_or(true)
    }
    fn grant(&mut self, txn: u8, file: u8, mode: LockMode) {
        let e = self
            .holders
            .entry(file)
            .or_default()
            .entry(txn)
            .or_insert(mode);
        *e = e.max(mode);
    }
    fn release_all(&mut self, txn: u8) {
        for h in self.holders.values_mut() {
            h.remove(&txn);
        }
    }
}

#[test]
fn table_agrees_with_model() {
    for case in 0..CASES {
        let mut table = LockTable::new();
        let mut model = Model::default();
        for op in gen_ops(case, 1) {
            match op {
                Op::Acquire {
                    txn,
                    file,
                    exclusive,
                } => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let t = TxnId(txn as u64);
                    let f = FileId(file as u32);
                    let expect = model.can_grant(txn, file, mode);
                    assert_eq!(table.can_grant(t, f, mode), expect);
                    if expect {
                        table.grant(t, f, mode);
                        model.grant(txn, file, mode);
                        assert!(table.holds_sufficient(t, f, mode));
                    }
                }
                Op::ReleaseAll { txn } => {
                    let t = TxnId(txn as u64);
                    let released = table.release_all(t);
                    model.release_all(txn);
                    // Released files no longer list the txn as holder.
                    for f in released {
                        assert!(table.mode_held(t, f).is_none());
                    }
                    assert!(table.files_of(t).is_empty());
                }
            }
            // Global invariant: X-held files have exactly one holder.
            for file in 0u8..6 {
                let holders = table.holders(FileId(file as u32));
                let x_holders = holders
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Exclusive)
                    .count();
                if x_holders > 0 {
                    assert_eq!(
                        holders.len(),
                        1,
                        "X lock on F{} coexists with other holders",
                        file
                    );
                }
            }
        }
    }
}

#[test]
fn total_locks_matches_holder_sum() {
    for case in 0..CASES {
        let mut table = LockTable::new();
        for op in gen_ops(case, 2) {
            match op {
                Op::Acquire {
                    txn,
                    file,
                    exclusive,
                } => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let (t, f) = (TxnId(txn as u64), FileId(file as u32));
                    if table.can_grant(t, f, mode) {
                        table.grant(t, f, mode);
                    }
                }
                Op::ReleaseAll { txn } => {
                    table.release_all(TxnId(txn as u64));
                }
            }
        }
        let by_file: usize = (0u32..6).map(|f| table.holders(FileId(f)).len()).sum();
        assert_eq!(table.total_locks(), by_file);
    }
}

/// Upgrade requests: a Shared holder asking for Exclusive on the same
/// file. The upgrade is granted iff the requester is the only holder,
/// the row keeps the strongest mode, and a later duplicate Shared
/// grant never downgrades it.
#[test]
fn upgrade_requests_keep_strongest_mode() {
    for case in 0..CASES {
        let mut r = Xoshiro256::seed_from_u64(0x06F6 ^ case.wrapping_mul(0x9E37_79B9));
        let mut table = LockTable::new();
        let t = TxnId(1);
        let f = FileId(r.next_range(6) as u32);
        table.grant(t, f, LockMode::Shared);
        // Maybe a second sharer is in the way.
        let crowded = r.next_range(2) == 1;
        if crowded {
            table.grant(TxnId(2), f, LockMode::Shared);
        }
        let can_upgrade = table.can_grant(t, f, LockMode::Exclusive);
        assert_eq!(
            can_upgrade, !crowded,
            "case {case}: upgrade grantable iff the requester is the sole holder"
        );
        if can_upgrade {
            table.grant(t, f, LockMode::Exclusive);
            assert_eq!(table.mode_held(t, f), Some(LockMode::Exclusive));
            assert!(table.holds_sufficient(t, f, LockMode::Exclusive));
            // A duplicate weaker grant must not downgrade the row.
            table.grant(t, f, LockMode::Shared);
            assert_eq!(
                table.mode_held(t, f),
                Some(LockMode::Exclusive),
                "case {case}: duplicate S grant downgraded an X row"
            );
            // Still exactly one row for (t, f).
            assert_eq!(table.files_of(t), vec![f]);
            assert_eq!(table.total_locks(), 1);
        } else {
            // The S row survives the refused upgrade untouched.
            assert_eq!(table.mode_held(t, f), Some(LockMode::Shared));
        }
    }
}

/// Duplicate declarations: granting the same (txn, file, mode) many
/// times collapses into one row, and one release clears it.
#[test]
fn duplicate_grants_collapse_to_one_row() {
    for case in 0..CASES {
        let mut r = Xoshiro256::seed_from_u64(0xD0B1 ^ case.wrapping_mul(0x9E37_79B9));
        let mut table = LockTable::new();
        let t = TxnId(7);
        let f = FileId(r.next_range(6) as u32);
        let mode = if r.next_range(2) == 1 {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        let dups = r.next_range(5) + 2;
        for _ in 0..dups {
            assert!(table.can_grant(t, f, mode), "self-regrant is always legal");
            table.grant(t, f, mode);
        }
        assert_eq!(table.files_of(t), vec![f], "case {case}: duplicate rows");
        assert_eq!(table.total_locks(), 1, "case {case}: duplicate rows");
        assert_eq!(table.holders(f).len(), 1);
        let released = table.release_all(t);
        assert_eq!(released, vec![f], "case {case}: release not idempotent");
        assert_eq!(table.total_locks(), 0);
        assert!(table.release_all(t).is_empty(), "second release found rows");
    }
}

/// Empty lock sets: a transaction that never acquired anything is
/// invisible to the table — queries return empty/None, release is a
/// no-op, and it never blocks anyone else.
#[test]
fn empty_lock_sets_are_invisible() {
    let mut table = LockTable::new();
    let ghost = TxnId(99);
    assert!(table.files_of(ghost).is_empty());
    assert!(table.release_all(ghost).is_empty());
    for f in 0u32..6 {
        assert_eq!(table.mode_held(ghost, FileId(f)), None);
        assert!(!table.holds_sufficient(ghost, FileId(f), LockMode::Shared));
        // A ghost never conflicts with anyone.
        assert_eq!(
            table
                .conflicting_holders_iter(TxnId(1), FileId(f), LockMode::Exclusive)
                .count(),
            0
        );
    }
    // Interleave a real holder: the ghost still releases to nothing and
    // the holder's rows are untouched by the ghost's release.
    table.grant(TxnId(1), FileId(3), LockMode::Exclusive);
    assert!(table.release_all(ghost).is_empty());
    assert_eq!(
        table.mode_held(TxnId(1), FileId(3)),
        Some(LockMode::Exclusive)
    );
    assert_eq!(table.total_locks(), 1);
}

//! Scheduler safety under random interleavings: drive every locking
//! scheduler with randomized transaction mixes and request orders, and
//! verify the fundamental safety properties directly (without the
//! simulator):
//!
//! * a granted request never violates lock compatibility,
//! * the precedence constraints stay acyclic (serializability),
//! * committing always releases exactly the held files,
//! * live counts never go negative or leak.
//!
//! Mixes and schedules come from a fixed-seed [`Xoshiro256`] stream, so
//! the suite is deterministic.

use bds_des::rng::Xoshiro256;
use bds_des::time::Duration;
use bds_machine::CostBook;
use bds_sched::{ReqDecision, SchedulerKind, StartDecision};
use bds_workload::spec::{Access, Step};
use bds_workload::{BatchSpec, FileId, LockMode};
use bds_wtpg::oracle::is_serializable;
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

const CASES: u64 = 96;

fn rng(case: u64, salt: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(0x5AFE ^ salt ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A randomly generated batch over `files` files with 1–4 steps.
fn gen_spec(r: &mut Xoshiro256, files: u32) -> BatchSpec {
    let n = 1 + r.next_index(4);
    BatchSpec::new(
        (0..n)
            .map(|_| {
                let f = r.next_range(u64::from(files)) as u32;
                let write = r.next_range(2) == 1;
                let cost = 1 + r.next_range(5);
                Step {
                    file: FileId(f),
                    mode: if write {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    },
                    access: if write { Access::Write } else { Access::Read },
                    cost: cost as f64,
                    declared: cost as f64,
                }
            })
            .collect(),
    )
}

fn gen_mix(r: &mut Xoshiro256) -> (Vec<BatchSpec>, Vec<u8>) {
    let n = 1 + r.next_index(7);
    let specs = (0..n).map(|_| gen_spec(r, 6)).collect();
    let steps = r.next_index(300);
    let schedule = (0..steps).map(|_| r.next_range(256) as u8).collect();
    (specs, schedule)
}

/// Tracks the externally visible state of one transaction.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Queued,
    /// Live with the next step to request (skipping covered steps).
    Running(usize),
    Done,
}

fn drive(kind: SchedulerKind, specs: Vec<BatchSpec>, schedule: Vec<u8>) {
    let costs = CostBook {
        dd_time: Duration::from_millis(1),
        ..CostBook::default()
    };
    let mut sched = kind.build(&costs);
    let mut phases: BTreeMap<u64, Phase> = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        sched.register(TxnId(i as u64), spec.clone());
        phases.insert(i as u64, Phase::Queued);
    }
    let mut constraints = Vec::new();
    let n = specs.len() as u64;
    for pick in schedule {
        let id = (pick as u64) % n;
        let t = TxnId(id);
        let phase = phases[&id].clone();
        match phase {
            Phase::Queued => {
                if sched.try_start(t).decision == StartDecision::Admit {
                    phases.insert(id, Phase::Running(0));
                }
            }
            Phase::Running(step) => {
                let spec = &specs[id as usize];
                if step >= spec.len() {
                    // Commit.
                    assert!(sched.validate(t).decision);
                    let released = sched.commit(t);
                    // Strict 2PL: everything held is released at commit.
                    for f in &released {
                        assert!(spec.steps.iter().any(|s| s.file == *f));
                    }
                    phases.insert(id, Phase::Done);
                } else if !spec.needs_lock_request(step) {
                    sched.step_complete(t, step);
                    phases.insert(id, Phase::Running(step + 1));
                } else {
                    match sched.request(t, step).decision {
                        ReqDecision::Granted => {
                            sched.step_complete(t, step);
                            phases.insert(id, Phase::Running(step + 1));
                        }
                        ReqDecision::Blocked | ReqDecision::Delayed => {}
                        ReqDecision::Restart => {
                            sched.abort(t);
                            phases.insert(id, Phase::Queued);
                        }
                    }
                }
            }
            Phase::Done => {}
        }
        constraints.extend(sched.drain_constraints());
        assert!(
            is_serializable(&constraints),
            "{kind}: constraints became cyclic"
        );
    }
    let live_expected = phases
        .values()
        .filter(|p| matches!(p, Phase::Running(_)))
        .count();
    assert_eq!(sched.live_count(), live_expected, "{kind}: live-count leak");
}

fn drive_cases(kind: SchedulerKind, salt: u64) {
    for case in 0..CASES {
        let mut r = rng(case, salt);
        let (specs, schedule) = gen_mix(&mut r);
        drive(kind, specs, schedule);
    }
}

#[test]
fn asl_safe() {
    drive_cases(SchedulerKind::Asl, 1);
}

#[test]
fn c2pl_safe() {
    drive_cases(SchedulerKind::C2pl, 2);
}

#[test]
fn gow_safe() {
    drive_cases(SchedulerKind::Gow, 3);
}

#[test]
fn low_safe() {
    drive_cases(SchedulerKind::Low(2), 4);
}

#[test]
fn low_k1_and_k4_safe() {
    for case in 0..CASES {
        let mut r = rng(case, 5);
        let (specs, schedule) = gen_mix(&mut r);
        drive(SchedulerKind::Low(1), specs.clone(), schedule.clone());
        drive(SchedulerKind::Low(4), specs, schedule);
    }
}

#[test]
fn wdl_safe() {
    drive_cases(SchedulerKind::Wdl, 6);
}

#[test]
fn opt_validation_never_blocks() {
    for case in 0..CASES {
        let mut r = rng(case, 7);
        let (specs, schedule) = gen_mix(&mut r);
        // OPT never returns Blocked/Delayed — every request is granted.
        let costs = CostBook::default();
        let mut sched = SchedulerKind::Opt.build(&costs);
        for (i, spec) in specs.iter().enumerate() {
            sched.register(TxnId(i as u64), spec.clone());
            sched.try_start(TxnId(i as u64));
        }
        for pick in schedule {
            let id = (pick as usize) % specs.len();
            let spec = &specs[id];
            let step = (pick as usize / specs.len()) % spec.len();
            assert_eq!(
                sched.request(TxnId(id as u64), step).decision,
                ReqDecision::Granted
            );
        }
    }
}

//! Scheduler safety under random interleavings: drive every locking
//! scheduler with randomized transaction mixes and request orders, and
//! verify the fundamental safety properties directly (without the
//! simulator):
//!
//! * a granted request never violates lock compatibility,
//! * the precedence constraints stay acyclic (serializability),
//! * committing always releases exactly the held files,
//! * live counts never go negative or leak.

use bds_des::time::Duration;
use bds_machine::CostBook;
use bds_sched::{ReqDecision, Scheduler, SchedulerKind, StartDecision};
use bds_workload::spec::{Access, Step};
use bds_workload::{BatchSpec, FileId, LockMode};
use bds_wtpg::oracle::is_serializable;
use bds_wtpg::TxnId;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A randomly generated batch over `files` files with 1–4 steps.
fn arb_spec(files: u32) -> impl Strategy<Value = BatchSpec> {
    prop::collection::vec((0..files, any::<bool>(), 1u32..6), 1..5).prop_map(|steps| {
        BatchSpec::new(
            steps
                .into_iter()
                .map(|(f, write, cost)| Step {
                    file: FileId(f),
                    mode: if write {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    },
                    access: if write { Access::Write } else { Access::Read },
                    cost: cost as f64,
                    declared: cost as f64,
                })
                .collect(),
        )
    })
}

/// Tracks the externally visible state of one transaction.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Queued,
    /// Live with the next step to request (skipping covered steps).
    Running(usize),
    Done,
}

fn drive(kind: SchedulerKind, specs: Vec<BatchSpec>, schedule: Vec<u8>) {
    let costs = CostBook {
        dd_time: Duration::from_millis(1),
        ..CostBook::default()
    };
    let mut sched = kind.build(&costs);
    let mut phases: BTreeMap<u64, Phase> = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        sched.register(TxnId(i as u64), spec.clone());
        phases.insert(i as u64, Phase::Queued);
    }
    let mut constraints = Vec::new();
    let n = specs.len() as u64;
    for pick in schedule {
        let id = (pick as u64) % n;
        let t = TxnId(id);
        let phase = phases[&id].clone();
        match phase {
            Phase::Queued => {
                if sched.try_start(t).decision == StartDecision::Admit {
                    phases.insert(id, Phase::Running(0));
                }
            }
            Phase::Running(step) => {
                let spec = &specs[id as usize];
                if step >= spec.len() {
                    // Commit.
                    assert!(sched.validate(t).decision);
                    let released = sched.commit(t);
                    // Strict 2PL: everything held is released at commit.
                    for f in &released {
                        assert!(spec.steps.iter().any(|s| s.file == *f));
                    }
                    phases.insert(id, Phase::Done);
                } else if !spec.needs_lock_request(step) {
                    sched.step_complete(t, step);
                    phases.insert(id, Phase::Running(step + 1));
                } else {
                    match sched.request(t, step).decision {
                        ReqDecision::Granted => {
                            sched.step_complete(t, step);
                            phases.insert(id, Phase::Running(step + 1));
                        }
                        ReqDecision::Blocked | ReqDecision::Delayed => {}
                        ReqDecision::Restart => {
                            sched.abort(t);
                            phases.insert(id, Phase::Queued);
                        }
                    }
                }
            }
            Phase::Done => {}
        }
        constraints.extend(sched.drain_constraints());
        assert!(
            is_serializable(&constraints),
            "{kind}: constraints became cyclic"
        );
    }
    let live_expected = phases
        .values()
        .filter(|p| matches!(p, Phase::Running(_)))
        .count();
    assert_eq!(sched.live_count(), live_expected, "{kind}: live-count leak");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn asl_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::Asl, specs, schedule);
    }

    #[test]
    fn c2pl_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                 schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::C2pl, specs, schedule);
    }

    #[test]
    fn gow_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::Gow, specs, schedule);
    }

    #[test]
    fn low_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::Low(2), specs, schedule);
    }

    #[test]
    fn low_k1_and_k4_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                          schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::Low(1), specs.clone(), schedule.clone());
        drive(SchedulerKind::Low(4), specs, schedule);
    }

    #[test]
    fn wdl_safe(specs in prop::collection::vec(arb_spec(6), 1..8),
                schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        drive(SchedulerKind::Wdl, specs, schedule);
    }

    #[test]
    fn opt_validation_never_blocks(specs in prop::collection::vec(arb_spec(6), 1..8),
                                   schedule in prop::collection::vec(any::<u8>(), 0..300)) {
        // OPT never returns Blocked/Delayed — every request is granted.
        let costs = CostBook::default();
        let mut sched = SchedulerKind::Opt.build(&costs);
        for (i, spec) in specs.iter().enumerate() {
            sched.register(TxnId(i as u64), spec.clone());
            sched.try_start(TxnId(i as u64));
        }
        for pick in schedule {
            let id = (pick as usize) % specs.len();
            let spec = &specs[id];
            let step = (pick as usize / specs.len()) % spec.len();
            prop_assert_eq!(
                sched.request(TxnId(id as u64), step).decision,
                ReqDecision::Granted
            );
        }
    }
}

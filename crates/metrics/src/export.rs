//! Exporters: Prometheus text exposition and ASCII sparklines.
//!
//! (CSV and JSON renderings of a series live on
//! [`TimeSeries`](crate::series::TimeSeries) itself; this module holds
//! the formats that compose several instruments into one document.)

use crate::hist::LogHistogram;

/// Builder for the Prometheus text exposition format (version 0.0.4):
/// `# HELP` / `# TYPE` headers plus one sample line per metric, with
/// optional `{label="value"}` pairs. Headers are emitted once per
/// metric name — repeated calls for the same family (per-shard or
/// per-phase series) append samples under the first header, as the
/// format requires.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
    headered: std::collections::BTreeSet<String>,
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if !self.headered.insert(name.to_string()) {
            return;
        }
        // Help text escapes backslash and line feed per the format.
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        self.buf
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// Append a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.buf
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Append a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        self.buf.push_str(&format!(
            "{name}{} {}\n",
            render_labels(labels),
            render_value(value)
        ));
    }

    /// Append a histogram: one `_bucket` line per non-empty log bucket
    /// (cumulative, `le`-labelled), the `+Inf` bucket, `_sum` and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &LogHistogram) {
        self.header(name, help, "histogram");
        for (le, cum) in h.cumulative_buckets() {
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            let le_s = render_value(le);
            ls.push(("le", &le_s));
            self.buf
                .push_str(&format!("{name}_bucket{} {cum}\n", render_labels(&ls)));
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.buf.push_str(&format!(
            "{name}_bucket{} {}\n",
            render_labels(&ls),
            h.total()
        ));
        let base = render_labels(labels);
        self.buf.push_str(&format!(
            "{name}_sum{base} {}\n",
            render_value(h.sum_secs())
        ));
        self.buf
            .push_str(&format!("{name}_count{base} {}\n", h.total()));
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Validate a Prometheus text exposition document as produced by
/// [`PromText`]. Checks, line by line:
///
/// * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names
///   `[a-zA-Z_][a-zA-Z0-9_]*`;
/// * label values use only the legal escapes (`\\`, `\"`, `\n`);
/// * sample values parse as a float or `NaN` / `+Inf` / `-Inf`;
/// * at most one `# TYPE` per metric name, with a known kind, and every
///   sample's family (the name less a `_bucket`/`_sum`/`_count`
///   histogram suffix) carries one;
/// * no duplicate series: a (name, sorted label set) pair appears once.
///
/// Returns the first violation as `Err`. Deliberately stricter than a
/// scrape parser — arbitrary `#` comments and timestamps, which the
/// format allows but [`PromText`] never writes, are rejected.
pub fn check_exposition(text: &str) -> Result<(), String> {
    fn valid_name(s: &str, allow_colon: bool) -> bool {
        let mut chars = s.chars();
        let Some(first) = chars.next() else {
            return false;
        };
        let head_ok = first.is_ascii_alphabetic() || first == '_' || (allow_colon && first == ':');
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
    }
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {ln}: TYPE without a kind"))?;
                if !valid_name(name, true) {
                    return Err(format!("line {ln}: bad metric name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {ln}: unknown TYPE kind {kind:?}"));
                }
                if !typed.insert(name.to_string()) {
                    return Err(format!("line {ln}: duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_name(name, true) {
                    return Err(format!("line {ln}: bad metric name {name:?}"));
                }
            } else {
                return Err(format!("line {ln}: unexpected comment {line:?}"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: sample without a value: {line:?}"))?;
        if !(value == "NaN" || value == "+Inf" || value == "-Inf") && value.parse::<f64>().is_err()
        {
            return Err(format!("line {ln}: bad sample value {value:?}"));
        }
        let (name, label_body) = match series.find('{') {
            Some(at) => {
                let body = series[at..]
                    .strip_prefix('{')
                    .and_then(|b| b.strip_suffix('}'))
                    .ok_or_else(|| format!("line {ln}: unterminated label block"))?;
                (&series[..at], Some(body))
            }
            None => (series, None),
        };
        if !valid_name(name, true) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        let mut labels: Vec<(String, String)> = Vec::new();
        if let Some(body) = label_body {
            let mut chars = body.chars();
            loop {
                let mut key = String::new();
                let mut next = chars.next();
                while let Some(c) = next {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                    next = chars.next();
                }
                if next != Some('=') {
                    return Err(format!("line {ln}: label without '=': {body:?}"));
                }
                if !valid_name(&key, false) {
                    return Err(format!("line {ln}: bad label name {key:?}"));
                }
                if chars.next() != Some('"') {
                    return Err(format!("line {ln}: unquoted value for label {key}"));
                }
                // Keep the escaped form; only validate the escapes.
                let mut val = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some(e @ ('\\' | '"' | 'n')) => {
                                val.push('\\');
                                val.push(e);
                            }
                            other => {
                                return Err(format!(
                                    "line {ln}: illegal escape \\{} in label {key}",
                                    other.map(String::from).unwrap_or_default()
                                ))
                            }
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        c => val.push(c),
                    }
                }
                if !closed {
                    return Err(format!("line {ln}: unterminated value for label {key}"));
                }
                labels.push((key, val));
                match chars.next() {
                    None => break,
                    Some(',') => continue,
                    Some(c) => return Err(format!("line {ln}: junk {c:?} after label value")),
                }
            }
        }
        labels.sort();
        let series_key = format!("{name}{labels:?}");
        if !seen.insert(series_key) {
            return Err(format!("line {ln}: duplicate series {series:?}"));
        }
        let family_typed = typed.contains(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| typed.contains(base))
            });
        if !family_typed {
            return Err(format!("line {ln}: sample {name} has no TYPE header"));
        }
    }
    Ok(())
}

/// Render a value sequence as a one-line ASCII sparkline using the eight
/// block glyphs `▁▂▃▄▅▆▇█`, scaled to the sequence's own min/max.
/// Non-finite values render as `·`; an empty slice yields an empty
/// string.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return values.iter().map(|_| '·').collect();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else {
                let t = ((v - lo) / span * 7.0).round() as usize;
                GLYPHS[t.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let mut p = PromText::new();
        p.counter("bds_commits_total", "Commits.", &[("sched", "GOW")], 42);
        p.gauge("bds_util", "Utilization.", &[], 0.5);
        let s = p.finish();
        assert!(s.contains("# TYPE bds_commits_total counter"));
        assert!(s.contains("bds_commits_total{sched=\"GOW\"} 42"));
        assert!(s.contains("bds_util 0.5"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut h = LogHistogram::new();
        h.record_secs(0.5);
        h.record_secs(0.5);
        h.record_secs(2.0);
        let mut p = PromText::new();
        p.histogram("bds_rt_seconds", "RT.", &[("sched", "LOW")], &h);
        let s = p.finish();
        assert!(s.contains("# TYPE bds_rt_seconds histogram"));
        assert!(s.contains("bds_rt_seconds_bucket{sched=\"LOW\",le=\"+Inf\"} 3"));
        assert!(s.contains("bds_rt_seconds_count{sched=\"LOW\"} 3"));
        assert!(s.contains("bds_rt_seconds_sum{sched=\"LOW\"} 3"));
        // Two finite buckets (0.5 s ×2 and 2.0 s), cumulative.
        let buckets: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("_bucket") && !l.contains("+Inf"))
            .collect();
        assert_eq!(buckets.len(), 2);
        assert!(buckets[0].ends_with(" 2"));
        assert!(buckets[1].ends_with(" 3"));
    }

    #[test]
    fn label_escaping() {
        let mut p = PromText::new();
        p.gauge("g", "h.", &[("l", "a\"b\\c")], 1.0);
        assert!(p.finish().contains(r#"g{l="a\"b\\c"} 1"#));
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[f64::NAN, 1.0]), "·▁");
    }
}

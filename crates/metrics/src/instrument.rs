//! Core instruments: lock-free counters and gauges.
//!
//! Both are thin wrappers over relaxed atomics so they can be bumped
//! from the parallel executor's worker threads without a lock; on the
//! single-threaded simulator hot path they compile to plain adds.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge (bit-cast through `u64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn counter_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}

//! `bds-metrics` — live telemetry for the batch-scheduling simulator.
//!
//! Four pieces, all dependency-free:
//!
//! * [`instrument`] — lock-free [`Counter`]/[`Gauge`] primitives.
//! * [`hist`] — [`LogHistogram`], an HDR-style log-bucketed histogram
//!   with ≤ 1 % relative error, exact merge, and O(1) recording. This
//!   replaces the legacy 1-second-bin percentile path in the simulator
//!   report.
//! * [`series`] — [`TimeSeries`] (fixed-Δt named columns) and
//!   [`Sampler`], the enum-dispatch handle that keeps sampling at one
//!   predictable branch per event when disabled, mirroring
//!   `bds-trace::Tracer`.
//! * [`export`]/[`jsonv`]/[`regress`] — Prometheus text and sparkline
//!   rendering, a JSON reader, and the bench-regression comparison core
//!   used by the `benchdiff` CLI and `repro`'s baseline delta line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod instrument;
pub mod jsonv;
pub mod regress;
pub mod series;

pub use export::{check_exposition, sparkline, PromText};
pub use hist::{LogHistogram, REL_ERROR, TICKS_PER_SEC};
pub use instrument::{Counter, Gauge};
pub use jsonv::{parse, JsonValue};
pub use regress::{compare, DiffReport, Tolerances};
pub use series::{ActiveSampler, Sampler, TimeSeries};

//! Log-bucketed histogram with bounded relative error and exact merge.
//!
//! [`LogHistogram`] replaces the fixed 1-second-bin percentile path that
//! quantized every reported response-time percentile to whole seconds.
//! Values are recorded in integer **ticks** (1 tick = 1 µs) and bucketed
//! HDR-style: the first 128 ticks get exact unit buckets, and every
//! octave above that is split into 64 sub-buckets, so above the linear
//! range the bucket half-width never exceeds `1/128` of the value — a
//! guaranteed relative error below **0.79 %** for any quantile query
//! (see [`REL_ERROR`]); within the linear range the error is absolute
//! and at most half a tick (0.5 µs).
//!
//! Merging is *exact*: bucket counts, totals and the (128-bit) tick sum
//! add component-wise, so merging per-shard histograms yields the same
//! histogram as recording the concatenated stream — a property the
//! parallel experiment executor relies on and the property tests pin.

/// Sub-bucket resolution: `2^SUB_BITS` unit buckets in the linear range,
/// `2^(SUB_BITS-1)` sub-buckets per octave above it.
const SUB_BITS: u32 = 7;
/// Size of the exact linear range (`[0, LINEAR)` ticks).
const LINEAR: u64 = 1 << SUB_BITS;
/// Sub-buckets per octave above the linear range.
const PER_OCTAVE: usize = (LINEAR / 2) as usize;

/// Ticks per second: values are stored at microsecond resolution.
pub const TICKS_PER_SEC: f64 = 1_000_000.0;

/// Worst-case relative error of a quantile estimate: half of one
/// sub-bucket width relative to the bucket's lowest value.
pub const REL_ERROR: f64 = 1.0 / LINEAR as f64;

/// A log-bucketed (HDR-like) histogram over non-negative values.
///
/// Construction is free; bucket storage grows lazily with the largest
/// recorded value (at most ~3.8 k buckets even for `u64::MAX` ticks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ticks: u128,
    min_ticks: u64,
    max_ticks: u64,
}

/// Bucket index for a tick value.
#[inline]
fn index_of(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        // v ∈ [2^msb, 2^(msb+1)); shifting by msb-6 lands in [64, 128).
        let msb = 63 - v.leading_zeros();
        let shift = msb - (SUB_BITS - 1);
        let base = LINEAR as usize + (msb - SUB_BITS) as usize * PER_OCTAVE;
        base + ((v >> shift) as usize - PER_OCTAVE)
    }
}

/// Inclusive-low tick value and width of a bucket.
#[inline]
fn bucket_low_width(idx: usize) -> (u64, u64) {
    if idx < LINEAR as usize {
        (idx as u64, 1)
    } else {
        let octave = (idx - LINEAR as usize) / PER_OCTAVE;
        let pos = (idx - LINEAR as usize) % PER_OCTAVE;
        let shift = octave as u32 + 1;
        (((PER_OCTAVE + pos) as u64) << shift, 1u64 << shift)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            total: 0,
            sum_ticks: 0,
            min_ticks: u64::MAX,
            max_ticks: 0,
        }
    }

    /// Record a value in ticks.
    pub fn record_ticks(&mut self, v: u64) {
        let idx = index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ticks += v as u128;
        self.min_ticks = self.min_ticks.min(v);
        self.max_ticks = self.max_ticks.max(v);
    }

    /// Record a value in seconds, rounded to the nearest tick (µs);
    /// negatives clamp to zero.
    pub fn record_secs(&mut self, secs: f64) {
        let ticks = if secs <= 0.0 || !secs.is_finite() {
            0
        } else {
            (secs * TICKS_PER_SEC).round() as u64
        };
        self.record_ticks(ticks);
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ticks as f64 / self.total as f64 / TICKS_PER_SEC
        }
    }

    /// Exact sum of all recorded values, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_ticks as f64 / TICKS_PER_SEC
    }

    /// Smallest recorded value in seconds (`None` when empty).
    pub fn min_secs(&self) -> Option<f64> {
        (self.total > 0).then(|| self.min_ticks as f64 / TICKS_PER_SEC)
    }

    /// Largest recorded value in seconds (`None` when empty).
    pub fn max_secs(&self) -> Option<f64> {
        (self.total > 0).then(|| self.max_ticks as f64 / TICKS_PER_SEC)
    }

    /// The full histogram state
    /// `(counts, total, sum_ticks, min_ticks, max_ticks)`, for
    /// checkpointing.
    pub fn state(&self) -> (&[u64], u64, u128, u64, u64) {
        (
            &self.counts,
            self.total,
            self.sum_ticks,
            self.min_ticks,
            self.max_ticks,
        )
    }

    /// Rebuild a histogram from a state captured by
    /// [`LogHistogram::state`].
    ///
    /// # Panics
    /// Panics if the bucket counts do not sum to `total`.
    pub fn from_state(
        counts: Vec<u64>,
        total: u64,
        sum_ticks: u128,
        min_ticks: u64,
        max_ticks: u64,
    ) -> Self {
        assert_eq!(
            counts.iter().sum::<u64>(),
            total,
            "LogHistogram: bucket counts disagree with total"
        );
        LogHistogram {
            counts,
            total,
            sum_ticks,
            min_ticks,
            max_ticks,
        }
    }

    /// Merge another histogram into this one. Exact: the result equals a
    /// histogram of both input streams concatenated.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ticks += other.sum_ticks;
        self.min_ticks = self.min_ticks.min(other.min_ticks);
        self.max_ticks = self.max_ticks.max(other.max_ticks);
    }

    /// `q`-quantile (`0 ≤ q ≤ 1`) in seconds, `None` when empty. The
    /// estimate is the midpoint of the bucket holding the target rank,
    /// so its relative error is bounded by [`REL_ERROR`] (plus half a
    /// tick of rounding at record time).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                let (low, width) = bucket_low_width(idx);
                return Some((low as f64 + width as f64 / 2.0) / TICKS_PER_SEC);
            }
        }
        unreachable!("cumulative count never reached total")
    }

    /// Non-empty buckets as `(upper_bound_secs, cumulative_count)` pairs
    /// in ascending order — the shape Prometheus histogram exposition
    /// wants for its `le` labels (the `+Inf` bucket is the caller's).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let (low, width) = bucket_low_width(idx);
            out.push(((low + width) as f64 / TICKS_PER_SEC, cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bucket_low_width(v as usize), (v, 1));
        }
    }

    #[test]
    fn index_and_decode_are_consistent() {
        // Every bucket's low value must map back to the same bucket, and
        // so must its highest contained value. The last representable
        // bucket is index_of(u64::MAX); its top edge is exactly u64::MAX.
        let last = index_of(u64::MAX);
        for idx in 0..=last {
            let (low, width) = bucket_low_width(idx);
            assert_eq!(index_of(low), idx, "low of bucket {idx}");
            assert_eq!(index_of(low + (width - 1)), idx, "high of bucket {idx}");
            match low.checked_add(width) {
                Some(next) => assert_eq!(index_of(next), idx + 1, "next after bucket {idx}"),
                None => assert_eq!(idx, last, "only the top bucket may end at u64::MAX"),
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Above the linear range the error is relative; within it,
        // absolute (half a tick).
        for &v in &[128u64, 129, 1000, 7_200_000, 123_456_789, u64::MAX / 3] {
            let (low, width) = bucket_low_width(index_of(v));
            let mid = low as f64 + width as f64 / 2.0;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(err <= REL_ERROR, "v={v}: err {err}");
        }
        for &v in &[0u64, 1, 17, 127] {
            let (low, width) = bucket_low_width(index_of(v));
            let mid = low as f64 + width as f64 / 2.0;
            assert!((mid - v as f64).abs() <= 0.5, "v={v}");
        }
    }

    #[test]
    fn quantiles_track_exact_values() {
        let mut h = LogHistogram::new();
        // Response times around 7.2 s with millisecond spread.
        for i in 0..1000u64 {
            h.record_secs(7.2 + i as f64 * 1e-4);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 7.25).abs() < 7.25 * 2.0 * REL_ERROR, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 7.299).abs() < 7.3 * 2.0 * REL_ERROR, "p99 {p99}");
        // Sub-second resolution: the estimate is nowhere near the 0.5 s
        // quantization the old fixed-bin histogram imposed.
        assert!((p50 - 7.5).abs() > 0.1);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        h.record_secs(1.0);
        h.record_secs(2.0);
        h.record_secs(6.0);
        assert!((h.mean_secs() - 3.0).abs() < 1e-9);
        assert_eq!(h.min_secs(), Some(1.0));
        assert_eq!(h.max_secs(), Some(6.0));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn merge_is_exact() {
        let vals: Vec<u64> = (0..500).map(|i| (i * i * 37 + 11) % 10_000_000).collect();
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record_ticks(v);
            if i % 3 == 0 {
                a.record_ticks(v);
            } else {
                b.record_ticks(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_and_negative_handling() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min_secs(), None);
        h.record_secs(-3.0);
        assert_eq!(h.quantile(0.5), Some(0.5 / TICKS_PER_SEC));
    }

    #[test]
    fn cumulative_buckets_reach_total() {
        let mut h = LogHistogram::new();
        for v in [5u64, 5, 1000, 2_000_000] {
            h.record_ticks(v);
        }
        let b = h.cumulative_buckets();
        assert_eq!(b.last().unwrap().1, h.total());
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}

//! A minimal JSON value tree and recursive-descent parser.
//!
//! The workspace carries no external serialization dependency; the
//! hand-rolled *writers* live in `bds-trace::json`. This module adds the
//! *reader* side, needed by `benchdiff` to compare `BENCH_*.json` files
//! and by `repro` to print its delta against the committed baseline.
//! It parses the JSON the workspace itself emits (plus standard escapes
//! and nesting); numbers are `f64`, like every JSON consumer we target.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", JsonValue::Null),
            Some(b't') => self.eat_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates (emitted only for non-BMP chars,
                            // which our writers never produce) map to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances past ASCII bytes or whole
                    // scalars, so it always sits on a char boundary.
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_shaped_documents() {
        let doc = r#"{"bin":"repro","total_secs":12.5,"quick":true,
                      "artifacts":[{"id":"fig8","secs":1.25,"sim_runs":36}],
                      "none":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bin").and_then(JsonValue::as_str), Some("repro"));
        assert_eq!(v.get("total_secs").and_then(JsonValue::as_num), Some(12.5));
        assert_eq!(v.get("quick"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let arts = v.get("artifacts").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            arts[0].get("sim_runs").and_then(JsonValue::as_num),
            Some(36.0)
        );
    }

    #[test]
    fn roundtrips_writer_output() {
        use bds_trace::json::JsonObj;
        let mut o = JsonObj::new();
        o.str("s", "a\"b\\c\nd\te\u{1}");
        o.num("x", -1.5e-3);
        o.opt_num("inf", Some(f64::INFINITY)); // writer emits null
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("s").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
        assert_eq!(v.get("x").and_then(JsonValue::as_num), Some(-1.5e-3));
        assert_eq!(v.get("inf"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nested_and_whitespace() {
        let v = parse(" [ { \"a\" : [ 1 , 2 ] } , \"x\" , -3 ] ").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(
            arr[0].get("a").and_then(JsonValue::as_arr).unwrap().len(),
            2
        );
        assert_eq!(arr[2].as_num(), Some(-3.0));
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v = parse("\"a\\u00e9\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("a\u{e9}\u{e9}"));
    }
}

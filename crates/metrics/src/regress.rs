//! Bench regression comparison: the core of the `benchdiff` CLI.
//!
//! Compares two `BENCH_*.json` documents (as produced by `repro`)
//! metric by metric. Metrics are classified by their leaf key:
//!
//! * **time** — wall-clock and overhead measurements (`secs`,
//!   `*_secs`, `*_pct`, `*ns_per*`): noisy across machines, so a
//!   regression means the current value is worse than baseline by more
//!   than a configurable relative tolerance *plus* a per-unit absolute
//!   floor (lower is always better for these).
//! * **count** — deterministic integers (`completed`, `sim_runs`,
//!   `cache_hits`, `events`, …): the simulator is a pure function of
//!   its config, so any drift is a behavioral change and fails the
//!   gate regardless of tolerance.
//! * **config** — run parameters (`jobs`, `horizon_secs`,
//!   `bisect_iters`, `quick`, string labels): must match exactly,
//!   otherwise the two documents measured different experiments and
//!   the comparison itself is invalid.
//!
//! Metrics present in the baseline but missing from the current run are
//! reported (and fail only under `strict_missing`); new metrics are
//! listed and ignored, so the schema can grow without re-pinning.

use crate::jsonv::JsonValue;
use bds_trace::json::{JsonArr, JsonObj};

/// How a metric participates in the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricClass {
    /// Lower-is-better measurement with noise; `abs_floor` is the
    /// minimum absolute worsening (in the metric's own unit) that can
    /// ever count as a regression.
    Time {
        /// Absolute slack in the metric's unit.
        abs_floor: f64,
    },
    /// Higher-is-better measurement with noise (throughput rates);
    /// regresses when the current value drops below baseline by more
    /// than the relative tolerance and `abs_floor`.
    Rate {
        /// Absolute slack in the metric's unit.
        abs_floor: f64,
    },
    /// Deterministic integer; must match exactly.
    Count,
    /// Run parameter; must match exactly or the comparison is invalid.
    Config,
}

impl MetricClass {
    /// Stable label for machine-readable output.
    pub fn label(&self) -> &'static str {
        match self {
            MetricClass::Time { .. } => "time",
            MetricClass::Rate { .. } => "rate",
            MetricClass::Count => "count",
            MetricClass::Config => "config",
        }
    }
}

/// Classify a metric by its leaf key.
pub fn classify(key: &str) -> MetricClass {
    match key {
        "jobs" | "bisect_iters" | "horizon_secs" | "lambda_tps" | "dd" | "capacity" => {
            MetricClass::Config
        }
        _ if key.contains("ns_per") => MetricClass::Time { abs_floor: 1.0 },
        _ if key.ends_with("_pct") => MetricClass::Time { abs_floor: 2.0 },
        _ if key == "secs" || key.ends_with("_secs") => MetricClass::Time { abs_floor: 0.25 },
        // Peak RSS (MiB): lower-better but allocator/OS dependent, so a
        // generous floor keeps shared runners from tripping the gate.
        _ if key.ends_with("_mib") => MetricClass::Time { abs_floor: 32.0 },
        // Throughput (events/s, M events/s, …): higher-better, noisy.
        _ if key.contains("per_sec") => MetricClass::Rate { abs_floor: 0.2 },
        // Parallel speedup ratios: higher-better, and strongly
        // machine-dependent (a 1-core runner records ≈ 1×, an 8-core
        // records 3×+), so only a collapse below the recorded baseline
        // gates — never an improvement.
        _ if key.ends_with("_speedup") => MetricClass::Rate { abs_floor: 0.3 },
        _ => MetricClass::Count,
    }
}

/// Comparison tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Allowed relative worsening for time metrics (0.5 = +50 %).
    pub time_rel: f64,
    /// Skip time metrics entirely (counts and config still gate).
    pub ignore_time: bool,
    /// Treat metrics missing from the current document as regressions.
    pub strict_missing: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            time_rel: 0.5,
            ignore_time: false,
            strict_missing: false,
        }
    }
}

/// One compared numeric metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path of the metric (`schedulers[GOW].secs`).
    pub path: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Classification used.
    pub class: MetricClass,
    /// True when this metric fails the gate.
    pub regressed: bool,
}

impl Delta {
    /// Relative change (`+0.12` = 12 % higher than baseline), `inf`
    /// when the baseline is zero and the value moved.
    pub fn rel_change(&self) -> f64 {
        if self.base == 0.0 {
            if self.cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.cur - self.base) / self.base.abs()
        }
    }
}

/// The outcome of comparing two bench documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All compared numeric metrics.
    pub deltas: Vec<Delta>,
    /// Config/string/bool mismatches (always fail the gate).
    pub mismatches: Vec<String>,
    /// Baseline metrics missing from the current document.
    pub missing: Vec<String>,
    /// Current metrics absent from the baseline (informational).
    pub added: Vec<String>,
    /// Whether missing metrics fail the gate.
    strict_missing: bool,
}

impl DiffReport {
    /// Does the current document regress against the baseline?
    pub fn regressed(&self) -> bool {
        !self.mismatches.is_empty()
            || self.deltas.iter().any(|d| d.regressed)
            || (self.strict_missing && !self.missing.is_empty())
    }

    /// Metrics that failed the gate, worst first.
    pub fn regressions(&self) -> Vec<&Delta> {
        let mut v: Vec<&Delta> = self.deltas.iter().filter(|d| d.regressed).collect();
        v.sort_by(|a, b| {
            b.rel_change()
                .partial_cmp(&a.rel_change())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    /// One-line summary for run footers, e.g.
    /// `ok: 23 time metrics within +50% (worst total_secs +12.3%), 41 counts exact`.
    pub fn summary_line(&self) -> String {
        let times: Vec<&Delta> = self
            .deltas
            .iter()
            .filter(|d| matches!(d.class, MetricClass::Time { .. } | MetricClass::Rate { .. }))
            .collect();
        let counts = self.deltas.len() - times.len();
        let worst = times.iter().max_by(|a, b| {
            a.rel_change()
                .partial_cmp(&b.rel_change())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let worst_s = match worst {
            Some(d) => format!(" (worst {} {})", d.path, fmt_rel(d.rel_change())),
            None => String::new(),
        };
        if self.regressed() {
            let n = self.regressions().len() + self.mismatches.len();
            format!(
                "REGRESSION: {n} metric(s) failed — {} time compared{worst_s}, {counts} counts",
                times.len()
            )
        } else {
            format!(
                "ok: {} time metrics within tolerance{worst_s}, {counts} counts exact",
                times.len()
            )
        }
    }

    /// All compared metrics sorted by severity: regressions first, each
    /// group worst relative change first. This is the row order of both
    /// `render()` and `to_json()`.
    pub fn by_severity(&self) -> Vec<&Delta> {
        let mut v: Vec<&Delta> = self.deltas.iter().collect();
        v.sort_by(|a, b| {
            b.regressed.cmp(&a.regressed).then(
                b.rel_change()
                    .partial_cmp(&a.rel_change())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        v
    }

    /// Machine-readable rendering: the full per-metric delta table
    /// (severity-sorted), schema drift, and the gate verdict, as one
    /// JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.bool("regressed", self.regressed());
        o.str("summary", &self.summary_line());
        let mut deltas = JsonArr::new();
        for d in self.by_severity() {
            let mut e = JsonObj::new();
            e.str("path", &d.path);
            e.str("class", d.class.label());
            e.num("base", d.base);
            e.num("cur", d.cur);
            // Infinite (zero-baseline) changes serialize as null.
            e.num("rel_change", d.rel_change());
            e.bool("regressed", d.regressed);
            deltas.raw(&e.finish());
        }
        o.raw("deltas", &deltas.finish());
        for (key, items) in [
            ("mismatches", &self.mismatches),
            ("missing", &self.missing),
            ("added", &self.added),
        ] {
            let mut arr = JsonArr::new();
            for s in items {
                arr.str(s);
            }
            o.raw(key, &arr.finish());
        }
        o.finish()
    }

    /// Full multi-line rendering (regressions, mismatches, schema drift).
    /// Regression rows are column-aligned and sorted worst-first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rows: Vec<(&Delta, String, String, String)> = self
            .regressions()
            .into_iter()
            .map(|d| (d, fmt_val(d.base), fmt_val(d.cur), fmt_rel(d.rel_change())))
            .collect();
        let w_path = rows.iter().map(|(d, ..)| d.path.len()).max().unwrap_or(0);
        let w_base = rows.iter().map(|(_, b, ..)| b.len()).max().unwrap_or(0);
        let w_cur = rows.iter().map(|(_, _, c, _)| c.len()).max().unwrap_or(0);
        for (d, base, cur, rel) in &rows {
            out.push_str(&format!(
                "REGRESSION  {:<w_path$}  {base:>w_base$} -> {cur:>w_cur$}  ({rel})\n",
                d.path,
            ));
        }
        for m in &self.mismatches {
            out.push_str(&format!("MISMATCH    {m}\n"));
        }
        for m in &self.missing {
            out.push_str(&format!(
                "{}     {m}: in baseline but not in current run\n",
                if self.strict_missing {
                    "MISSING"
                } else {
                    "missing"
                }
            ));
        }
        for a in &self.added {
            out.push_str(&format!("new         {a}: not in baseline (ignored)\n"));
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }
}

fn fmt_val(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn fmt_rel(r: f64) -> String {
    if r.is_infinite() {
        "+inf%".into()
    } else {
        format!("{:+.1}%", r * 100.0)
    }
}

/// Label an array element for paths: use its `id`/`scheduler` member
/// when present so reordering doesn't shuffle metric identities.
fn element_key(v: &JsonValue, idx: usize) -> String {
    for k in ["id", "scheduler", "bin", "name"] {
        if let Some(s) = v.get(k).and_then(JsonValue::as_str) {
            return s.to_string();
        }
    }
    idx.to_string()
}

fn walk(
    path: &str,
    base: &JsonValue,
    cur: Option<&JsonValue>,
    tol: &Tolerances,
    out: &mut DiffReport,
) {
    let Some(cur) = cur else {
        out.missing.push(path.to_string());
        return;
    };
    match (base, cur) {
        (JsonValue::Obj(bm), JsonValue::Obj(_)) => {
            for (k, bv) in bm {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(&child, bv, cur.get(k), tol, out);
            }
            if let JsonValue::Obj(cm) = cur {
                for (k, _) in cm {
                    if base.get(k).is_none() {
                        out.added.push(format!("{path}.{k}"));
                    }
                }
            }
        }
        (JsonValue::Arr(ba), JsonValue::Arr(ca)) => {
            // Match elements by their id label when available, falling
            // back to position.
            for (i, bv) in ba.iter().enumerate() {
                let key = element_key(bv, i);
                let child = format!("{path}[{key}]");
                let matched = ca
                    .iter()
                    .enumerate()
                    .find(|(j, cv)| element_key(cv, *j) == key)
                    .map(|(_, cv)| cv);
                walk(&child, bv, matched, tol, out);
            }
            if ca.len() > ba.len() {
                out.added.push(format!("{path}[{}..]", ba.len()));
            }
        }
        (JsonValue::Num(b), JsonValue::Num(c)) => {
            let leaf = path.rsplit('.').next().unwrap_or(path);
            let leaf = leaf.split('[').next().unwrap_or(leaf);
            let class = classify(leaf);
            let regressed = match class {
                MetricClass::Time { abs_floor } => {
                    !tol.ignore_time && *c > *b + (tol.time_rel * b.abs()).max(abs_floor)
                }
                MetricClass::Rate { abs_floor } => {
                    !tol.ignore_time && *c < *b - (tol.time_rel * b.abs()).max(abs_floor)
                }
                MetricClass::Count => (c - b).abs() > 1e-9,
                MetricClass::Config => {
                    if (c - b).abs() > 1e-9 {
                        out.mismatches.push(format!(
                            "{path}: config differs (baseline {}, current {})",
                            fmt_val(*b),
                            fmt_val(*c)
                        ));
                    }
                    false
                }
            };
            out.deltas.push(Delta {
                path: path.to_string(),
                base: *b,
                cur: *c,
                class,
                regressed,
            });
        }
        (JsonValue::Str(b), JsonValue::Str(c)) => {
            if b != c {
                out.mismatches.push(format!("{path}: \"{b}\" vs \"{c}\""));
            }
        }
        (JsonValue::Bool(b), JsonValue::Bool(c)) => {
            if b != c {
                out.mismatches.push(format!("{path}: {b} vs {c}"));
            }
        }
        (JsonValue::Null, JsonValue::Null) => {}
        _ => {
            out.mismatches
                .push(format!("{path}: type changed between documents"));
        }
    }
}

/// Compare a current bench document against a baseline.
pub fn compare(base: &JsonValue, cur: &JsonValue, tol: &Tolerances) -> DiffReport {
    let mut out = DiffReport {
        strict_missing: tol.strict_missing,
        ..DiffReport::default()
    };
    walk("", base, Some(cur), tol, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::parse;

    fn cmp(base: &str, cur: &str, tol: Tolerances) -> DiffReport {
        compare(&parse(base).unwrap(), &parse(cur).unwrap(), &tol)
    }

    #[test]
    fn rate_metrics_regress_downward_only() {
        // Higher throughput is fine…
        let r = cmp(
            r#"{"events_per_sec_m":3.0,"completed":5}"#,
            r#"{"events_per_sec_m":4.5,"completed":5}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed(), "{}", r.render());
        // …a collapse is a regression…
        let r = cmp(
            r#"{"events_per_sec_m":3.0,"completed":5}"#,
            r#"{"events_per_sec_m":1.0,"completed":5}"#,
            Tolerances::default(),
        );
        assert!(r.regressed(), "{}", r.render());
        assert_eq!(r.regressions()[0].path, "events_per_sec_m");
        // …and small dips sit inside the tolerance.
        let r = cmp(
            r#"{"events_per_sec_m":3.0,"completed":5}"#,
            r#"{"events_per_sec_m":2.8,"completed":5}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed(), "{}", r.render());
    }

    #[test]
    fn speedup_metrics_regress_downward_only() {
        // A beefier runner than the baseline machine is never a failure…
        let r = cmp(
            r#"{"sharded_speedup":1.1}"#,
            r#"{"sharded_speedup":3.2}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed(), "{}", r.render());
        // …but a collapse below baseline-minus-slack is.
        let r = cmp(
            r#"{"sharded_speedup":2.5}"#,
            r#"{"sharded_speedup":0.8}"#,
            Tolerances::default(),
        );
        assert!(r.regressed(), "{}", r.render());
        assert_eq!(r.regressions()[0].path, "sharded_speedup");
    }

    #[test]
    fn rss_metrics_get_an_absolute_floor() {
        // +20 MiB on a 13 MiB baseline is huge relatively but inside
        // the allocator-noise floor.
        let r = cmp(
            r#"{"peak_rss_mib":13.0}"#,
            r#"{"peak_rss_mib":33.0}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed(), "{}", r.render());
        let r = cmp(
            r#"{"peak_rss_mib":13.0}"#,
            r#"{"peak_rss_mib":200.0}"#,
            Tolerances::default(),
        );
        assert!(r.regressed(), "{}", r.render());
    }

    #[test]
    fn identical_documents_pass() {
        let doc = r#"{"total_secs":10.0,"completed":500,"jobs":2}"#;
        let r = cmp(doc, doc, Tolerances::default());
        assert!(!r.regressed(), "{}", r.render());
        assert_eq!(r.deltas.len(), 3);
    }

    #[test]
    fn time_within_tolerance_passes() {
        let r = cmp(
            r#"{"total_secs":10.0}"#,
            r#"{"total_secs":14.0}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed());
    }

    #[test]
    fn injected_time_regression_fails() {
        let r = cmp(
            r#"{"total_secs":10.0}"#,
            r#"{"total_secs":16.0}"#,
            Tolerances::default(),
        );
        assert!(r.regressed());
        assert_eq!(r.regressions()[0].path, "total_secs");
        assert!(r.summary_line().starts_with("REGRESSION"));
    }

    #[test]
    fn time_improvement_passes() {
        let r = cmp(
            r#"{"total_secs":10.0}"#,
            r#"{"total_secs":2.0}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed());
    }

    #[test]
    fn tiny_time_base_uses_absolute_floor() {
        // 0.01 s -> 0.2 s is +1900 % but only +0.19 s: under the 0.25 s
        // floor, not a regression.
        let r = cmp(r#"{"secs":0.01}"#, r#"{"secs":0.2}"#, Tolerances::default());
        assert!(!r.regressed(), "{}", r.render());
    }

    #[test]
    fn count_drift_always_fails() {
        let r = cmp(
            r#"{"completed":500}"#,
            r#"{"completed":501}"#,
            Tolerances {
                time_rel: 1e9,
                ..Tolerances::default()
            },
        );
        assert!(r.regressed());
    }

    #[test]
    fn config_mismatch_fails() {
        let r = cmp(r#"{"jobs":2}"#, r#"{"jobs":4}"#, Tolerances::default());
        assert!(r.regressed());
        assert_eq!(r.mismatches.len(), 1);
    }

    #[test]
    fn ignore_time_skips_time_only() {
        let tol = Tolerances {
            ignore_time: true,
            ..Tolerances::default()
        };
        let r = cmp(
            r#"{"total_secs":1.0,"completed":5}"#,
            r#"{"total_secs":99.0,"completed":5}"#,
            tol,
        );
        assert!(!r.regressed());
    }

    #[test]
    fn arrays_match_by_id_label() {
        let base = r#"{"artifacts":[{"id":"fig8","sim_runs":36},{"id":"table2","sim_runs":12}]}"#;
        let cur = r#"{"artifacts":[{"id":"table2","sim_runs":12},{"id":"fig8","sim_runs":36}]}"#;
        let r = cmp(base, cur, Tolerances::default());
        assert!(!r.regressed(), "{}", r.render());
    }

    #[test]
    fn missing_metric_is_soft_unless_strict() {
        let base = r#"{"a_secs":1.0,"completed":2}"#;
        let cur = r#"{"completed":2}"#;
        assert!(!cmp(base, cur, Tolerances::default()).regressed());
        let strict = Tolerances {
            strict_missing: true,
            ..Tolerances::default()
        };
        assert!(cmp(base, cur, strict).regressed());
    }

    #[test]
    fn new_metrics_are_ignored() {
        let r = cmp(
            r#"{"completed":2}"#,
            r#"{"completed":2,"brand_new":7}"#,
            Tolerances::default(),
        );
        assert!(!r.regressed());
        assert_eq!(r.added, vec![".brand_new".to_string()]);
    }

    #[test]
    fn json_output_is_severity_sorted_and_parses() {
        let base = r#"{"a_secs":1.0,"b_secs":1.0,"completed":5,"label":"x"}"#;
        let cur = r#"{"a_secs":1.3,"b_secs":9.0,"completed":5,"label":"y","extra":1}"#;
        let r = cmp(base, cur, Tolerances::default());
        let doc = crate::jsonv::parse(&r.to_json()).expect("to_json parses");
        assert_eq!(doc.get("regressed"), Some(&JsonValue::Bool(true)));
        let deltas = doc
            .get("deltas")
            .and_then(JsonValue::as_arr)
            .expect("deltas");
        assert_eq!(deltas.len(), 3);
        // Severity order: the failing b_secs leads, then a_secs (larger
        // rel change than the exact count), then completed.
        let paths: Vec<&str> = deltas
            .iter()
            .map(|d| d.get("path").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(paths, ["b_secs", "a_secs", "completed"]);
        assert_eq!(
            deltas[0].get("class").and_then(JsonValue::as_str),
            Some("time")
        );
        assert_eq!(deltas[0].get("regressed"), Some(&JsonValue::Bool(true)));
        assert_eq!(deltas[1].get("regressed"), Some(&JsonValue::Bool(false)));
        let mismatches = doc
            .get("mismatches")
            .and_then(JsonValue::as_arr)
            .expect("mismatches");
        assert_eq!(mismatches.len(), 1);
        assert_eq!(
            doc.get("added").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn zero_baseline_rel_change_serializes_as_null() {
        let r = cmp(
            r#"{"x_secs":0.0,"completed":1}"#,
            r#"{"x_secs":5.0,"completed":1}"#,
            Tolerances::default(),
        );
        let doc = crate::jsonv::parse(&r.to_json()).expect("to_json parses");
        let deltas = doc
            .get("deltas")
            .and_then(JsonValue::as_arr)
            .expect("deltas");
        let x = deltas
            .iter()
            .find(|d| d.get("path").and_then(JsonValue::as_str) == Some("x_secs"))
            .expect("x_secs delta");
        assert_eq!(x.get("rel_change"), Some(&JsonValue::Null));
    }

    #[test]
    fn render_aligns_regression_columns() {
        let base = r#"{"short_secs":1.0,"a_much_longer_metric_secs":2.0}"#;
        let cur = r#"{"short_secs":99.0,"a_much_longer_metric_secs":444.0}"#;
        let r = cmp(base, cur, Tolerances::default());
        let out = r.render();
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("REGRESSION  "))
            .collect();
        assert_eq!(rows.len(), 2);
        // Worst relative change first, and the "->" separators line up.
        assert!(rows[0].contains("a_much_longer_metric_secs"));
        let arrow = |l: &str| l.find("->").expect("arrow");
        assert_eq!(arrow(rows[0]), arrow(rows[1]), "unaligned:\n{out}");
    }

    #[test]
    fn nested_paths_classify_by_leaf() {
        let base = r#"{"trace":{"on_secs":1.0,"events":100}}"#;
        let cur = r#"{"trace":{"on_secs":3.0,"events":100}}"#;
        let r = cmp(base, cur, Tolerances::default());
        assert!(r.regressed());
        assert_eq!(r.regressions()[0].path, "trace.on_secs");
    }
}

//! Sim-time series: a fixed-Δt grid of metric samples, and the
//! enum-dispatch [`Sampler`] that keeps the disabled path off the hot
//! loop (mirroring `bds-trace::Tracer`: one predictable branch per
//! event, zero construction work when off).
//!
//! Simulation state is piecewise constant between events, so the
//! simulator samples by calling [`Sampler::due`] with each event's
//! timestamp and, when due, recording one row per grid point passed.
//! Rows are dense `f64` columns; names are fixed at construction.

use bds_des::time::SimTime;
use bds_trace::json::{JsonArr, JsonObj};

/// A fixed-Δt time series with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    dt_ms: u64,
    names: Vec<String>,
    times_ms: Vec<u64>,
    /// Row-major sample values (`times_ms.len() × names.len()`).
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series sampling every `dt_ms` with the given columns.
    ///
    /// # Panics
    /// Panics if `dt_ms` is zero or `names` is empty.
    pub fn new(dt_ms: u64, names: &[&str]) -> Self {
        assert!(dt_ms > 0, "sampling interval must be positive");
        assert!(!names.is_empty(), "a series needs at least one column");
        TimeSeries {
            dt_ms,
            names: names.iter().map(|s| s.to_string()).collect(),
            times_ms: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Sampling interval in milliseconds.
    pub fn dt_ms(&self) -> u64 {
        self.dt_ms
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.times_ms.len()
    }

    /// True when no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times_ms.is_empty()
    }

    /// Append a row sampled at `at_ms`.
    ///
    /// # Panics
    /// Panics on arity mismatch or non-monotone timestamps.
    pub fn push_row(&mut self, at_ms: u64, row: &[f64]) {
        assert_eq!(row.len(), self.width(), "row arity mismatch");
        if let Some(&last) = self.times_ms.last() {
            assert!(at_ms > last, "samples must advance in time");
        }
        self.times_ms.push(at_ms);
        self.values.extend_from_slice(row);
    }

    /// Value at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.width() + col]
    }

    /// Sample timestamps in milliseconds.
    pub fn times_ms(&self) -> &[u64] {
        &self.times_ms
    }

    /// Row-major sample values (`len() × width()`), for checkpointing.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Rebuild a series from its parts (inverse of the accessors), for
    /// checkpoint restore.
    ///
    /// # Panics
    /// Panics if the shapes disagree or the timestamps are not strictly
    /// increasing.
    pub fn from_parts(
        dt_ms: u64,
        names: Vec<String>,
        times_ms: Vec<u64>,
        values: Vec<f64>,
    ) -> Self {
        assert!(dt_ms > 0, "sampling interval must be positive");
        assert!(!names.is_empty(), "a series needs at least one column");
        assert_eq!(values.len(), times_ms.len() * names.len(), "shape mismatch");
        assert!(
            times_ms.windows(2).all(|w| w[0] < w[1]),
            "samples must advance in time"
        );
        TimeSeries {
            dt_ms,
            names,
            times_ms,
            values,
        }
    }

    /// One column by name, as a fresh vector (`None` if unknown).
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let col = self.names.iter().position(|n| n == name)?;
        Some((0..self.len()).map(|r| self.get(r, col)).collect())
    }

    /// Render as CSV: a `t_secs` column followed by the named columns.
    /// Float formatting uses Rust's shortest round-trip representation,
    /// so the output is deterministic.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_secs");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for r in 0..self.len() {
            out.push_str(&format!("{}", self.times_ms[r] as f64 / 1000.0));
            for c in 0..self.width() {
                out.push(',');
                let v = self.get(r, c);
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("nan");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as a column-oriented JSON object:
    /// `{"dt_ms":…,"t_ms":[…],"columns":{"name":[…],…}}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.int("dt_ms", self.dt_ms);
        let mut t = JsonArr::new();
        for &ms in &self.times_ms {
            t.int(ms);
        }
        o.raw("t_ms", &t.finish());
        let mut cols = JsonObj::new();
        for (c, name) in self.names.iter().enumerate() {
            let mut arr = JsonArr::new();
            for r in 0..self.len() {
                let v = self.get(r, c);
                if v.is_finite() {
                    arr.raw(&format!("{v}"));
                } else {
                    arr.raw("null");
                }
            }
            cols.raw(name, &arr.finish());
        }
        o.raw("columns", &cols.finish());
        o.finish()
    }
}

/// An active sampler: the next grid point plus the accumulating series.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSampler {
    next_ms: u64,
    /// The series under construction.
    pub series: TimeSeries,
    /// Reused row buffer for the caller to fill.
    pub row: Vec<f64>,
}

impl ActiveSampler {
    /// Next grid point to sample, in milliseconds.
    pub fn next_ms(&self) -> u64 {
        self.next_ms
    }

    /// Record the filled [`ActiveSampler::row`] at the current grid
    /// point and advance to the next.
    pub fn commit_row(&mut self) {
        let at = self.next_ms;
        // Split borrows: push from the scratch row without cloning.
        let series = &mut self.series;
        series.push_row(at, &self.row);
        self.next_ms = at + series.dt_ms();
    }
}

/// The simulator-facing sampling handle: enum dispatch over "off" and
/// "sampling", like `bds-trace::Tracer`. When off, [`Sampler::due`] is a
/// single branch and no sampling state exists.
#[derive(Debug, Default)]
pub enum Sampler {
    /// Sampling disabled.
    #[default]
    Off,
    /// Sampling into a time series.
    On(Box<ActiveSampler>),
}

impl Sampler {
    /// A sampler recording every `dt_ms` into columns `names`. The first
    /// sample lands at `t = dt_ms` (state at `t = 0` is all-idle).
    pub fn every_ms(dt_ms: u64, names: &[&str]) -> Self {
        Sampler::On(Box::new(ActiveSampler {
            next_ms: dt_ms,
            series: TimeSeries::new(dt_ms, names),
            row: Vec::with_capacity(names.len()),
        }))
    }

    /// Resume sampling mid-run from a checkpoint: the accumulated series
    /// plus the next grid point to sample.
    ///
    /// # Panics
    /// Panics if `next_ms` is not aligned to the series grid or does not
    /// lie after the last recorded row.
    pub fn resume(next_ms: u64, series: TimeSeries) -> Self {
        assert!(
            next_ms.is_multiple_of(series.dt_ms()),
            "next_ms off the grid"
        );
        if let Some(&last) = series.times_ms().last() {
            assert!(next_ms > last, "next_ms must follow the last sample");
        }
        let width = series.width();
        Sampler::On(Box::new(ActiveSampler {
            next_ms,
            series,
            row: Vec::with_capacity(width),
        }))
    }

    /// Is sampling enabled?
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !matches!(self, Sampler::Off)
    }

    /// Has simulated time reached the next grid point? One branch when
    /// off — this is the only call on the event hot path.
    #[inline(always)]
    pub fn due(&self, now: SimTime) -> bool {
        match self {
            Sampler::Off => false,
            Sampler::On(s) => now.as_millis() >= s.next_ms,
        }
    }

    /// The active sampler, if sampling (callers loop
    /// `while next_ms() <= now`, fill `row`, `commit_row()`).
    #[inline]
    pub fn active(&mut self) -> Option<&mut ActiveSampler> {
        match self {
            Sampler::Off => None,
            Sampler::On(s) => Some(s),
        }
    }

    /// Consume the sampler, yielding the series (`None` when off).
    pub fn finish(self) -> Option<TimeSeries> {
        match self {
            Sampler::Off => None,
            Sampler::On(s) => Some(s.series),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_records_and_reads_back() {
        let mut s = TimeSeries::new(1000, &["a", "b"]);
        s.push_row(1000, &[1.0, 2.0]);
        s.push_row(2000, &[3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1, 0), 3.0);
        assert_eq!(s.column("b"), Some(vec![2.0, 4.0]));
        assert_eq!(s.column("nope"), None);
    }

    #[test]
    fn csv_shape_and_determinism() {
        let mut s = TimeSeries::new(500, &["x"]);
        s.push_row(500, &[0.25]);
        s.push_row(1000, &[f64::NAN]);
        assert_eq!(s.to_csv(), "t_secs,x\n0.5,0.25\n1,nan\n");
    }

    #[test]
    fn json_is_column_oriented() {
        let mut s = TimeSeries::new(1000, &["u"]);
        s.push_row(1000, &[0.5]);
        assert_eq!(
            s.to_json(),
            r#"{"dt_ms":1000,"t_ms":[1000],"columns":{"u":[0.5]}}"#
        );
    }

    #[test]
    #[should_panic(expected = "advance in time")]
    fn non_monotone_rows_rejected() {
        let mut s = TimeSeries::new(1000, &["x"]);
        s.push_row(1000, &[1.0]);
        s.push_row(1000, &[2.0]);
    }

    #[test]
    fn sampler_off_is_inert() {
        let mut s = Sampler::Off;
        assert!(!s.enabled());
        assert!(!s.due(SimTime::from_millis(u64::MAX)));
        assert!(s.active().is_none());
        assert!(s.finish().is_none());
    }

    #[test]
    fn sampler_grid_advances() {
        let mut s = Sampler::every_ms(1000, &["v"]);
        assert!(!s.due(SimTime::from_millis(999)));
        assert!(s.due(SimTime::from_millis(1000)));
        let a = s.active().unwrap();
        a.row.clear();
        a.row.push(7.0);
        a.commit_row();
        assert_eq!(a.next_ms(), 2000);
        assert!(!s.due(SimTime::from_millis(1500)));
        let series = s.finish().unwrap();
        assert_eq!(series.times_ms(), &[1000]);
        assert_eq!(series.get(0, 0), 7.0);
    }
}

//! Seeded-fuzz property tests for [`bds_metrics::LogHistogram`] against
//! a sorted-vector oracle: record/merge/quantile must agree with exact
//! order statistics to within the documented error bound, across many
//! value distributions, and merge must be exactly equivalent to
//! recording the concatenated stream.

use bds_des::rng::Xoshiro256;
use bds_metrics::{LogHistogram, REL_ERROR, TICKS_PER_SEC};

/// Draw a tick value from one of several shapes so buckets across the
/// whole dynamic range get exercised.
fn draw(rng: &mut Xoshiro256) -> u64 {
    match rng.next_range(4) {
        // Linear range: exact unit buckets.
        0 => rng.next_range(128),
        // Small multi-octave values.
        1 => rng.next_range(100_000),
        // Seconds-scale response times (the simulator's regime).
        2 => 1_000_000 + rng.next_range(30_000_000),
        // Heavy tail across many octaves.
        _ => {
            let shift = rng.next_range(50) as u32;
            rng.next_range(1 << 12) << shift
        }
    }
}

/// Exact `q`-quantile of a sorted tick vector, mirroring the histogram's
/// rank rule: the value at rank `ceil(q * n)` (1-based, min 1).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil().max(1.0) as usize).min(n);
    sorted[rank - 1]
}

/// Histogram quantile error vs the oracle must respect the bound:
/// relative above the linear range, absolute (one bucket) below it.
fn assert_close(h: &LogHistogram, sorted: &[u64], q: f64, seed: u64) {
    let est_ticks = h.quantile(q).unwrap() * TICKS_PER_SEC;
    let exact = oracle_quantile(sorted, q) as f64;
    let tol = (exact * REL_ERROR).max(1.0);
    assert!(
        (est_ticks - exact).abs() <= tol,
        "seed {seed} q {q}: est {est_ticks} vs exact {exact} (tol {tol})"
    );
}

#[test]
fn quantiles_match_sorted_vec_oracle() {
    for seed in 0..40u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = 1 + rng.next_range(3000) as usize;
        let mut h = LogHistogram::new();
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let v = draw(&mut rng);
            h.record_ticks(v);
            vals.push(v);
        }
        vals.sort_unstable();
        assert_eq!(h.total(), n as u64);
        assert_eq!(h.min_secs().unwrap(), vals[0] as f64 / TICKS_PER_SEC);
        assert_eq!(
            h.max_secs().unwrap(),
            *vals.last().unwrap() as f64 / TICKS_PER_SEC
        );
        let exact_mean =
            vals.iter().map(|&v| v as u128).sum::<u128>() as f64 / n as f64 / TICKS_PER_SEC;
        assert!((h.mean_secs() - exact_mean).abs() <= exact_mean * 1e-12 + 1e-12);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_close(&h, &vals, q, seed);
        }
    }
}

#[test]
fn merge_equals_concatenated_stream() {
    for seed in 100..130u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = rng.next_range(2000) as usize;
        let parts = 1 + rng.next_range(7) as usize;
        let mut whole = LogHistogram::new();
        let mut shards = vec![LogHistogram::new(); parts];
        for _ in 0..n {
            let v = draw(&mut rng);
            whole.record_ticks(v);
            shards[rng.next_index(parts)].record_ticks(v);
        }
        // Merge in a rotated order to show order-independence too.
        let start = rng.next_index(parts);
        let mut merged = LogHistogram::new();
        for i in 0..parts {
            merged.merge(&shards[(start + i) % parts]);
        }
        assert_eq!(merged, whole, "seed {seed}: merge must be exact");
    }
}

#[test]
fn merging_empty_is_identity() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let mut h = LogHistogram::new();
    for _ in 0..100 {
        h.record_ticks(draw(&mut rng));
    }
    let before = h.clone();
    h.merge(&LogHistogram::new());
    assert_eq!(h, before);
    let mut empty = LogHistogram::new();
    empty.merge(&before);
    assert_eq!(empty, before);
}

#[test]
fn quantile_is_monotone_in_q() {
    let mut rng = Xoshiro256::seed_from_u64(42);
    let mut h = LogHistogram::new();
    for _ in 0..5000 {
        h.record_ticks(draw(&mut rng));
    }
    let qs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
    let ests: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
    assert!(ests.windows(2).all(|w| w[0] <= w[1]));
}

//! Property test: everything `PromText` emits conforms to the
//! Prometheus text exposition format, for arbitrary (hostile) metric
//! structure and label values — validated by
//! [`bds_metrics::check_exposition`], which rejects bad metric-name
//! charsets, illegal label escapes, duplicate `# TYPE` headers, and
//! duplicate series.

use bds_metrics::{check_exposition, LogHistogram, PromText};

/// Minimal xorshift-style generator; the workspace carries no external
/// dependencies, so the "property" part is a fixed-seed fuzz loop.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // SplitMix64 step: good enough scrambling for test-case shapes.
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Characters a label value might plausibly (or maliciously) contain:
/// every escape-relevant byte plus the structural characters of the
/// format itself.
const NASTY: &[char] = &[
    'a', 'Z', '9', '_', '"', '\\', '\n', ' ', '{', '}', '=', ',', '#', 'µ', '☃', ':', '-', '.',
];

fn nasty_string(r: &mut Lcg, max_len: usize) -> String {
    let len = r.below(max_len + 1);
    (0..len).map(|_| NASTY[r.below(NASTY.len())]).collect()
}

/// A syntactically valid metric/label name stem.
fn name(r: &mut Lcg, prefix: &str) -> String {
    const BODY: &[char] = &['a', 'b', 'c', '_', 'x', '1'];
    let len = 1 + r.below(6);
    let tail: String = (0..len).map(|_| BODY[r.below(BODY.len())]).collect();
    format!("{prefix}_{tail}")
}

/// Undo the exposition label escaping (`\\`, `\"`, `\n`).
fn unescape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            other => panic!("illegal escape \\{other:?} in {s:?}"),
        }
    }
    out
}

#[test]
fn random_documents_conform() {
    let mut r = Lcg(7);
    for round in 0..300 {
        let mut p = PromText::new();
        let families = 1 + r.below(4);
        for f in 0..families {
            let metric = name(&mut r, &format!("m{round}_{f}"));
            let help = nasty_string(&mut r, 12);
            let series = 1 + r.below(4);
            for s in 0..series {
                // The serial number inside the label value keeps the
                // series distinct even when the random part collides.
                let val = format!("{s}:{}", nasty_string(&mut r, 10));
                let labels: &[(&str, &str)] = &[("sched", &val)];
                match r.below(3) {
                    0 => p.counter(&metric, &help, labels, r.next() % 1_000),
                    1 => p.gauge(&metric, &help, labels, r.next() as f64 / 1e18),
                    _ => {
                        let mut h = LogHistogram::new();
                        for _ in 0..r.below(5) {
                            h.record_secs(1e-3 + (r.next() % 1_000) as f64 / 100.0);
                        }
                        p.histogram(&metric, &help, labels, &h);
                    }
                }
            }
        }
        let doc = p.finish();
        if let Err(e) = check_exposition(&doc) {
            panic!("round {round} produced a non-conforming document: {e}\n{doc}");
        }
    }
}

#[test]
fn label_escaping_round_trips() {
    let mut r = Lcg(99);
    for _ in 0..500 {
        let original = nasty_string(&mut r, 24);
        let mut p = PromText::new();
        p.gauge("m", "h", &[("l", &original)], 1.0);
        let doc = p.finish();
        check_exposition(&doc).expect("escaped document conforms");
        let sample = doc.lines().last().expect("sample line");
        let escaped = sample
            .strip_prefix("m{l=\"")
            .and_then(|s| s.strip_suffix("\"} 1"))
            .unwrap_or_else(|| panic!("unexpected sample shape {sample:?}"));
        assert_eq!(
            unescape_label(escaped),
            original,
            "lossy label escaping for {original:?}"
        );
    }
}

#[test]
fn repeated_families_share_one_type_header() {
    // Per-phase and per-shard series — the shape of the `bds_obs_*`
    // exporter — append samples under a single # TYPE header instead of
    // re-emitting it (the format allows at most one per metric name).
    let mut p = PromText::new();
    let base: &[(&str, &str)] = &[("scheduler", "GOW")];
    for phase in ["scheduler_decide", "cn_work", "event_queue"] {
        let mut labels = base.to_vec();
        labels.push(("phase", phase));
        p.counter(
            "bds_obs_phase_calls_total",
            "Exact probe entries per pump phase",
            &labels,
            7,
        );
        p.gauge(
            "bds_obs_phase_est_seconds",
            "Estimated total wall time per phase (stride-sampled)",
            &labels,
            0.25,
        );
    }
    for shard in ["0", "1", "2", "3"] {
        let mut labels = base.to_vec();
        labels.push(("shard", shard));
        p.gauge("bds_obs_shard_busy_seconds", "Busy", &labels, 1.5);
        p.gauge("bds_obs_shard_wait_seconds", "Wait", &labels, 0.5);
    }
    let mut h = LogHistogram::new();
    h.record_secs(0.004);
    h.record_secs(3.0);
    p.histogram("bds_obs_window_width_ms", "Window widths", base, &h);
    let doc = p.finish();
    check_exposition(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    let type_lines = doc
        .lines()
        .filter(|l| l.starts_with("# TYPE bds_obs_phase_calls_total"))
        .count();
    assert_eq!(type_lines, 1, "duplicate TYPE headers:\n{doc}");
    assert_eq!(
        doc.lines()
            .filter(|l| l.starts_with("bds_obs_phase_calls_total{"))
            .count(),
        3
    );
}

#[test]
fn validator_rejects_known_violations() {
    // Duplicate series.
    let dup = "# HELP m h\n# TYPE m gauge\nm{l=\"a\"} 1\nm{l=\"a\"} 2\n";
    assert!(check_exposition(dup).is_err());
    // Duplicate TYPE header for one name.
    let dup_type = "# TYPE m gauge\nm 1\n# TYPE m gauge\n";
    assert!(check_exposition(dup_type).is_err());
    // Raw (unescaped) inner quote.
    let raw_quote = "# TYPE m gauge\nm{l=\"a\"b\"} 1\n";
    assert!(check_exposition(raw_quote).is_err());
    // Illegal escape sequence.
    let bad_escape = "# TYPE m gauge\nm{l=\"a\\tb\"} 1\n";
    assert!(check_exposition(bad_escape).is_err());
    // Metric name outside the charset.
    let bad_name = "# TYPE 1m gauge\n1m 1\n";
    assert!(check_exposition(bad_name).is_err());
    // Sample without any TYPE header.
    assert!(check_exposition("m 1\n").is_err());
    // And the canonical happy path still passes.
    let ok = "# HELP m h\n# TYPE m counter\nm{l=\"a\\nb\\\\c\\\"d\"} 3\n";
    check_exposition(ok).expect("escaped document conforms");
}

//! Simulation outputs.

use bds_des::stats::Welford;
use serde::{Deserialize, Serialize};

/// The report of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduler label ("GOW", "LOW", …).
    pub scheduler: String,
    /// Arrival rate that was offered (TPS).
    pub lambda_tps: f64,
    /// Degree of declustering.
    pub dd: u32,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
    /// Transactions that arrived.
    pub arrived: u64,
    /// Transactions that started (were admitted) at least once.
    pub started: u64,
    /// Transactions that committed.
    pub completed: u64,
    /// OPT validation failures / restarts.
    pub restarts: u64,
    /// Response-time statistics over committed transactions (seconds).
    pub rt: Welford,
    /// Control-node CPU utilization.
    pub cn_utilization: f64,
    /// Mean data-processing-node utilization.
    pub dpn_utilization: f64,
    /// Time-averaged number of live (started, uncommitted) transactions.
    pub mean_live: f64,
    /// Median response time in seconds (1-second histogram resolution;
    /// `None` when nothing completed).
    pub rt_p50_secs: Option<f64>,
    /// 90th-percentile response time in seconds.
    pub rt_p90_secs: Option<f64>,
    /// 99th-percentile response time in seconds.
    pub rt_p99_secs: Option<f64>,
    /// Transactions still waiting in the start queue at the horizon.
    pub queued_at_end: u64,
    /// Total simulation events processed (progress metric).
    pub events: u64,
    /// Total lock requests evaluated (including retries).
    pub lock_requests: u64,
    /// Lock requests that ended blocked or delayed at least once.
    pub requests_denied: u64,
}

impl SimReport {
    /// Mean response time in seconds (0 when nothing completed).
    pub fn mean_rt_secs(&self) -> f64 {
        self.rt.mean()
    }

    /// Throughput in committed transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.horizon_secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / self.horizon_secs
        }
    }

    /// Ratio of useful resource utilization relative to another run
    /// (the paper's `λ_S / λ_NODC` comparisons use throughput ratios).
    pub fn throughput_ratio(&self, baseline: &SimReport) -> f64 {
        let b = baseline.throughput_tps();
        if b == 0.0 {
            0.0
        } else {
            self.throughput_tps() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completed: u64, horizon: f64) -> SimReport {
        SimReport {
            scheduler: "TEST".into(),
            lambda_tps: 1.0,
            dd: 1,
            horizon_secs: horizon,
            arrived: completed,
            started: completed,
            completed,
            restarts: 0,
            rt: Welford::new(),
            cn_utilization: 0.0,
            dpn_utilization: 0.0,
            mean_live: 0.0,
            rt_p50_secs: None,
            rt_p90_secs: None,
            rt_p99_secs: None,
            queued_at_end: 0,
            events: 0,
            lock_requests: 0,
            requests_denied: 0,
        }
    }

    #[test]
    fn throughput_is_completions_over_time() {
        let r = report(2000, 2000.0);
        assert!((r.throughput_tps() - 1.0).abs() < 1e-12);
        assert_eq!(report(0, 0.0).throughput_tps(), 0.0);
    }

    #[test]
    fn ratio_against_baseline() {
        let a = report(500, 1000.0);
        let b = report(1000, 1000.0);
        assert!((a.throughput_ratio(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serializes_roundtrip() {
        let r = report(10, 100.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}

//! Plain-text table rendering for experiment outputs.

/// A rendered table: header plus rows, printed in aligned columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            header: header.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimals (throughputs).
pub fn f2(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "inf".into()
    }
}

/// Format a float with 1 decimal (response times in seconds).
pub fn f1(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "inf".into()
    }
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", vec!["a", "bbb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["10".into(), "20".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("Demo", vec!["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", vec!["x", "y"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(432.19), "432.2");
        assert_eq!(pct(0.85), "85%");
        assert_eq!(f2(f64::INFINITY), "inf");
    }
}

//! Ablation studies of the design choices DESIGN.md documents — beyond
//! the paper's own evaluation.
//!
//! * [`low_k_sweep`] — LOW's conflict bound `K` (the paper fixes K = 2;
//!   how sensitive is that choice?).
//! * [`retry_delay_sweep`] — our interpretation decision that delayed
//!   requests are re-submitted on state changes *and* after
//!   `retry_delay` ("submitted … after some delay"): what does the
//!   delay's magnitude cost?
//! * [`admission_scan_sweep`] — the cap on costed admission tests per
//!   sweep (bounds CN work scanning a long start queue under GOW).
//! * [`wdl_comparison`] — the wait-depth-limited extension scheduler
//!   against the paper's six, probing the paper's requirement analysis
//!   (WDL avoids blocking chains *via rollback* — which of requirements
//!   (1) and (3) dominates for batch transactions?).

use crate::config::{SimConfig, WorkloadKind};
use crate::driver;
use crate::experiments::ExpOptions;
use crate::parallel::ExecCtx;
use crate::report::{f1, f2, Table};
use bds_des::time::Duration;
use bds_sched::SchedulerKind;

fn base(opts: &ExpOptions, kind: SchedulerKind, workload: WorkloadKind) -> SimConfig {
    let mut c = SimConfig::new(kind, workload);
    c.horizon = opts.horizon;
    c.seed = opts.seed;
    c
}

/// LOW's K: throughput at RT = 70 s for K ∈ {1, 2, 3, 4} on the blocking
/// workload (Exp. 1) and the hot-set workload (Exp. 2), DD = 1.
pub fn low_k_sweep(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let mut t = Table::new(
        "Ablation: LOW's conflict bound K — TPS at RT=70s, DD=1",
        vec!["K", "Exp.1 (16 files)", "Exp.2 (hot set)"],
    );
    let ks = [1u32, 2, 3, 4];
    let cells: Vec<SimConfig> = ks
        .iter()
        .flat_map(|&k| {
            [
                base(
                    opts,
                    SchedulerKind::Low(k),
                    WorkloadKind::Exp1 { num_files: 16 },
                ),
                base(opts, SchedulerKind::Low(k), WorkloadKind::Exp2),
            ]
        })
        .collect();
    let tputs = ctx.map(&cells, |_, cfg| {
        driver::throughput_at_rt(ctx, cfg, 70.0, 0.05, 1.4, opts.bisect_iters).throughput_tps()
    });
    for (i, k) in ks.iter().enumerate() {
        t.push_row(vec![k.to_string(), f2(tputs[2 * i]), f2(tputs[2 * i + 1])]);
    }
    t
}

/// Retry delay: mean RT of GOW and LOW at λ = 0.9, DD = 1 with the
/// delayed-request re-submission timer at 250 / 1000 / 4000 ms.
pub fn retry_delay_sweep(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let mut t = Table::new(
        "Ablation: delayed-request retry timer — mean RT (s) at λ=0.9, DD=1",
        vec!["retry delay (ms)", "GOW", "LOW"],
    );
    let delays = [250u64, 1000, 4000];
    let cells: Vec<SimConfig> = delays
        .iter()
        .flat_map(|&ms| {
            [SchedulerKind::Gow, SchedulerKind::Low(2)].map(|kind| {
                let mut cfg = base(opts, kind, WorkloadKind::Exp1 { num_files: 16 });
                cfg.lambda_tps = 0.9;
                cfg.retry_delay = Duration::from_millis(ms);
                cfg
            })
        })
        .collect();
    let rts = ctx.map(&cells, |_, cfg| ctx.run_point(cfg).mean_rt_secs());
    for (i, ms) in delays.iter().enumerate() {
        t.push_row(vec![ms.to_string(), f1(rts[2 * i]), f1(rts[2 * i + 1])]);
    }
    t
}

/// Admission scan cap: GOW throughput and CN utilization at λ = 1.0,
/// DD = 1 with 2 / 16 / 64 costed admission tests per sweep.
pub fn admission_scan_sweep(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let mut t = Table::new(
        "Ablation: admission scan cap — GOW at λ=1.0, DD=1",
        vec!["scan cap", "completed", "mean RT (s)", "CN util"],
    );
    let caps = [2usize, 16, 64];
    let cells: Vec<SimConfig> = caps
        .iter()
        .map(|&cap| {
            let mut cfg = base(
                opts,
                SchedulerKind::Gow,
                WorkloadKind::Exp1 { num_files: 16 },
            );
            cfg.lambda_tps = 1.0;
            cfg.admission_scan_limit = cap;
            cfg
        })
        .collect();
    let reports = ctx.map(&cells, |_, cfg| ctx.run_point(cfg));
    for (cap, r) in caps.iter().zip(&reports) {
        t.push_row(vec![
            cap.to_string(),
            r.completed.to_string(),
            f1(r.mean_rt_secs()),
            format!("{:.0}%", r.cn_utilization * 100.0),
        ]);
    }
    t
}

/// WDL vs the paper's six: throughput at RT = 70 s (Exp. 1 and Exp. 2,
/// DD = 1) and restarts at λ = 0.8.
pub fn wdl_comparison(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let mut t = Table::new(
        "Extension: wait-depth limited locking vs the paper's schedulers (DD=1)",
        vec![
            "scheduler",
            "Exp.1 TPS@70s",
            "Exp.2 TPS@70s",
            "restarts (Exp.1, λ=0.8)",
        ],
    );
    let mut kinds = vec![SchedulerKind::Wdl];
    kinds.extend(SchedulerKind::PAPER_SET);
    let rows = ctx.map(&kinds, |_, &kind| {
        let exp1 = driver::throughput_at_rt(
            ctx,
            &base(opts, kind, WorkloadKind::Exp1 { num_files: 16 }),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        let exp2 = driver::throughput_at_rt(
            ctx,
            &base(opts, kind, WorkloadKind::Exp2),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        let mut heavy = base(opts, kind, WorkloadKind::Exp1 { num_files: 16 });
        heavy.lambda_tps = 0.8;
        let hr = ctx.run_point(&heavy);
        vec![
            kind.label(),
            f2(exp1.throughput_tps()),
            f2(exp2.throughput_tps()),
            hr.restarts.to_string(),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

/// All ablations in order, sharing one point cache.
pub fn run_all(opts: &ExpOptions) -> Vec<Table> {
    let ctx = ExecCtx::new(opts.jobs);
    run_all_with(opts, &ctx)
}

/// All ablations in order on a caller-provided context.
pub fn run_all_with(opts: &ExpOptions, ctx: &ExecCtx) -> Vec<Table> {
    vec![
        low_k_sweep(opts, ctx),
        retry_delay_sweep(opts, ctx),
        admission_scan_sweep(opts, ctx),
        wdl_comparison(opts, ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn quick() -> ExpOptions {
        let mut o = ExpOptions::quick();
        o.horizon = Duration::from_secs(150);
        o.bisect_iters = 2;
        o
    }

    #[test]
    fn low_k_sweep_shape() {
        let opts = quick();
        let t = low_k_sweep(&opts, &ExecCtx::new(opts.jobs));
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.header.len(), 3);
    }

    #[test]
    fn wdl_runs_end_to_end() {
        let mut cfg = SimConfig::new(SchedulerKind::Wdl, WorkloadKind::Exp1 { num_files: 16 });
        cfg.lambda_tps = 0.5;
        cfg.horizon = Duration::from_secs(400);
        let r = Simulator::run(&cfg);
        assert!(r.completed > 100, "WDL completed only {}", r.completed);
        // Under contention WDL must actually restart sometimes.
        assert!(r.restarts > 0, "WDL never restarted at λ=0.5");
    }

    #[test]
    fn retry_delay_changes_results() {
        let opts = quick();
        let t = retry_delay_sweep(&opts, &ExecCtx::serial());
        assert_eq!(t.rows.len(), 3);
    }
}

//! Ablation studies of the design choices DESIGN.md documents — beyond
//! the paper's own evaluation.
//!
//! * [`low_k_sweep`] — LOW's conflict bound `K` (the paper fixes K = 2;
//!   how sensitive is that choice?).
//! * [`retry_delay_sweep`] — our interpretation decision that delayed
//!   requests are re-submitted on state changes *and* after
//!   `retry_delay` ("submitted … after some delay"): what does the
//!   delay's magnitude cost?
//! * [`admission_scan_sweep`] — the cap on costed admission tests per
//!   sweep (bounds CN work scanning a long start queue under GOW).
//! * [`wdl_comparison`] — the wait-depth-limited extension scheduler
//!   against the paper's six, probing the paper's requirement analysis
//!   (WDL avoids blocking chains *via rollback* — which of requirements
//!   (1) and (3) dominates for batch transactions?).

use crate::config::{SimConfig, WorkloadKind};
use crate::driver;
use crate::experiments::ExpOptions;
use crate::report::{f1, f2, Table};
use crate::sim::Simulator;
use bds_des::time::Duration;
use bds_sched::SchedulerKind;

fn base(opts: &ExpOptions, kind: SchedulerKind, workload: WorkloadKind) -> SimConfig {
    let mut c = SimConfig::new(kind, workload);
    c.horizon = opts.horizon;
    c.seed = opts.seed;
    c
}

/// LOW's K: throughput at RT = 70 s for K ∈ {1, 2, 3, 4} on the blocking
/// workload (Exp. 1) and the hot-set workload (Exp. 2), DD = 1.
pub fn low_k_sweep(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: LOW's conflict bound K — TPS at RT=70s, DD=1",
        vec!["K", "Exp.1 (16 files)", "Exp.2 (hot set)"],
    );
    for k in [1u32, 2, 3, 4] {
        let exp1 = driver::throughput_at_rt(
            &base(opts, SchedulerKind::Low(k), WorkloadKind::Exp1 { num_files: 16 }),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        let exp2 = driver::throughput_at_rt(
            &base(opts, SchedulerKind::Low(k), WorkloadKind::Exp2),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        t.push_row(vec![
            k.to_string(),
            f2(exp1.throughput_tps()),
            f2(exp2.throughput_tps()),
        ]);
    }
    t
}

/// Retry delay: mean RT of GOW and LOW at λ = 0.9, DD = 1 with the
/// delayed-request re-submission timer at 250 / 1000 / 4000 ms.
pub fn retry_delay_sweep(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: delayed-request retry timer — mean RT (s) at λ=0.9, DD=1",
        vec!["retry delay (ms)", "GOW", "LOW"],
    );
    for ms in [250u64, 1000, 4000] {
        let mut row = vec![ms.to_string()];
        for kind in [SchedulerKind::Gow, SchedulerKind::Low(2)] {
            let mut cfg = base(opts, kind, WorkloadKind::Exp1 { num_files: 16 });
            cfg.lambda_tps = 0.9;
            cfg.retry_delay = Duration::from_millis(ms);
            row.push(f1(Simulator::run(&cfg).mean_rt_secs()));
        }
        t.push_row(row);
    }
    t
}

/// Admission scan cap: GOW throughput and CN utilization at λ = 1.0,
/// DD = 1 with 2 / 16 / 64 costed admission tests per sweep.
pub fn admission_scan_sweep(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: admission scan cap — GOW at λ=1.0, DD=1",
        vec!["scan cap", "completed", "mean RT (s)", "CN util"],
    );
    for cap in [2usize, 16, 64] {
        let mut cfg = base(opts, SchedulerKind::Gow, WorkloadKind::Exp1 { num_files: 16 });
        cfg.lambda_tps = 1.0;
        cfg.admission_scan_limit = cap;
        let r = Simulator::run(&cfg);
        t.push_row(vec![
            cap.to_string(),
            r.completed.to_string(),
            f1(r.mean_rt_secs()),
            format!("{:.0}%", r.cn_utilization * 100.0),
        ]);
    }
    t
}

/// WDL vs the paper's six: throughput at RT = 70 s (Exp. 1 and Exp. 2,
/// DD = 1) and restarts at λ = 0.8.
pub fn wdl_comparison(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Extension: wait-depth limited locking vs the paper's schedulers (DD=1)",
        vec![
            "scheduler",
            "Exp.1 TPS@70s",
            "Exp.2 TPS@70s",
            "restarts (Exp.1, λ=0.8)",
        ],
    );
    let mut kinds = vec![SchedulerKind::Wdl];
    kinds.extend(SchedulerKind::PAPER_SET);
    for kind in kinds {
        let exp1 = driver::throughput_at_rt(
            &base(opts, kind, WorkloadKind::Exp1 { num_files: 16 }),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        let exp2 = driver::throughput_at_rt(
            &base(opts, kind, WorkloadKind::Exp2),
            70.0,
            0.05,
            1.4,
            opts.bisect_iters,
        );
        let mut heavy = base(opts, kind, WorkloadKind::Exp1 { num_files: 16 });
        heavy.lambda_tps = 0.8;
        let hr = Simulator::run(&heavy);
        t.push_row(vec![
            kind.label(),
            f2(exp1.throughput_tps()),
            f2(exp2.throughput_tps()),
            hr.restarts.to_string(),
        ]);
    }
    t
}

/// All ablations in order.
pub fn run_all(opts: &ExpOptions) -> Vec<Table> {
    vec![
        low_k_sweep(opts),
        retry_delay_sweep(opts),
        admission_scan_sweep(opts),
        wdl_comparison(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        let mut o = ExpOptions::quick();
        o.horizon = Duration::from_secs(150);
        o.bisect_iters = 2;
        o
    }

    #[test]
    fn low_k_sweep_shape() {
        let t = low_k_sweep(&quick());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.header.len(), 3);
    }

    #[test]
    fn wdl_runs_end_to_end() {
        let mut cfg = SimConfig::new(
            SchedulerKind::Wdl,
            WorkloadKind::Exp1 { num_files: 16 },
        );
        cfg.lambda_tps = 0.5;
        cfg.horizon = Duration::from_secs(400);
        let r = Simulator::run(&cfg);
        assert!(r.completed > 100, "WDL completed only {}", r.completed);
        // Under contention WDL must actually restart sometimes.
        assert!(r.restarts > 0, "WDL never restarted at λ=0.5");
    }

    #[test]
    fn retry_delay_changes_results() {
        let t = retry_delay_sweep(&quick());
        assert_eq!(t.rows.len(), 3);
    }
}

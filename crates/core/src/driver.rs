//! Experiment drivers: λ-sweeps, the "throughput at RT = 70 s" search,
//! and response-time speedup computations.
//!
//! The paper reports three metrics (§4.2): mean response time,
//! throughput, and response-time *speedup* at a fixed arrival rate
//! (`RT at DD = 1` / `RT at DD = k`). Tables 2 and 4 and Figs. 9/13
//! report "throughput where the scheduler has a response time of 70
//! seconds" — the arrival rate at which mean RT crosses 70 s, found here
//! by bisection over λ (RT is monotone in λ).
//!
//! Every driver takes an [`ExecCtx`]: points are memoized in its
//! [`PointCache`](crate::parallel::PointCache), so bisection endpoints,
//! the final report, and any point another artifact already simulated
//! cost one `Simulator::run` per distinct config, total. λ-sweeps fan
//! out across the context's worker threads.

use std::sync::Arc;

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::parallel::ExecCtx;

/// Run one point (memoized).
pub fn run_point(ctx: &ExecCtx, cfg: &SimConfig) -> Arc<SimReport> {
    ctx.run_point(cfg)
}

/// Sweep arrival rates in parallel and return one report per λ, in
/// input order.
pub fn sweep_lambda(ctx: &ExecCtx, base: &SimConfig, lambdas: &[f64]) -> Vec<Arc<SimReport>> {
    ctx.map(lambdas, |_, &l| ctx.run_point(&base.clone().with_lambda(l)))
}

/// Mean RT (seconds) at a given λ.
fn rt_at(ctx: &ExecCtx, base: &SimConfig, lambda: f64) -> f64 {
    let r = ctx.run_point(&base.clone().with_lambda(lambda));
    if r.completed == 0 {
        f64::INFINITY
    } else {
        r.mean_rt_secs()
    }
}

/// Find the arrival rate at which mean response time reaches
/// `target_rt_secs`, by bisection on `[lo, hi]`; returns the throughput
/// measured at that rate (the paper's "TPS at Resp.Time = 70 sec").
///
/// If RT never reaches the target even at `hi`, returns the throughput
/// at `hi` (the scheduler saturates above the probe range). If RT
/// exceeds the target already at `lo`, returns the throughput at `lo`.
///
/// All probes go through the context's point cache: the `lo`/`hi`
/// endpoint probes and the final report reuse the bisection's own
/// measurements, so a search of `n` iterations costs exactly `n + 2`
/// simulator invocations on a cold cache (and fewer when another
/// artifact already visited some of the λ grid).
pub fn throughput_at_rt(
    ctx: &ExecCtx,
    base: &SimConfig,
    target_rt_secs: f64,
    mut lo: f64,
    mut hi: f64,
    iterations: u32,
) -> Arc<SimReport> {
    assert!(lo > 0.0 && hi > lo, "invalid bisection range");
    let rt_hi = rt_at(ctx, base, hi);
    if rt_hi < target_rt_secs {
        return ctx.run_point(&base.clone().with_lambda(hi));
    }
    let rt_lo = rt_at(ctx, base, lo);
    if rt_lo > target_rt_secs {
        return ctx.run_point(&base.clone().with_lambda(lo));
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if rt_at(ctx, base, mid) > target_rt_secs {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Report at the highest rate that stays within the target — already
    // simulated by the endpoint probe or the last accepted midpoint, so
    // this is a cache hit.
    ctx.run_point(&base.clone().with_lambda(lo))
}

/// Response-time speedup of a scheduler at a fixed arrival rate:
/// `RT(DD = 1) / RT(DD = dd)` (paper §4.2).
pub fn rt_speedup(ctx: &ExecCtx, base: &SimConfig, dd: u32) -> f64 {
    let rt1 = ctx.run_point(&base.clone().with_dd(1));
    let rtk = ctx.run_point(&base.clone().with_dd(dd));
    let (a, b) = (rt1.mean_rt_secs(), rtk.mean_rt_secs());
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// Result of a [`best_mpl`] search.
#[derive(Debug, Clone)]
pub struct MplChoice {
    /// The chosen multiprogramming-level cap.
    pub mpl: u32,
    /// The report at that cap.
    pub report: Arc<SimReport>,
    /// True when *every* candidate completed zero transactions. The
    /// report is then the lowest candidate's (by convention), and its
    /// response-time statistics are meaningless — callers must not rank
    /// schedulers by them.
    pub all_saturated: bool,
}

/// Find the best multiprogramming level for C2PL+M: sweep the mpl grid
/// in parallel and keep the configuration with the lowest mean RT among
/// candidates that completed work.
///
/// When no candidate completes anything (all saturated within the
/// horizon), the search cannot rank response times: the result carries
/// the *lowest* candidate mpl explicitly and sets
/// [`MplChoice::all_saturated`] so callers don't treat the empty
/// report's RT of 0 as a best case.
pub fn best_mpl(ctx: &ExecCtx, base: &SimConfig, candidates: &[u32]) -> MplChoice {
    assert!(!candidates.is_empty());
    let reports = ctx.map(candidates, |_, &m| ctx.run_point(&base.clone().with_mpl(m)));
    let mut best: Option<(u32, Arc<SimReport>)> = None;
    for (&m, r) in candidates.iter().zip(&reports) {
        // Prefer a run that actually completes work; among those, the
        // lowest mean RT wins.
        let better = match &best {
            None => r.completed > 0,
            Some((_, cur)) => r.completed > 0 && r.mean_rt_secs() < cur.mean_rt_secs(),
        };
        if better {
            best = Some((m, Arc::clone(r)));
        }
    }
    match best {
        Some((mpl, report)) => MplChoice {
            mpl,
            report,
            all_saturated: false,
        },
        None => {
            // Every candidate saturated: return the lowest mpl (the
            // least-overloaded configuration) and flag the result.
            let idx = candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &m)| m)
                .map(|(i, _)| i)
                .expect("non-empty candidate list");
            MplChoice {
                mpl: candidates[idx],
                report: Arc::clone(&reports[idx]),
                all_saturated: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadKind;
    use bds_des::time::Duration;
    use bds_sched::SchedulerKind;

    fn base() -> SimConfig {
        let mut c = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
        c.horizon = Duration::from_secs(500);
        c
    }

    #[test]
    fn sweep_produces_monotone_rt() {
        let ctx = ExecCtx::new(2);
        let rs = sweep_lambda(&ctx, &base(), &[0.2, 0.9]);
        assert_eq!(rs.len(), 2);
        assert!(
            rs[1].mean_rt_secs() > rs[0].mean_rt_secs(),
            "RT must grow with load: {} vs {}",
            rs[0].mean_rt_secs(),
            rs[1].mean_rt_secs()
        );
    }

    #[test]
    fn throughput_at_rt_lands_below_target() {
        let ctx = ExecCtx::serial();
        let r = throughput_at_rt(&ctx, &base(), 70.0, 0.1, 1.4, 5);
        assert!(r.completed > 0);
        // NODC's RT at its measured λ must be at or below ~70s (allow
        // bisection slack).
        assert!(r.mean_rt_secs() <= 90.0, "rt {}", r.mean_rt_secs());
    }

    #[test]
    fn bisection_never_resimulates_a_point() {
        let ctx = ExecCtx::serial();
        let iters = 5;
        let r = throughput_at_rt(&ctx, &base(), 70.0, 0.1, 1.4, iters);
        assert!(r.completed > 0);
        // hi probe + lo probe + one point per iteration; the final
        // report must come from the cache, not a fresh simulation.
        assert_eq!(
            ctx.cache().sim_runs(),
            u64::from(iters) + 2,
            "endpoint probes or the final report re-simulated a cached point"
        );
        assert!(ctx.cache().hits() >= 1, "final report must be a cache hit");
    }

    #[test]
    fn speedup_exceeds_one_under_load() {
        let ctx = ExecCtx::serial();
        let mut c = base();
        c.lambda_tps = 0.5;
        let s = rt_speedup(&ctx, &c, 8);
        assert!(s > 1.5, "DD=8 speedup {s}");
    }

    #[test]
    fn best_mpl_picks_a_candidate() {
        let ctx = ExecCtx::new(2);
        let mut c = base();
        c.scheduler = SchedulerKind::C2pl;
        c.lambda_tps = 0.8;
        let choice = best_mpl(&ctx, &c, &[4, 64]);
        assert!(choice.mpl == 4 || choice.mpl == 64);
        assert!(choice.report.completed > 0);
        assert!(!choice.all_saturated);
    }

    #[test]
    fn best_mpl_flags_all_saturated() {
        let ctx = ExecCtx::serial();
        let mut c = base();
        c.scheduler = SchedulerKind::C2pl;
        c.lambda_tps = 1.2;
        // A horizon shorter than any transaction's service time: nothing
        // can complete at any mpl.
        c.horizon = Duration::from_millis(10);
        let choice = best_mpl(&ctx, &c, &[64, 4, 16]);
        assert!(choice.all_saturated, "zero completions must be flagged");
        assert_eq!(choice.mpl, 4, "lowest candidate mpl wins on saturation");
        assert_eq!(choice.report.completed, 0);
    }
}

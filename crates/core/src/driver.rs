//! Experiment drivers: λ-sweeps, the "throughput at RT = 70 s" search,
//! and response-time speedup computations.
//!
//! The paper reports three metrics (§4.2): mean response time,
//! throughput, and response-time *speedup* at a fixed arrival rate
//! (`RT at DD = 1` / `RT at DD = k`). Tables 2 and 4 and Figs. 9/13
//! report "throughput where the scheduler has a response time of 70
//! seconds" — the arrival rate at which mean RT crosses 70 s, found here
//! by bisection over λ (RT is monotone in λ).

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::sim::Simulator;

/// Run one point.
pub fn run_point(cfg: &SimConfig) -> SimReport {
    Simulator::run(cfg)
}

/// Sweep arrival rates and return one report per λ.
pub fn sweep_lambda(base: &SimConfig, lambdas: &[f64]) -> Vec<SimReport> {
    lambdas
        .iter()
        .map(|&l| Simulator::run(&base.clone().with_lambda(l)))
        .collect()
}

/// Mean RT (seconds) at a given λ.
fn rt_at(base: &SimConfig, lambda: f64) -> f64 {
    let r = Simulator::run(&base.clone().with_lambda(lambda));
    if r.completed == 0 {
        f64::INFINITY
    } else {
        r.mean_rt_secs()
    }
}

/// Find the arrival rate at which mean response time reaches
/// `target_rt_secs`, by bisection on `[lo, hi]`; returns the throughput
/// measured at that rate (the paper's "TPS at Resp.Time = 70 sec").
///
/// If RT never reaches the target even at `hi`, returns the throughput
/// at `hi` (the scheduler saturates above the probe range). If RT
/// exceeds the target already at `lo`, returns the throughput at `lo`.
pub fn throughput_at_rt(
    base: &SimConfig,
    target_rt_secs: f64,
    mut lo: f64,
    mut hi: f64,
    iterations: u32,
) -> SimReport {
    assert!(lo > 0.0 && hi > lo, "invalid bisection range");
    let rt_hi = rt_at(base, hi);
    if rt_hi < target_rt_secs {
        return Simulator::run(&base.clone().with_lambda(hi));
    }
    let rt_lo = rt_at(base, lo);
    if rt_lo > target_rt_secs {
        return Simulator::run(&base.clone().with_lambda(lo));
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if rt_at(base, mid) > target_rt_secs {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Report at the highest rate that stays within the target.
    Simulator::run(&base.clone().with_lambda(lo))
}

/// Response-time speedup of a scheduler at a fixed arrival rate:
/// `RT(DD = 1) / RT(DD = dd)` (paper §4.2).
pub fn rt_speedup(base: &SimConfig, dd: u32) -> f64 {
    let rt1 = Simulator::run(&base.clone().with_dd(1));
    let rtk = Simulator::run(&base.clone().with_dd(dd));
    let (a, b) = (rt1.mean_rt_secs(), rtk.mean_rt_secs());
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// Find the best multiprogramming level for C2PL+M: sweep a small mpl
/// grid and keep the configuration with the lowest mean RT.
pub fn best_mpl(base: &SimConfig, candidates: &[u32]) -> (u32, SimReport) {
    assert!(!candidates.is_empty());
    let mut best: Option<(u32, SimReport)> = None;
    for &m in candidates {
        let r = Simulator::run(&base.clone().with_mpl(m));
        // Prefer a run that actually completes work; among those, the
        // lowest mean RT wins.
        let better = match &best {
            None => true,
            Some((_, cur)) => {
                let (rc, cc) = (r.completed, cur.completed);
                if rc == 0 {
                    false
                } else if cc == 0 {
                    true
                } else {
                    r.mean_rt_secs() < cur.mean_rt_secs()
                }
            }
        };
        if better {
            best = Some((m, r));
        }
    }
    best.expect("non-empty candidate list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadKind;
    use bds_des::time::Duration;
    use bds_sched::SchedulerKind;

    fn base() -> SimConfig {
        let mut c = SimConfig::new(
            SchedulerKind::Nodc,
            WorkloadKind::Exp1 { num_files: 16 },
        );
        c.horizon = Duration::from_secs(500);
        c
    }

    #[test]
    fn sweep_produces_monotone_rt() {
        let rs = sweep_lambda(&base(), &[0.2, 0.9]);
        assert_eq!(rs.len(), 2);
        assert!(
            rs[1].mean_rt_secs() > rs[0].mean_rt_secs(),
            "RT must grow with load: {} vs {}",
            rs[0].mean_rt_secs(),
            rs[1].mean_rt_secs()
        );
    }

    #[test]
    fn throughput_at_rt_lands_below_target() {
        let r = throughput_at_rt(&base(), 70.0, 0.1, 1.4, 5);
        assert!(r.completed > 0);
        // NODC's RT at its measured λ must be at or below ~70s (allow
        // bisection slack).
        assert!(r.mean_rt_secs() <= 90.0, "rt {}", r.mean_rt_secs());
    }

    #[test]
    fn speedup_exceeds_one_under_load() {
        let mut c = base();
        c.lambda_tps = 0.5;
        let s = rt_speedup(&c, 8);
        assert!(s > 1.5, "DD=8 speedup {s}");
    }

    #[test]
    fn best_mpl_picks_a_candidate() {
        let mut c = base();
        c.scheduler = SchedulerKind::C2pl;
        c.lambda_tps = 0.8;
        let (m, r) = best_mpl(&c, &[4, 64]);
        assert!(m == 4 || m == 64);
        assert!(r.completed > 0);
    }
}

//! The discrete-event simulator: §4.1's machine executing §2's batch
//! transactions under one of §3/§4.2's schedulers.
//!
//! ## Transaction lifecycle
//!
//! 1. **Arrival** (Poisson, rate λ) at the control node; the declaration
//!    is registered with the scheduler and the transaction joins the
//!    FIFO start queue.
//! 2. **Admission**: the scheduler's `try_start` runs (ASL checks its
//!    whole lock set; GOW tests chain form at `toptime`; LOW checks the
//!    K-conflict bound). Admitted transactions pay `sot_time` on the CN.
//! 3. **Steps**: each step needing a new lock submits a request; the
//!    scheduler grants (→ execute), blocks (→ wait for the file's locks
//!    to be released) or delays (→ wait for a state change / retry
//!    tick). Execution sends the transaction to the file's home node
//!    (one CN message), splits it into `DD` cohorts served round-robin
//!    at the DPNs, and returns (one CN message).
//! 4. **Commit**: `cot_time` on the CN (two-phase-commit coordination);
//!    OPT validates here and restarts from scratch on failure. Locks
//!    release, waiters wake, the WTPG drops the node.
//!
//! All CPU costs serialize through the CN's FCFS server; all scheduling
//! decisions take effect at the event that issued them (the CPU time
//! defers only the transaction's own progress), which keeps the
//! simulation deterministic.

use crate::arena::{Arena, IdMap};
use crate::config::SimConfig;
use crate::metrics::SimReport;
use bds_des::fcfs::FcfsServer;
use bds_des::stats::{Histogram, TimeWeighted, Welford};
use bds_des::time::{Duration, SimTime};
use bds_des::EventQueue;
use bds_fault::{DegradedMode, FaultAction};
use bds_machine::{Cohort, CohortId, Dpn, Placement};
use bds_metrics::{LogHistogram, Sampler, TimeSeries};
use bds_sched::{ReqDecision, Scheduler, StartDecision};
use bds_trace::{EventKind, Rec, TraceData, Tracer};
use bds_workload::arrivals::PoissonArrivals;
use bds_workload::gen::WorkloadGen;
use bds_workload::{BatchSpec, FileId};
use bds_wtpg::TxnId;
use std::collections::VecDeque;

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// The next transaction arrives.
    Arrival,
    /// The CN finished a processing phase for a transaction.
    CnDone { id: TxnId, phase: Phase },
    /// A DPN's current round-robin slice ended. `epoch` tombstones
    /// slices scheduled before a crash of the node: a crash bumps the
    /// node's epoch, so stale slice-ends are ignored.
    SliceEnd { node: u32, epoch: u32 },
    /// Periodic re-submission of blocked/delayed requests.
    RetryTick,
    /// An aborted transaction re-enters the start queue.
    Restart { id: TxnId },
    /// A fault-plan action fires (DPN crash/recovery, CN stall).
    Fault { action: FaultAction },
    /// A dispatch message delivers a cohort to its DPN after the link
    /// delay (only scheduled when the fault plan models link faults).
    CohortArrive { node: u32, cohort: Cohort },
}

/// CN processing phases.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Startup (`sot_time`) done; begin step 0.
    Started,
    /// Lock granted and send message processed; dispatch cohorts.
    Dispatch { step: usize },
    /// All cohorts returned and the receive message processed.
    StepDone { step: usize },
    /// Commit processing (`cot_time`) done; validate and finish.
    Commit,
}

/// Why a pending request is waiting.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WaitKind {
    Blocked,
    Delayed,
}

/// Why a transaction attempt was aborted.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AbortCause {
    /// OPT certification failed at commit.
    Validation,
    /// The scheduler ordered a restart (restart-oriented protocols).
    Scheduler,
    /// An injected fault (DPN crash) destroyed the attempt's cohorts.
    Fault,
}

#[derive(Debug)]
struct PendingReq {
    /// Submission sequence number; the `pending` vec is kept in
    /// ascending `seq` order, which is also retry order.
    seq: u64,
    id: TxnId,
    step: usize,
    file: FileId,
    kind: WaitKind,
    eligible: bool,
}

#[derive(Debug)]
struct Txn {
    spec: BatchSpec,
    arrival: SimTime,
    step: usize,
    outstanding_cohorts: u32,
    ever_started: bool,
    /// How many times a fault has killed an attempt of this
    /// transaction; drives the retry backoff and the permanent-kill cap.
    fault_kills: u32,
}

/// The simulator.
pub struct Simulator {
    cfg: SimConfig,
    placement: Placement,
    events: EventQueue<Event>,
    cn: FcfsServer,
    dpns: Vec<Dpn>,
    scheduler: Box<dyn Scheduler>,
    arrivals: PoissonArrivals,
    genr: Box<dyn WorkloadGen>,
    /// In-flight transactions in a slot arena (free-list reuse; see
    /// [`crate::arena`]) — never iterated, so the unordered index is
    /// determinism-safe.
    txns: Arena<Txn>,
    start_queue: VecDeque<TxnId>,
    /// Blocked/delayed lock requests in ascending `seq` order (inserts
    /// always append — `next_seq` is monotone — and removals preserve
    /// order), so retry sweeps visit requests in the same submission
    /// order the original `BTreeMap<u64, _>` gave.
    pending: Vec<PendingReq>,
    next_txn: u64,
    next_seq: u64,
    next_cohort: u64,
    /// Live cohort → owning transaction (unordered; lookups only).
    cohort_owner: IdMap,
    live: TimeWeighted,
    rt: Welford,
    /// Legacy 1-second-bin response-time histogram; allocated only under
    /// `cfg.legacy_second_bin_percentiles` (the log-bucketed `rt_log`
    /// serves percentiles otherwise), keeping per-run memory off the
    /// O(horizon) histogram in the default configuration.
    rt_hist: Option<Histogram>,
    arrived: u64,
    started: u64,
    completed: u64,
    restarts: u64,
    lock_requests: u64,
    requests_denied: u64,
    retry_tick_armed: bool,
    label: String,
    // ----- fault-injection state (all inert when the plan is empty) ---
    /// True when `cfg.faults` is non-empty; gates every fault-path
    /// branch so an empty plan stays byte-identical to the pre-fault
    /// simulator.
    faults_on: bool,
    /// True when the plan models link delay/loss: cohort dispatch goes
    /// through `CohortArrive` events instead of immediate delivery.
    link_on: bool,
    /// Dedicated fault RNG (link-loss draws). Never touches the
    /// workload or arrival streams.
    fault_rng: bds_des::rng::Xoshiro256,
    /// Per-DPN up/down flag.
    node_up: Vec<bool>,
    /// Per-DPN crash epoch; bumped on crash to tombstone stale
    /// `SliceEnd` events.
    dpn_epoch: Vec<u32>,
    /// When each currently-down DPN went down.
    down_since: Vec<Option<SimTime>>,
    /// Accumulated per-DPN downtime.
    downtime: Vec<Duration>,
    /// Cohorts parked under [`DegradedMode::Hold`] until their home
    /// node recovers: `(home node, cohort)` in arrival order.
    held_cohorts: Vec<(u32, Cohort)>,
    /// Aborts caused by OPT validation failure.
    aborts_validation: u64,
    /// Aborts ordered by the scheduler (restart-oriented protocols).
    aborts_scheduler: u64,
    /// Aborts caused by injected faults (DPN crashes).
    aborts_fault: u64,
    /// Transactions dropped permanently after exhausting the retry cap.
    killed: u64,
    /// Histogram of fault-kill attempt counts at permanent kill time.
    retry_hist: LogHistogram,
    /// Reused buffer for released/touched files at commit and abort.
    released_buf: Vec<FileId>,
    /// Reused buffer for eligible pending-request sequence numbers.
    eligible_buf: Vec<u64>,
    /// Lifecycle tracer. Lives on the simulator, **not** on `SimConfig`:
    /// the report must stay a pure function of the configuration
    /// (`cache_key` hashes the config), and tracing must never perturb
    /// the simulation itself.
    tracer: Tracer,
    /// Log-bucketed response-time histogram (sub-second percentiles).
    rt_log: LogHistogram,
    /// Time-series sampler. Like the tracer it lives off-config and only
    /// observes: with sampling off this costs one branch per event.
    metrics: Sampler,
    /// Counter/busy-time snapshot at the previous metrics sample, for
    /// per-window rates and utilizations.
    metrics_prev: PrevSample,
}

/// Snapshot of cumulative quantities at the last metrics grid point.
#[derive(Debug, Clone, Default)]
struct PrevSample {
    at_ms: u64,
    arrived: u64,
    completed: u64,
    restarts: u64,
    denied: u64,
    lock_requests: u64,
    cn_busy_ms: f64,
    dpn_busy_ms: Vec<f64>,
}

/// Column names of the metrics time series, in row order.
fn metric_columns(num_nodes: u32) -> Vec<String> {
    let mut names: Vec<String> = [
        "mpl_live",
        "start_queue",
        "cn_util",
        "cn_backlog_secs",
        "locks_held",
        "wtpg_nodes",
        "wtpg_edges",
        "arrivals_ps",
        "commits_ps",
        "restarts_ps",
        "denied_ps",
        "lock_reqs_ps",
        "dpn_util",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for n in 0..num_nodes {
        names.push(format!("dpn{n}_util"));
    }
    names.push("nodes_up".to_string());
    names
}

impl Simulator {
    /// Build a simulator from a configuration (workload taken from
    /// `cfg.workload`).
    pub fn new(cfg: &SimConfig) -> Self {
        cfg.validate();
        let mut master = bds_des::rng::Xoshiro256::seed_from_u64(cfg.seed);
        let arrival_rng = master.fork();
        let workload_rng = master.fork();
        let genr = cfg.workload.build(workload_rng);
        Self::with_generator(cfg, genr, arrival_rng)
    }

    /// Build with an explicit workload generator (for custom workloads
    /// beyond the paper's experiments).
    pub fn with_generator(
        cfg: &SimConfig,
        genr: Box<dyn WorkloadGen>,
        arrival_rng: bds_des::rng::Xoshiro256,
    ) -> Self {
        cfg.validate();
        let placement = Placement::new(cfg.costs.num_nodes, cfg.dd);
        let arrivals = PoissonArrivals::new(cfg.lambda_tps, arrival_rng);
        let mut events = EventQueue::new();
        events.schedule_at(arrivals.peek(), Event::Arrival);
        let faults_on = !cfg.faults.is_empty();
        if faults_on {
            // Fault actions are ordinary DES events: the expanded
            // timeline is scheduled up front, deterministically.
            for (at, action) in cfg.faults.timeline(cfg.costs.num_nodes, cfg.horizon) {
                events.schedule_at(at, Event::Fault { action });
            }
        }
        let num_nodes = cfg.costs.num_nodes as usize;
        Simulator {
            placement,
            events,
            cn: FcfsServer::new(SimTime::ZERO),
            dpns: (0..cfg.costs.num_nodes).map(|_| Dpn::new()).collect(),
            scheduler: cfg.scheduler.build(&cfg.costs),
            arrivals,
            genr,
            txns: Arena::new(),
            start_queue: VecDeque::new(),
            pending: Vec::new(),
            next_txn: 1,
            next_seq: 1,
            next_cohort: 1,
            cohort_owner: IdMap::new(),
            live: TimeWeighted::new(SimTime::ZERO, 0.0),
            rt: Welford::new(),
            // 1-second buckets over the whole horizon range; only the
            // legacy percentile engine reads it, so only then allocate.
            rt_hist: cfg
                .legacy_second_bin_percentiles
                .then(|| Histogram::new(1.0, 4000)),
            arrived: 0,
            started: 0,
            completed: 0,
            restarts: 0,
            lock_requests: 0,
            requests_denied: 0,
            retry_tick_armed: false,
            label: cfg.scheduler.label(),
            faults_on,
            link_on: faults_on && !cfg.faults.link.is_perfect(),
            fault_rng: bds_des::rng::Xoshiro256::seed_from_u64(cfg.faults.rng_seed(cfg.seed)),
            node_up: vec![true; num_nodes],
            dpn_epoch: vec![0; num_nodes],
            down_since: vec![None; num_nodes],
            downtime: vec![Duration::ZERO; num_nodes],
            held_cohorts: Vec::new(),
            aborts_validation: 0,
            aborts_scheduler: 0,
            aborts_fault: 0,
            killed: 0,
            retry_hist: LogHistogram::new(),
            released_buf: Vec::new(),
            eligible_buf: Vec::new(),
            tracer: Tracer::Off,
            rt_log: LogHistogram::new(),
            metrics: Sampler::Off,
            metrics_prev: PrevSample::default(),
            cfg: cfg.clone(),
        }
    }

    /// Run to the horizon and report.
    pub fn run(cfg: &SimConfig) -> SimReport {
        let mut sim = Simulator::new(cfg);
        sim.run_to_horizon();
        sim.report()
    }

    /// Run with a ring-buffer tracer of the given capacity and return
    /// both the report and the captured trace. The report is
    /// byte-identical to an untraced [`Simulator::run`] of the same
    /// configuration — tracing only observes.
    pub fn run_traced(cfg: &SimConfig, capacity: usize) -> (SimReport, TraceData) {
        let mut sim = Simulator::new(cfg);
        sim.set_tracer(Tracer::ring(capacity));
        sim.run_to_horizon();
        let report = sim.report();
        let data = sim.take_trace().expect("ring tracer was installed");
        (report, data)
    }

    /// Run with time-series sampling every `dt` of simulated time,
    /// returning the report and the sampled series. The report is
    /// byte-identical to an unsampled [`Simulator::run`] of the same
    /// configuration — sampling only observes.
    pub fn run_with_metrics(cfg: &SimConfig, dt: Duration) -> (SimReport, TimeSeries) {
        let mut sim = Simulator::new(cfg);
        sim.set_metrics_interval(dt);
        sim.run_to_horizon();
        let report = sim.report();
        let series = sim.take_metrics().expect("sampler was installed");
        (report, series)
    }

    /// Install a tracer (replace any previous one). Call before
    /// [`Simulator::run_to_horizon`] to capture the whole run.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Enable metrics sampling at the given simulated-time interval
    /// (replace any previous sampler). Call before
    /// [`Simulator::run_to_horizon`].
    pub fn set_metrics_interval(&mut self, dt: Duration) {
        let names = metric_columns(self.cfg.costs.num_nodes);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.metrics = Sampler::every_ms(dt.as_millis(), &refs);
        self.metrics_prev = PrevSample {
            dpn_busy_ms: vec![0.0; self.cfg.costs.num_nodes as usize],
            ..PrevSample::default()
        };
    }

    /// Detach the sampler and return the series (`None` when sampling
    /// was off).
    pub fn take_metrics(&mut self) -> Option<TimeSeries> {
        std::mem::take(&mut self.metrics).finish()
    }

    /// The log-bucketed response-time histogram over committed
    /// transactions (exporters render its buckets directly).
    pub fn rt_histogram(&self) -> &LogHistogram {
        &self.rt_log
    }

    /// Detach the tracer and return its captured data (`None` when
    /// tracing was off).
    pub fn take_trace(&mut self) -> Option<TraceData> {
        std::mem::take(&mut self.tracer).finish()
    }

    /// Drive the event loop until the horizon.
    pub fn run_to_horizon(&mut self) {
        let horizon = SimTime::ZERO + self.cfg.horizon;
        while let Some(t) = self.events.peek_time() {
            if t > horizon {
                break;
            }
            // State is piecewise constant between events, so sampling
            // the pre-event state covers every grid point up to `t`
            // exactly. One predictable branch when sampling is off.
            if self.metrics.due(t) {
                self.sample_metrics(t);
            }
            let scheduled = self.events.pop().expect("peeked event vanished");
            self.handle(scheduled.event);
        }
        // Fill the grid to the horizon so the series spans the whole
        // run even when the event queue drains early.
        if self.metrics.due(horizon) {
            self.sample_metrics(horizon);
        }
    }

    /// Record one row per unsampled grid point `≤ upto` (the state seen
    /// is the one in force since the last processed event).
    fn sample_metrics(&mut self, upto: SimTime) {
        let mpl = self.scheduler.live_count() as f64;
        let start_q = self.start_queue.len() as f64;
        let tel = self.scheduler.telemetry();
        let upto_ms = upto.as_millis();
        let Some(s) = self.metrics.active() else {
            return;
        };
        while s.next_ms() <= upto_ms {
            let at = SimTime::from_millis(s.next_ms());
            let at_ms = s.next_ms() as f64;
            let prev = &mut self.metrics_prev;
            let window_ms = (s.next_ms() - prev.at_ms) as f64;
            let window_secs = window_ms / 1000.0;
            // Busy-time deltas: utilization(at) integrates the busy step
            // function over [0, at], so util·at is cumulative busy time.
            // Clamped: the reconstruction wobbles by a few ulps.
            let cn_busy = self.cn.utilization(at) * at_ms;
            let cn_util = ((cn_busy - prev.cn_busy_ms) / window_ms).clamp(0.0, 1.0);
            let cn_backlog = self.cn.free_at().saturating_since(at).as_secs_f64();
            let mut dpn_sum = 0.0;
            let mut dpn_row = Vec::with_capacity(self.dpns.len());
            for (n, d) in self.dpns.iter().enumerate() {
                let busy = d.utilization(at) * at_ms;
                let u = ((busy - prev.dpn_busy_ms[n]) / window_ms).clamp(0.0, 1.0);
                prev.dpn_busy_ms[n] = busy;
                dpn_sum += u;
                dpn_row.push(u);
            }
            s.row.clear();
            s.row.push(mpl);
            s.row.push(start_q);
            s.row.push(cn_util);
            s.row.push(cn_backlog);
            s.row.push(tel.locks_held as f64);
            s.row.push(tel.wtpg_nodes as f64);
            s.row.push(tel.wtpg_edges as f64);
            s.row
                .push((self.arrived - prev.arrived) as f64 / window_secs);
            s.row
                .push((self.completed - prev.completed) as f64 / window_secs);
            s.row
                .push((self.restarts - prev.restarts) as f64 / window_secs);
            s.row
                .push((self.requests_denied - prev.denied) as f64 / window_secs);
            s.row
                .push((self.lock_requests - prev.lock_requests) as f64 / window_secs);
            s.row.push(dpn_sum / self.dpns.len() as f64);
            s.row.extend_from_slice(&dpn_row);
            s.row
                .push(self.node_up.iter().filter(|&&up| up).count() as f64);
            prev.at_ms = s.next_ms();
            prev.arrived = self.arrived;
            prev.completed = self.completed;
            prev.restarts = self.restarts;
            prev.denied = self.requests_denied;
            prev.lock_requests = self.lock_requests;
            prev.cn_busy_ms = cn_busy;
            s.commit_row();
        }
    }

    /// Response-time quantile from the active percentile engine: the
    /// log-bucketed histogram (≤ 1 % relative error) by default, or the
    /// legacy 1-second-bin histogram under the compatibility flag.
    fn rt_quantile(&self, q: f64) -> Option<f64> {
        match &self.rt_hist {
            Some(h) => h.quantile(q),
            None => self.rt_log.quantile(q),
        }
    }

    /// Per-DPN downtime accumulated up to `at` (nodes still down are
    /// charged through `at`).
    pub fn node_downtime(&self, at: SimTime) -> Vec<Duration> {
        self.downtime
            .iter()
            .zip(&self.down_since)
            .map(|(&d, since)| match since {
                Some(s) => d + at.saturating_since(*s),
                None => d,
            })
            .collect()
    }

    /// Transactions arrived but neither committed nor killed yet.
    pub fn in_flight(&self) -> u64 {
        self.txns.len() as u64
    }

    /// Histogram of fault-kill attempt counts at permanent kill time.
    pub fn retry_histogram(&self) -> &LogHistogram {
        &self.retry_hist
    }

    /// Produce the report (callable after `run_to_horizon`).
    pub fn report(&self) -> SimReport {
        let horizon = SimTime::ZERO + self.cfg.horizon;
        let dpn_util = self
            .dpns
            .iter()
            .map(|d| d.utilization(horizon))
            .sum::<f64>()
            / self.dpns.len() as f64;
        let downtime_secs: f64 = self
            .node_downtime(horizon)
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        let node_secs = self.dpns.len() as f64 * self.cfg.horizon.as_secs_f64();
        SimReport {
            scheduler: self.label.clone(),
            lambda_tps: self.cfg.lambda_tps,
            dd: self.cfg.dd,
            horizon_secs: self.cfg.horizon.as_secs_f64(),
            arrived: self.arrived,
            started: self.started,
            completed: self.completed,
            restarts: self.restarts,
            rt: self.rt,
            cn_utilization: self.cn.utilization(horizon),
            dpn_utilization: dpn_util,
            mean_live: self.live.average(horizon),
            rt_p50_secs: self.rt_quantile(0.50),
            rt_p90_secs: self.rt_quantile(0.90),
            rt_p99_secs: self.rt_quantile(0.99),
            queued_at_end: self.start_queue.len() as u64,
            events: self.events.events_processed(),
            lock_requests: self.lock_requests,
            requests_denied: self.requests_denied,
            aborts_validation: self.aborts_validation,
            aborts_scheduler: self.aborts_scheduler,
            aborts_fault: self.aborts_fault,
            killed: self.killed,
            availability: 1.0 - downtime_secs / node_secs,
            downtime_secs,
        }
    }

    /// Replace the scheduler with a custom implementation (extension
    /// point beyond the paper's six). Must be called before the first
    /// event is processed.
    ///
    /// # Panics
    /// Panics if the simulation has already started.
    pub fn replace_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        assert_eq!(
            self.events.events_processed(),
            0,
            "replace_scheduler after events were processed"
        );
        self.label = scheduler.name().to_string();
        self.scheduler = scheduler;
    }

    /// Drain the precedence constraints the scheduler observed — used by
    /// the serializability audit in the integration tests.
    pub fn drain_constraints(&mut self) -> Vec<(TxnId, TxnId)> {
        self.scheduler.drain_constraints()
    }

    /// Access the scheduler (e.g. for downcasting to read statistics in
    /// tests).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The lifecycle record of a live transaction.
    ///
    /// # Panics
    /// Panics if `id` is not in flight.
    fn txn(&self, id: TxnId) -> &Txn {
        self.txns.get(id.0).expect("unknown txn")
    }

    /// Position of a pending request by its submission seq.
    fn pending_pos(&self, seq: u64) -> Option<usize> {
        self.pending.binary_search_by_key(&seq, |p| p.seq).ok()
    }

    /// Drop a pending request by seq (no-op when already gone).
    fn remove_pending(&mut self, seq: u64) {
        if let Some(i) = self.pending_pos(seq) {
            self.pending.remove(i);
        }
    }

    /// Enqueue CN work, tracing the busy span `[begin, end]` when the
    /// demand is non-zero. `what` labels the burst ("sot", "cot", …).
    fn cn_work(
        &mut self,
        now: SimTime,
        demand: Duration,
        txn: Option<TxnId>,
        what: &'static str,
    ) -> SimTime {
        let (begin, end) = self.cn.enqueue_span(now, demand);
        if !demand.is_zero() {
            self.tracer.emit(|| Rec {
                at: end,
                kind: EventKind::CnCpu {
                    txn,
                    what,
                    start: begin,
                },
            });
        }
        end
    }

    /// Record precedence edges the scheduler decided since the last call.
    /// Only drains the scheduler's constraint log when tracing is on, so
    /// the serializability audit (which drains it itself) is unaffected
    /// by untraced runs.
    fn trace_edges(&mut self) {
        if !self.tracer.enabled() {
            return;
        }
        let now = self.now();
        for (from, to) in self.scheduler.drain_constraints() {
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::WtpgEdge { from, to },
            });
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Arrival => self.on_arrival(),
            Event::CnDone { id, phase } => self.on_cn_done(id, phase),
            Event::SliceEnd { node, epoch } => self.on_slice_end(node, epoch),
            Event::RetryTick => self.on_retry_tick(),
            Event::Restart { id } => {
                let now = self.now();
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::Restart { txn: id },
                });
                self.start_queue.push_back(id);
                self.try_admissions();
            }
            Event::Fault { action } => self.on_fault(action),
            Event::CohortArrive { node, cohort } => {
                let now = self.now();
                self.deliver_cohort(now, node, cohort);
            }
        }
    }

    // ----- arrivals & admission ---------------------------------------

    fn on_arrival(&mut self) {
        let now = self.now();
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let mut spec = self.genr.next_batch();
        // Declared demands scale with parallelism: a step of cost C
        // declares C/k when DD = k (§4.2).
        let dd = self.cfg.dd as f64;
        for s in &mut spec.steps {
            s.declared /= dd;
        }
        self.scheduler.register(id, spec.clone());
        self.txns.insert(
            id.0,
            Txn {
                spec,
                arrival: now,
                step: 0,
                outstanding_cohorts: 0,
                ever_started: false,
                fault_kills: 0,
            },
        );
        self.arrived += 1;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Arrival { txn: id },
        });
        self.start_queue.push_back(id);
        // Next arrival.
        let t = self.arrivals.pop();
        debug_assert_eq!(t, now);
        self.events
            .schedule_at(self.arrivals.peek(), Event::Arrival);
        self.try_admissions();
    }

    fn mpl_room(&self) -> bool {
        match self.cfg.mpl {
            None => true,
            Some(m) => (self.scheduler.live_count() as u32) < m,
        }
    }

    fn try_admissions(&mut self) {
        let now = self.now();
        let mut costed_tests = 0usize;
        let mut i = 0usize;
        while i < self.start_queue.len() {
            if !self.mpl_room() {
                break;
            }
            let id = self.start_queue[i];
            let outcome = self.scheduler.try_start(id);
            if !outcome.cpu.is_zero() {
                self.cn_work(now, outcome.cpu, Some(id), "sched");
                costed_tests += 1;
            }
            match outcome.decision {
                StartDecision::Admit => {
                    self.start_queue.remove(i);
                    self.tracer.emit(|| Rec {
                        at: now,
                        kind: EventKind::Admit { txn: id },
                    });
                    self.trace_edges();
                    let txn = self.txns.get_mut(id.0).expect("admitted unknown txn");
                    if !txn.ever_started {
                        txn.ever_started = true;
                        self.started += 1;
                    }
                    txn.step = 0;
                    self.live.add(now, 1.0);
                    let done = self.cn_work(now, self.cfg.costs.sot_time, Some(id), "sot");
                    self.events.schedule_at(
                        done,
                        Event::CnDone {
                            id,
                            phase: Phase::Started,
                        },
                    );
                }
                StartDecision::Refuse => {
                    let reason = outcome.reason.unwrap_or("refused");
                    self.tracer.emit(|| Rec {
                        at: now,
                        kind: EventKind::AdmitRefuse { txn: id, reason },
                    });
                    i += 1;
                    if costed_tests >= self.cfg.admission_scan_limit {
                        break;
                    }
                }
            }
        }
    }

    // ----- CN phases ---------------------------------------------------

    fn on_cn_done(&mut self, id: TxnId, phase: Phase) {
        match phase {
            Phase::Started => self.begin_step(id, 0),
            Phase::Dispatch { step } => self.dispatch_step(id, step),
            Phase::StepDone { step } => self.finish_step(id, step),
            Phase::Commit => self.finish_txn(id),
        }
    }

    fn begin_step(&mut self, id: TxnId, step: usize) {
        let needs_lock = self.txn(id).spec.needs_lock_request(step);
        if needs_lock {
            self.submit_request(id, step, None);
        } else {
            // Lock already covered: only the send message is needed.
            let now = self.now();
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "msg");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::Dispatch { step },
                },
            );
        }
    }

    /// Submit (or retry, when `pending_seq` is given) a lock request.
    /// Returns true if the request was granted.
    fn submit_request(&mut self, id: TxnId, step: usize, pending_seq: Option<u64>) -> bool {
        let now = self.now();
        self.lock_requests += 1;
        let file = self.txn(id).spec.steps[step].file;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::LockRequest {
                txn: id,
                step: step as u32,
                file,
            },
        });
        let outcome = self.scheduler.request(id, step);
        match outcome.decision {
            ReqDecision::Granted => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::LockGrant {
                        txn: id,
                        step: step as u32,
                        file,
                    },
                });
                self.trace_edges();
                if let Some(seq) = pending_seq {
                    self.remove_pending(seq);
                }
                let done = self.cn_work(
                    now,
                    outcome.cpu + self.cfg.costs.msg_time,
                    Some(id),
                    "grant+msg",
                );
                self.events.schedule_at(
                    done,
                    Event::CnDone {
                        id,
                        phase: Phase::Dispatch { step },
                    },
                );
                true
            }
            ReqDecision::Restart => {
                let reason = outcome.reason.unwrap_or("restart");
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::LockRestart {
                        txn: id,
                        step: step as u32,
                        file,
                        reason,
                    },
                });
                if !outcome.cpu.is_zero() {
                    self.cn_work(now, outcome.cpu, Some(id), "sched");
                }
                if let Some(seq) = pending_seq {
                    self.remove_pending(seq);
                }
                self.restart_txn(id);
                false
            }
            ReqDecision::Blocked | ReqDecision::Delayed => {
                if !outcome.cpu.is_zero() {
                    self.cn_work(now, outcome.cpu, Some(id), "sched");
                }
                self.requests_denied += 1;
                let kind = if outcome.decision == ReqDecision::Blocked {
                    WaitKind::Blocked
                } else {
                    WaitKind::Delayed
                };
                let reason = outcome.reason.unwrap_or(match kind {
                    WaitKind::Blocked => "lock-held",
                    WaitKind::Delayed => "delayed",
                });
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: match kind {
                        WaitKind::Blocked => EventKind::LockBlock {
                            txn: id,
                            step: step as u32,
                            file,
                            reason,
                        },
                        WaitKind::Delayed => EventKind::LockDeny {
                            txn: id,
                            step: step as u32,
                            file,
                            reason,
                        },
                    },
                });
                match pending_seq {
                    Some(seq) => {
                        let i = self.pending_pos(seq).expect("pending vanished");
                        let p = &mut self.pending[i];
                        p.kind = kind;
                        p.eligible = false;
                    }
                    None => {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        // `next_seq` is monotone, so this append keeps
                        // `pending` sorted by seq.
                        self.pending.push(PendingReq {
                            seq,
                            id,
                            step,
                            file,
                            kind,
                            eligible: false,
                        });
                    }
                }
                self.arm_retry_tick();
                false
            }
        }
    }

    fn dispatch_step(&mut self, id: TxnId, step: usize) {
        let now = self.now();
        let (file, cost) = {
            let s = &self.txn(id).spec.steps[step];
            (s.file, s.cost)
        };
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::StepDispatch {
                txn: id,
                step: step as u32,
            },
        });
        let nodes = self.placement.nodes(file);
        let per_cohort = self.placement.cohort_objects(cost);
        let work = self.cfg.costs.scan_time(per_cohort);
        if work.is_zero() {
            // Degenerate zero-I/O step: return immediately (receive msg).
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "recv");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::StepDone { step },
                },
            );
            return;
        }
        let quantum = self.cfg.costs.quantum(self.cfg.dd);
        self.txns
            .get_mut(id.0)
            .expect("dispatch unknown txn")
            .outstanding_cohorts = nodes.len() as u32;
        let start_at = now + self.cfg.costs.net_delay;
        for node in nodes {
            let cid = CohortId(self.next_cohort);
            self.next_cohort += 1;
            self.cohort_owner.insert(cid.0, id.0);
            let cohort = Cohort {
                id: cid,
                remaining: work,
                quantum,
            };
            if !self.faults_on {
                // Fault-free fast path, byte-identical to the pre-fault
                // simulator.
                self.tracer.emit(|| Rec {
                    at: start_at,
                    kind: EventKind::CohortStart {
                        txn: id,
                        step: step as u32,
                        node: node.0,
                    },
                });
                // net_delay is zero in the paper; the cohort starts now.
                debug_assert_eq!(start_at, now);
                if let Some(end) = self.dpns[node.0 as usize].add_cohort(start_at, cohort) {
                    self.events.schedule_at(
                        end,
                        Event::SliceEnd {
                            node: node.0,
                            epoch: self.dpn_epoch[node.0 as usize],
                        },
                    );
                }
                continue;
            }
            // Fault path: apply the link model, then degraded routing at
            // delivery time.
            let link = self.cfg.faults.link;
            if !self.link_on {
                self.deliver_cohort(start_at, node.0, cohort);
                continue;
            }
            let mut deliver_at = start_at + link.delay;
            if link.loss_per_mille > 0
                && self.fault_rng.next_range(1000) < u64::from(link.loss_per_mille)
            {
                // The dispatch message is lost; the home node redelivers
                // after its timeout.
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: Some(node.0),
                        what: "link-loss",
                    },
                });
                deliver_at += link.redeliver_after;
            }
            self.events.schedule_at(
                deliver_at,
                Event::CohortArrive {
                    node: node.0,
                    cohort,
                },
            );
        }
    }

    /// Hand a dispatched cohort to its DPN, applying degraded-mode
    /// routing when the target is down. Drops the cohort silently when
    /// its owner was aborted while the message was in flight.
    fn deliver_cohort(&mut self, now: SimTime, node: u32, cohort: Cohort) {
        let Some(owner) = self.cohort_owner.get(cohort.id.0).map(TxnId) else {
            return;
        };
        let target = if self.node_up[node as usize] {
            Some(node)
        } else {
            match self.cfg.faults.degraded {
                DegradedMode::Reroute => self.first_up_node(node),
                DegradedMode::Hold => None,
            }
        };
        let Some(n) = target else {
            self.held_cohorts.push((node, cohort));
            return;
        };
        let step = self.txn(owner).step as u32;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::CohortStart {
                txn: owner,
                step,
                node: n,
            },
        });
        if let Some(end) = self.dpns[n as usize].add_cohort(now, cohort) {
            self.events.schedule_at(
                end,
                Event::SliceEnd {
                    node: n,
                    epoch: self.dpn_epoch[n as usize],
                },
            );
        }
    }

    /// The first up node at or after `from` in ring order, if any.
    fn first_up_node(&self, from: u32) -> Option<u32> {
        let n = self.node_up.len() as u32;
        (0..n)
            .map(|k| (from + k) % n)
            .find(|&cand| self.node_up[cand as usize])
    }

    fn on_slice_end(&mut self, node: u32, epoch: u32) {
        if epoch != self.dpn_epoch[node as usize] {
            // Scheduled before the node crashed: the slice never ran.
            return;
        }
        let now = self.now();
        let out = self.dpns[node as usize].on_slice_end(now);
        if let Some(end) = out.next_slice_end {
            self.events
                .schedule_at(end, Event::SliceEnd { node, epoch });
        }
        if self.tracer.enabled() {
            // Owner lookup must precede the `finished` removal below.
            if let Some(txn) = self.cohort_owner.get(out.ran.0).map(TxnId) {
                let start = now - out.slice;
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::Quantum { txn, node, start },
                });
            }
        }
        if let Some(cid) = out.finished {
            let id = match self.cohort_owner.remove(cid.0).map(TxnId) {
                Some(id) => id,
                None => {
                    // Orphan of a fault-aborted transaction: its CPU was
                    // wasted, its completion is ignored.
                    debug_assert!(self.faults_on, "finished cohort has no owner");
                    return;
                }
            };
            let cur_step = self.txn(id).step as u32;
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::CohortFinish {
                    txn: id,
                    step: cur_step,
                    node,
                },
            });
            let step = {
                let txn = self.txns.get_mut(id.0).expect("cohort of unknown txn");
                txn.outstanding_cohorts -= 1;
                if txn.outstanding_cohorts > 0 {
                    return;
                }
                txn.step
            };
            // All cohorts returned to the home node; the transaction
            // returns to the CN (receive message).
            let done = self.cn_work(now, self.cfg.costs.msg_time, Some(id), "recv");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::StepDone { step },
                },
            );
        }
    }

    fn finish_step(&mut self, id: TxnId, step: usize) {
        let now = self.now();
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::StepDone {
                txn: id,
                step: step as u32,
            },
        });
        self.scheduler.step_complete(id, step);
        let total_steps = self.txn(id).spec.len();
        let next = step + 1;
        self.txns.get_mut(id.0).expect("unknown txn").step = next;
        if next < total_steps {
            self.begin_step(id, next);
        } else {
            let done = self.cn_work(now, self.cfg.costs.cot_time, Some(id), "cot");
            self.events.schedule_at(
                done,
                Event::CnDone {
                    id,
                    phase: Phase::Commit,
                },
            );
        }
    }

    fn finish_txn(&mut self, id: TxnId) {
        let now = self.now();
        let valid = self.scheduler.validate(id).decision;
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Certify { txn: id, ok: valid },
        });
        if valid {
            let mut touched = std::mem::take(&mut self.released_buf);
            touched.clear();
            self.scheduler.commit_into(id, &mut touched);
            let txn = self.txns.remove(id.0).expect("commit of unknown txn");
            self.live.add(now, -1.0);
            self.completed += 1;
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::Commit { txn: id },
            });
            let rt_secs = now.since(txn.arrival).as_secs_f64();
            self.rt.push(rt_secs);
            if let Some(h) = &mut self.rt_hist {
                h.record(rt_secs);
            }
            self.rt_log.record_secs(rt_secs);
            // Files the committed transaction touched (declared), even
            // if the scheduler held no lock on them (OPT): their
            // contention state changed.
            touched.extend(txn.spec.steps.iter().map(|s| s.file));
            touched.sort_unstable();
            touched.dedup();
            self.wake_waiters(&touched);
            self.released_buf = touched;
            self.sweep_retries();
            self.try_admissions();
        } else {
            // OPT validation failure: abort and restart from scratch.
            self.abort_txn(id, AbortCause::Validation);
            self.try_admissions();
        }
    }

    /// Abort `id` and queue its restart; all its I/O will be redone.
    ///
    /// Scheduler and validation aborts retry after `restart_delay`
    /// (unchanged legacy behaviour). Fault aborts retry under the
    /// plan's exponential-backoff policy and are killed permanently —
    /// scheduler state dropped via [`Scheduler::forget`], no restart —
    /// once the kill count reaches the retry cap.
    fn abort_txn(&mut self, id: TxnId, cause: AbortCause) {
        let now = self.now();
        self.restarts += 1;
        match cause {
            AbortCause::Validation => self.aborts_validation += 1,
            AbortCause::Scheduler => self.aborts_scheduler += 1,
            AbortCause::Fault => self.aborts_fault += 1,
        }
        self.tracer.emit(|| Rec {
            at: now,
            kind: EventKind::Abort { txn: id },
        });
        let kills = if cause == AbortCause::Fault {
            let txn = self.txns.get_mut(id.0).expect("fault abort of unknown txn");
            txn.fault_kills += 1;
            txn.fault_kills
        } else {
            0
        };
        let kill_for_good =
            cause == AbortCause::Fault && kills >= self.cfg.faults.retry.max_attempts;
        let mut released = std::mem::take(&mut self.released_buf);
        released.clear();
        if kill_for_good {
            self.scheduler.forget(id, &mut released);
        } else {
            self.scheduler.abort_into(id, &mut released);
        }
        self.live.add(now, -1.0);
        let had_cohorts = {
            let txn = self.txns.get_mut(id.0).expect("abort of unknown txn");
            let had = txn.outstanding_cohorts > 0;
            txn.step = 0;
            txn.outstanding_cohorts = 0;
            had
        };
        if had_cohorts {
            // Orphan every cohort of the aborted attempt: still-running
            // or in-flight cohorts lose their owner and are dropped when
            // they finish or arrive. Only fault aborts can get here —
            // scheduler/validation aborts never have work outstanding.
            self.cohort_owner.retain(|_, owner| owner != id.0);
        }
        if kill_for_good {
            self.txns.remove(id.0);
            self.killed += 1;
            self.retry_hist.record_ticks(u64::from(kills));
            self.tracer.emit(|| Rec {
                at: now,
                kind: EventKind::TxnKilled {
                    txn: id,
                    attempts: kills,
                },
            });
            // Defensive: a killed transaction must not linger anywhere.
            self.pending.retain(|p| p.id != id);
        } else {
            let delay = if cause == AbortCause::Fault {
                self.cfg.faults.retry.delay_for(kills)
            } else {
                self.cfg.restart_delay
            };
            self.events.schedule_after(delay, Event::Restart { id });
        }
        self.wake_waiters(&released);
        self.released_buf = released;
    }

    /// Legacy entry point: abort with the scheduler cause.
    fn restart_txn(&mut self, id: TxnId) {
        self.abort_txn(id, AbortCause::Scheduler);
    }

    // ----- fault injection --------------------------------------------

    fn on_fault(&mut self, action: FaultAction) {
        let now = self.now();
        match action {
            FaultAction::CrashNode { node } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: Some(node),
                        what: "dpn-crash",
                    },
                });
                let n = node as usize;
                self.node_up[n] = false;
                self.down_since[n] = Some(now);
                // Tombstone every slice scheduled on this node.
                self.dpn_epoch[n] += 1;
                let lost = self.dpns[n].crash(now);
                let mut victims: Vec<TxnId> = lost
                    .iter()
                    .filter_map(|cid| self.cohort_owner.remove(cid.0).map(TxnId))
                    .collect();
                victims.sort_unstable();
                victims.dedup();
                for id in victims {
                    self.abort_txn(id, AbortCause::Fault);
                }
                self.sweep_retries();
                self.try_admissions();
            }
            FaultAction::RecoverNode { node } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::NodeRecovered { node },
                });
                let n = node as usize;
                self.node_up[n] = true;
                if let Some(since) = self.down_since[n].take() {
                    self.downtime[n] += now.since(since);
                }
                // Deliver cohorts held for this node (Hold mode); their
                // owners may have been aborted meanwhile, in which case
                // deliver_cohort drops them.
                let mut held = std::mem::take(&mut self.held_cohorts);
                held.retain(|&(home, cohort)| {
                    if home == node {
                        self.deliver_cohort(now, node, cohort);
                        false
                    } else {
                        true
                    }
                });
                self.held_cohorts = held;
            }
            FaultAction::StallCn { dur } => {
                self.tracer.emit(|| Rec {
                    at: now,
                    kind: EventKind::FaultInjected {
                        node: None,
                        what: "cn-stall",
                    },
                });
                self.cn.stall_until(now + dur);
            }
        }
    }

    // ----- retries -----------------------------------------------------

    /// Mark pending requests eligible: those (blocked or delayed) whose
    /// file's contention state just changed. Delayed requests on
    /// unrelated files are re-submitted by the retry tick instead —
    /// waking every delayed request on every commit would melt the CN
    /// under C2PL's hundreds of live transactions.
    fn wake_waiters(&mut self, touched: &[FileId]) {
        for p in &mut self.pending {
            if touched.contains(&p.file) {
                p.eligible = true;
            }
        }
        if !self.pending.is_empty() {
            self.arm_retry_tick();
        }
    }

    fn sweep_retries(&mut self) {
        let mut eligible = std::mem::take(&mut self.eligible_buf);
        eligible.clear();
        eligible.extend(self.pending.iter().filter(|p| p.eligible).map(|p| p.seq));
        for &seq in &eligible {
            // A retry earlier in this sweep may have removed (or
            // restarted) this request; look it up fresh each time.
            let (id, step) = match self.pending_pos(seq) {
                Some(i) => {
                    let p = &mut self.pending[i];
                    p.eligible = false;
                    (p.id, p.step)
                }
                None => continue,
            };
            self.submit_request(id, step, Some(seq));
        }
        self.eligible_buf = eligible;
    }

    fn arm_retry_tick(&mut self) {
        if !self.retry_tick_armed && !self.pending.is_empty() {
            self.retry_tick_armed = true;
            self.events
                .schedule_after(self.cfg.retry_delay, Event::RetryTick);
        }
    }

    fn on_retry_tick(&mut self) {
        self.retry_tick_armed = false;
        for p in &mut self.pending {
            p.eligible = true;
        }
        self.sweep_retries();
        self.try_admissions();
        self.arm_retry_tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadKind;
    use bds_des::time::Duration;
    use bds_sched::SchedulerKind;

    fn cfg(kind: SchedulerKind) -> SimConfig {
        let mut c = SimConfig::new(kind, WorkloadKind::Exp1 { num_files: 16 });
        c.horizon = Duration::from_secs(200_000 / 1000); // 200 s
        c.lambda_tps = 0.5;
        c
    }

    #[test]
    fn nodc_light_load_rt_matches_service_time() {
        // At a very light load with DD = 1 the response time is just the
        // sum of per-step scans (7.2 s) plus small CN costs.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 0.02;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        assert!(r.completed >= 20, "completed {}", r.completed);
        let rt = r.mean_rt_secs();
        assert!(
            (rt - 7.2).abs() < 0.3,
            "light-load RT should be ≈ 7.2 s, got {rt}"
        );
    }

    #[test]
    fn nodc_dd8_light_load_speedup() {
        // With DD = 8 every scan runs 8-way parallel: RT ≈ 7.2/8 ≈ 0.9 s.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 0.02;
        c.dd = 8;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        let rt = r.mean_rt_secs();
        assert!(rt < 1.2, "DD=8 light-load RT should be ≈ 0.9 s, got {rt}");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let c = cfg(SchedulerKind::Low(2)).with_lambda(0.6);
        let a = Simulator::run(&c);
        let b = Simulator::run(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c = cfg(SchedulerKind::C2pl).with_lambda(0.6);
        let a = Simulator::run(&c);
        let b = Simulator::run(&c.clone().with_seed(123));
        assert_ne!(a.completed, b.completed);
    }

    #[test]
    fn all_schedulers_complete_work() {
        for kind in SchedulerKind::PAPER_SET {
            let c = cfg(kind).with_lambda(0.4);
            let r = Simulator::run(&c);
            // OPT genuinely thrashes under this contention level (the
            // paper's Fig. 8 shows it saturating first), so only demand
            // meaningful forward progress.
            assert!(
                r.completed > r.arrived / 4,
                "{kind}: completed only {} of {}",
                r.completed,
                r.arrived
            );
            assert!(r.mean_rt_secs() > 0.0);
        }
    }

    #[test]
    fn mpl_caps_live_transactions() {
        let c = cfg(SchedulerKind::C2pl).with_lambda(1.2).with_mpl(4);
        let r = Simulator::run(&c);
        assert!(r.mean_live <= 4.01, "mean live {} exceeds mpl", r.mean_live);
    }

    #[test]
    fn overload_grows_queue() {
        // λ beyond capacity (≈ 1.11 TPS for Pattern 1 on 8 nodes): the
        // backlog at the horizon must be substantial under NODC.
        let mut c = cfg(SchedulerKind::Nodc);
        c.lambda_tps = 1.4;
        c.horizon = Duration::from_secs(2000);
        let r = Simulator::run(&c);
        assert!(
            r.arrived > r.completed + 100,
            "arrived {} completed {}",
            r.arrived,
            r.completed
        );
        assert!(r.dpn_utilization > 0.9, "dpn {}", r.dpn_utilization);
    }
}

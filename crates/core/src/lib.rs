//! # batchsched — batch-transaction scheduling on shared-nothing parallel
//! database machines
//!
//! A full reproduction of *"Scheduling Batch Transactions on
//! Shared-Nothing Parallel Database Machines: Effects of Concurrency and
//! Parallelism"* (Ohmori, Kitsuregawa, Tanaka — ICDE 1991).
//!
//! The crate glues the substrates together into a discrete-event
//! simulator and provides drivers that regenerate every table and figure
//! of the paper's evaluation:
//!
//! * [`config::SimConfig`] — one simulation point (scheduler × workload ×
//!   arrival rate × degree of declustering × seed).
//! * [`sim::Simulator`] — the event loop: Poisson arrivals at the control
//!   node, admission, file-level lock scheduling, cohort execution on the
//!   DPNs' round-robin servers, two-phase-commit cost accounting.
//! * [`metrics::SimReport`] — mean response time, throughput,
//!   utilizations, restart counts.
//! * [`driver`] — λ-sweeps, the "throughput at RT = 70 s" bisection, and
//!   response-time speedup computations used throughout §5.
//! * [`experiments`] — one entry point per paper artifact (Fig. 8–13,
//!   Tables 2–5), and [`ablations`] — sweeps of the design knobs plus a
//!   wait-depth-limited extension scheduler.
//! * [`telemetry`] (the `bds-metrics` crate) — sim-time series sampling
//!   ([`sim::Simulator::run_with_metrics`]), the log-bucketed
//!   response-time histogram behind `rt_p50/p90/p99`, Prometheus/CSV/
//!   JSON exporters, and the `benchdiff` bench regression gate.
//!
//! ## Quickstart
//!
//! ```
//! use batchsched::config::{SimConfig, WorkloadKind};
//! use batchsched::sim::Simulator;
//! use bds_sched::SchedulerKind;
//!
//! let mut cfg = SimConfig::new(SchedulerKind::Low(2), WorkloadKind::Exp1 { num_files: 16 });
//! cfg.lambda_tps = 0.6;
//! cfg.dd = 2;
//! cfg.horizon = bds_des::Duration::from_secs(2_000);
//! let report = Simulator::run(&cfg);
//! assert!(report.completed > 0);
//! assert!(report.mean_rt_secs() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod driver;
pub mod experiments;
pub mod parallel;
pub mod report;

// The simulator core (config, event loop, report types) lives in the
// `bds-engine` crate since the step-engine refactor; re-export its
// modules under their historical paths so downstream code is unchanged.
pub use bds_engine::{config, metrics, sim};

pub use config::{SimConfig, WorkloadKind};
pub use metrics::SimReport;
pub use parallel::{resolve_thread_budget, ExecCtx, PointCache};
pub use sim::Simulator;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use bds_des as des;
pub use bds_engine as engine;
pub use bds_fault as fault;
pub use bds_machine as machine;
pub use bds_metrics as telemetry;
pub use bds_obs as obs;
pub use bds_sched as sched;
pub use bds_trace as trace;
pub use bds_workload as workload;
pub use bds_wtpg as wtpg;

//! Parallel experiment executor with simulation-point memoization.
//!
//! Every experiment artifact (Figs. 8–13, Tables 2–5) is a grid of
//! independent simulation cells: one `(scheduler × workload × λ × DD)`
//! point, or one bisection/search that itself runs several points. Each
//! cell derives its RNG streams solely from `SimConfig::seed`, so a
//! cell's [`SimReport`] is a pure function of its config — cells can run
//! on any thread in any order and the assembled tables stay
//! byte-identical to a serial run.
//!
//! Two pieces exploit that:
//!
//! * [`PointCache`] — a concurrent memo table keyed on
//!   [`SimConfig::cache_key`]. Bisections re-probe endpoints, Table 3
//!   and Fig. 10 share an identical grid, and Fig. 13's σ = 0 column
//!   equals Table 2's clean runs; the cache collapses every duplicate to
//!   a single simulator invocation (and counts invocations vs hits).
//! * [`ExecCtx`] — a dependency-free `std::thread::scope` fan-out that
//!   maps a worker function over cells with a fixed job count,
//!   preserving input order in the results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::sim::Simulator;

/// State of one memoized point.
enum Slot {
    /// Some thread is currently simulating this point.
    InFlight,
    /// The point's finished report.
    Ready(Arc<SimReport>),
}

/// Concurrent memo table of simulation points.
///
/// `get_or_run` guarantees each distinct config is simulated at most
/// once per cache lifetime, even when many threads request it
/// concurrently: the first requester marks the key in-flight and runs
/// the simulation outside the lock; later requesters block on a condvar
/// until the report is published.
#[derive(Default)]
pub struct PointCache {
    map: Mutex<HashMap<String, Slot>>,
    ready: Condvar,
    runs: AtomicU64,
    hits: AtomicU64,
}

/// Removes an in-flight marker if the owning thread panics inside
/// `Simulator::run`, so waiters retry instead of hanging.
struct InFlightGuard<'a> {
    cache: &'a PointCache,
    key: &'a str,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = self.cache.map.lock().unwrap();
            map.remove(self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the memoized report for `cfg`, simulating it first if this
    /// is the first request for its [`SimConfig::cache_key`].
    pub fn get_or_run(&self, cfg: &SimConfig) -> Arc<SimReport> {
        self.get_or_run_sharded(cfg, 1)
    }

    /// [`PointCache::get_or_run`], simulating misses with `shards`
    /// worker shards ([`Simulator::run_sharded`]). The cache key is
    /// unchanged: sharding is byte-identical, so a point simulated at
    /// any shard count serves requests at every other.
    pub fn get_or_run_sharded(&self, cfg: &SimConfig, shards: usize) -> Arc<SimReport> {
        let key = cfg.cache_key();
        {
            let mut map = self.map.lock().unwrap();
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(r)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(r);
                    }
                    Some(Slot::InFlight) => {
                        map = self.ready.wait(map).unwrap();
                    }
                    None => {
                        map.insert(key.clone(), Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = InFlightGuard {
            cache: self,
            key: &key,
            armed: true,
        };
        let report = Arc::new(if shards > 1 {
            Simulator::run_sharded(cfg, shards)
        } else {
            Simulator::run(cfg)
        });
        guard.armed = false;
        drop(guard);
        self.runs.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        map.insert(key, Slot::Ready(Arc::clone(&report)));
        self.ready.notify_all();
        drop(map);
        report
    }

    /// Number of actual `Simulator::run` invocations performed.
    pub fn sim_runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct points currently memoized.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execution context for experiment drivers: a job count plus a shared
/// [`PointCache`]. Passing one context across several artifacts lets
/// later artifacts reuse every point earlier ones simulated.
pub struct ExecCtx {
    jobs: usize,
    shards: usize,
    cache: PointCache,
}

impl ExecCtx {
    /// A context fanning out across `jobs` worker threads (clamped to a
    /// minimum of 1), each point running serially.
    pub fn new(jobs: usize) -> Self {
        ExecCtx {
            jobs: jobs.max(1),
            shards: 1,
            cache: PointCache::new(),
        }
    }

    /// A single-threaded context (still memoizing).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Run each simulation point sharded across `shards` worker threads
    /// (clamped to a minimum of 1). Reports are byte-identical at every
    /// shard count, so this composes freely with the point cache. The
    /// caller is responsible for the combined thread budget — see
    /// [`resolve_thread_budget`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Per-point shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shared point cache.
    pub fn cache(&self) -> &PointCache {
        &self.cache
    }

    /// Run one point through the memo table.
    pub fn run_point(&self, cfg: &SimConfig) -> Arc<SimReport> {
        self.cache.get_or_run_sharded(cfg, self.shards)
    }

    /// Map `work` over `items` on this context's worker pool, returning
    /// results in input order. With one job (or one item) this runs
    /// inline with no thread overhead.
    pub fn map<T, R, F>(&self, items: &[T], work: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        map_jobs(items, self.jobs, work)
    }
}

/// Resolve the `(jobs, shards)` pair against a machine's thread budget
/// so `jobs × shards` never oversubscribes `available` cores.
///
/// Precedence: **shards win**. A point sharded across `S` threads needs
/// all `S` at once, so the requested shard count is kept (clamped to a
/// minimum of 1) and the job fan-out is cut to fit:
/// `jobs = max(1, min(requested_jobs, available / shards))`.
///
/// `None` requests take defaults — `jobs = available`, `shards = 1` —
/// and are then subject to the same cap, so `--shards 4` alone on an
/// 8-core box resolves to `(2, 4)`, not `(8, 4)`.
pub fn resolve_thread_budget(
    jobs: Option<usize>,
    shards: Option<usize>,
    available: usize,
) -> (usize, usize) {
    let available = available.max(1);
    let shards = shards.unwrap_or(1).max(1);
    let jobs = jobs.unwrap_or(available).max(1);
    (jobs.min((available / shards).max(1)), shards)
}

/// Order-preserving parallel map over a slice with a bounded worker
/// count. Workers pull the next index from a shared atomic counter, so
/// uneven cell costs (a saturated bisection vs a light λ point) balance
/// dynamically instead of by static striping.
pub fn map_jobs<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = work(i, item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadKind;
    use bds_des::time::Duration;
    use bds_sched::SchedulerKind;

    fn tiny() -> SimConfig {
        let mut c = SimConfig::new(SchedulerKind::Nodc, WorkloadKind::Exp1 { num_files: 16 });
        c.horizon = Duration::from_secs(60);
        c
    }

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..37).collect();
        let out = map_jobs(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_one_job_is_inline() {
        let items = [1u32, 2, 3];
        let out = map_jobs(&items, 1, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_with_empty_input() {
        let items: [u8; 0] = [];
        let out = map_jobs(&items, 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn cache_runs_each_point_once() {
        let ctx = ExecCtx::new(2);
        let a = ctx.run_point(&tiny());
        let b = ctx.run_point(&tiny());
        assert_eq!(*a, *b);
        assert_eq!(ctx.cache().sim_runs(), 1);
        assert_eq!(ctx.cache().hits(), 1);
        let c = ctx.run_point(&tiny().with_lambda(0.5));
        assert_ne!(a.lambda_tps, c.lambda_tps);
        assert_eq!(ctx.cache().sim_runs(), 2);
        assert_eq!(ctx.cache().len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_simulation() {
        let ctx = ExecCtx::new(8);
        let cfgs: Vec<SimConfig> = (0..16).map(|_| tiny()).collect();
        let reports = ctx.map(&cfgs, |_, cfg| ctx.run_point(cfg));
        assert_eq!(ctx.cache().sim_runs(), 1, "identical configs must coalesce");
        for r in &reports[1..] {
            assert_eq!(**r, *reports[0]);
        }
    }

    #[test]
    fn sharded_context_matches_serial_context() {
        let serial = ExecCtx::serial();
        let sharded = ExecCtx::new(1).with_shards(4);
        let cfg = tiny().with_lambda(0.7);
        assert_eq!(*serial.run_point(&cfg), *sharded.run_point(&cfg));
        assert_eq!(sharded.shards(), 4);
    }

    #[test]
    fn thread_budget_shards_take_precedence() {
        // Explicit pair on an 8-core box: shards kept, jobs cut.
        assert_eq!(resolve_thread_budget(Some(8), Some(4), 8), (2, 4));
        // Defaults: all cores to jobs, serial points.
        assert_eq!(resolve_thread_budget(None, None, 8), (8, 1));
        // Shards alone caps the default job fan-out.
        assert_eq!(resolve_thread_budget(None, Some(4), 8), (2, 4));
        // Oversized shard request still gets at least one job.
        assert_eq!(resolve_thread_budget(Some(4), Some(16), 8), (1, 16));
        // Jobs alone unchanged (historical --jobs behavior).
        assert_eq!(resolve_thread_budget(Some(3), None, 8), (3, 1));
        // One-core box degrades to fully serial jobs.
        assert_eq!(resolve_thread_budget(None, Some(4), 1), (1, 4));
        // Zero inputs clamp rather than panic.
        assert_eq!(resolve_thread_budget(Some(0), Some(0), 0), (1, 1));
    }

    #[test]
    fn parallel_map_equals_serial_map() {
        let cfgs: Vec<SimConfig> = [0.2, 0.4, 0.6, 0.8]
            .iter()
            .map(|&l| tiny().with_lambda(l))
            .collect();
        let serial = ExecCtx::serial();
        let parallel = ExecCtx::new(4);
        let a = serial.map(&cfgs, |_, cfg| serial.run_point(cfg));
        let b = parallel.map(&cfgs, |_, cfg| parallel.run_point(cfg));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(**x, **y, "parallel and serial reports must match");
        }
    }
}

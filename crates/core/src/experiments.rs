//! One entry point per table/figure of the paper's evaluation (§5).
//!
//! Every function regenerates the corresponding artifact as a
//! [`Table`]; the `repro` binary in `bds-bench` prints them. Paper
//! reference values are recorded in `EXPERIMENTS.md` at the repo root.
//!
//! | Function | Paper artifact | What it reports |
//! |----------|----------------|-----------------|
//! | [`fig8`] | Fig. 8 | RT vs λ (Exp. 1, DD=1, 16 files) |
//! | [`table2`] | Table 2 | TPS at RT=70 s vs NumFiles (DD=1) |
//! | [`fig9`] | Fig. 9 | TPS at RT=70 s vs DD (16 files) |
//! | [`table3`] | Table 3 | RT(s) at λ=1.2 vs DD (incl. C2PL+M) |
//! | [`fig10`] | Fig. 10 | RT speedup at λ=1.2 vs DD |
//! | [`fig11`] | Fig. 11 | RT speedup vs λ (DD=4) |
//! | [`table4`] | Table 4 | Exp. 2: TPS at RT=70 s and RT at λ=1.2 |
//! | [`fig12`] | Fig. 12 | Exp. 2: RT speedup at λ=1.2 vs DD |
//! | [`fig13`] | Fig. 13 | Exp. 3: TPS at RT=70 s vs error σ |
//! | [`table5`] | Table 5 | Exp. 3: degradation TPS(σ=10)/TPS(σ=0) |

use crate::config::{SimConfig, WorkloadKind};
use crate::driver;
use crate::report::{f1, f2, Table};
use crate::sim::Simulator;
use bds_des::time::Duration;
use bds_sched::SchedulerKind;

/// Knobs controlling experiment fidelity (full paper runs vs quick CI
/// runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOptions {
    /// Horizon per simulation point (paper: 2,000,000 ms).
    pub horizon: Duration,
    /// Bisection iterations for the RT = 70 s search.
    pub bisect_iters: u32,
    /// Master seed.
    pub seed: u64,
    /// mpl grid swept for C2PL+M.
    pub mpl_grid: Vec<u32>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            horizon: Duration::from_millis(2_000_000),
            bisect_iters: 6,
            seed: 0x5EED_BA7C,
            mpl_grid: vec![4, 8, 16, 32],
        }
    }
}

impl ExpOptions {
    /// Reduced-fidelity options for tests and smoke runs.
    pub fn quick() -> Self {
        ExpOptions {
            horizon: Duration::from_secs(400),
            bisect_iters: 3,
            seed: 0x5EED_BA7C,
            mpl_grid: vec![8, 32],
        }
    }

    fn base(&self, kind: SchedulerKind, workload: WorkloadKind) -> SimConfig {
        let mut c = SimConfig::new(kind, workload);
        c.horizon = self.horizon;
        c.seed = self.seed;
        c
    }
}

/// The λ range probed by the RT-target bisection (the machine saturates
/// near 1.11 TPS for Pattern 1).
const BISECT_LO: f64 = 0.05;
const BISECT_HI: f64 = 1.4;

/// Target mean response time for the throughput tables (seconds).
const RT_TARGET: f64 = 70.0;

/// Fig. 8 — Exp. 1: mean response time (s) as a function of arrival
/// rate; DD = 1, NumFiles = 16, all six schedulers.
pub fn fig8(opts: &ExpOptions) -> Table {
    let lambdas = [0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4];
    let mut header = vec!["lambda(TPS)".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.8: Exp.1 Arrival Rate vs Response Time (s), DD=1, NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    for &l in &lambdas {
        let mut row = vec![f2(l)];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts
                .base(kind, WorkloadKind::Exp1 { num_files: 16 })
                .with_lambda(l);
            let r = Simulator::run(&cfg);
            row.push(f1(r.mean_rt_secs()));
        }
        t.rows.push(row);
    }
    t
}

/// Table 2 — Exp. 1: throughput (TPS) at RT = 70 s, DD = 1,
/// NumFiles ∈ {8, 16, 32, 64}.
pub fn table2(opts: &ExpOptions) -> Table {
    let mut header = vec!["#files".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Table 2: Exp.1 NumFiles vs Throughput (TPS) at RT=70s, DD=1".into(),
        header,
        rows: Vec::new(),
    };
    for nf in [8u32, 16, 32, 64] {
        let mut row = vec![nf.to_string()];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts.base(kind, WorkloadKind::Exp1 { num_files: nf });
            let r = driver::throughput_at_rt(&cfg, RT_TARGET, BISECT_LO, BISECT_HI, opts.bisect_iters);
            row.push(f2(r.throughput_tps()));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 9 — Exp. 1: throughput (TPS) at RT = 70 s as DD grows,
/// NumFiles = 16.
pub fn fig9(opts: &ExpOptions) -> Table {
    let mut header = vec!["DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.9: Exp.1 Declustering vs Throughput (TPS) at RT=70s, NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    for dd in [1u32, 2, 4, 8] {
        let mut row = vec![dd.to_string()];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts
                .base(kind, WorkloadKind::Exp1 { num_files: 16 })
                .with_dd(dd);
            let r = driver::throughput_at_rt(&cfg, RT_TARGET, BISECT_LO, BISECT_HI, opts.bisect_iters);
            row.push(f2(r.throughput_tps()));
        }
        t.rows.push(row);
    }
    t
}

/// Shared computation for Table 3 / Fig. 10: mean RT at λ = 1.2 TPS for
/// DD ∈ {1, 2, 4, 8}, including C2PL+M (best mpl). Returns
/// `(labels, rt[dd_index][scheduler_index])`.
fn exp1_rt_at_heavy_load(opts: &ExpOptions) -> (Vec<String>, Vec<Vec<f64>>) {
    let schedulers = [
        SchedulerKind::Nodc,
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
    ];
    let mut labels: Vec<String> = schedulers.iter().map(|k| k.label()).collect();
    labels.push("C2PL+M".into());
    let mut grid = Vec::new();
    for dd in [1u32, 2, 4, 8] {
        let mut row = Vec::new();
        for kind in schedulers {
            let cfg = opts
                .base(kind, WorkloadKind::Exp1 { num_files: 16 })
                .with_lambda(1.2)
                .with_dd(dd);
            row.push(Simulator::run(&cfg).mean_rt_secs());
        }
        // C2PL+M: best mpl at this DD.
        let base = opts
            .base(SchedulerKind::C2pl, WorkloadKind::Exp1 { num_files: 16 })
            .with_lambda(1.2)
            .with_dd(dd);
        let (_, r) = driver::best_mpl(&base, &opts.mpl_grid);
        row.push(r.mean_rt_secs());
        grid.push(row);
    }
    (labels, grid)
}

/// Table 3 — Exp. 1: response time (s) at λ = 1.2 TPS vs DD,
/// NumFiles = 16 (C2PL reported through its best-mpl variant C2PL+M,
/// as in the paper).
pub fn table3(opts: &ExpOptions) -> Table {
    let (labels, grid) = exp1_rt_at_heavy_load(opts);
    let mut header = vec!["DD".to_string()];
    header.extend(labels);
    let mut t = Table {
        title: "Table 3: Exp.1 Declustering vs Resp.Time (s), NumFiles=16, λ=1.2 TPS".into(),
        header,
        rows: Vec::new(),
    };
    for (i, dd) in [1u32, 2, 4, 8].iter().enumerate() {
        let mut row = vec![dd.to_string()];
        row.extend(grid[i].iter().map(|&rt| f1(rt)));
        t.rows.push(row);
    }
    t
}

/// Fig. 10 — Exp. 1: response-time speedup at λ = 1.2 TPS,
/// `RT(DD=1)/RT(DD=k)`, NumFiles = 16.
pub fn fig10(opts: &ExpOptions) -> Table {
    let (labels, grid) = exp1_rt_at_heavy_load(opts);
    let mut header = vec!["DD".to_string()];
    header.extend(labels);
    let mut t = Table {
        title: "Fig.10: Exp.1 Declustering vs Resp.Time Speedup, NumFiles=16, λ=1.2 TPS"
            .into(),
        header,
        rows: Vec::new(),
    };
    for (i, dd) in [1u32, 2, 4, 8].iter().enumerate() {
        let mut row = vec![dd.to_string()];
        for (j, &rt) in grid[i].iter().enumerate() {
            let speedup = if rt > 0.0 { grid[0][j] / rt } else { f64::NAN };
            row.push(f2(speedup));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 11 — Exp. 1: response-time speedup (`RT at DD=1 / RT at DD=4`)
/// as a function of arrival rate; NumFiles = 16.
pub fn fig11(opts: &ExpOptions) -> Table {
    let lambdas = [0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let mut header = vec!["lambda(TPS)".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.11: Exp.1 Arrival Rate vs Resp.Time Speedup (DD=4), NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    for &l in &lambdas {
        let mut row = vec![f2(l)];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts
                .base(kind, WorkloadKind::Exp1 { num_files: 16 })
                .with_lambda(l);
            row.push(f2(driver::rt_speedup(&cfg, 4)));
        }
        t.rows.push(row);
    }
    t
}

/// Table 4 — Exp. 2 (hot-set update): throughput (TPS) at RT = 70 s and
/// response time (s) at λ = 1.2 TPS, for DD ∈ {1, 2, 4}.
pub fn table4(opts: &ExpOptions) -> Table {
    let mut header = vec!["metric".to_string(), "DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Table 4: Exp.2 Throughput (TPS at RT=70s) and Resp.Time (s at λ=1.2)".into(),
        header,
        rows: Vec::new(),
    };
    for dd in [1u32, 2, 4] {
        let mut row = vec!["Thruput".to_string(), dd.to_string()];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts.base(kind, WorkloadKind::Exp2).with_dd(dd);
            let r = driver::throughput_at_rt(&cfg, RT_TARGET, BISECT_LO, BISECT_HI, opts.bisect_iters);
            row.push(f2(r.throughput_tps()));
        }
        t.rows.push(row);
    }
    for dd in [1u32, 2, 4] {
        let mut row = vec!["RespTime".to_string(), dd.to_string()];
        for kind in SchedulerKind::PAPER_SET {
            let cfg = opts
                .base(kind, WorkloadKind::Exp2)
                .with_lambda(1.2)
                .with_dd(dd);
            row.push(f1(Simulator::run(&cfg).mean_rt_secs()));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 12 — Exp. 2: response-time speedup at λ = 1.2 TPS vs DD.
pub fn fig12(opts: &ExpOptions) -> Table {
    let mut header = vec!["DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.12: Exp.2 Declustering vs Resp.Time Speedup, λ=1.2 TPS".into(),
        header,
        rows: Vec::new(),
    };
    // RT at DD=1 per scheduler (speedup baseline).
    let base_rt: Vec<f64> = SchedulerKind::PAPER_SET
        .iter()
        .map(|&kind| {
            let cfg = opts.base(kind, WorkloadKind::Exp2).with_lambda(1.2);
            Simulator::run(&cfg).mean_rt_secs()
        })
        .collect();
    for dd in [1u32, 2, 4, 8] {
        let mut row = vec![dd.to_string()];
        for (j, &kind) in SchedulerKind::PAPER_SET.iter().enumerate() {
            let cfg = opts
                .base(kind, WorkloadKind::Exp2)
                .with_lambda(1.2)
                .with_dd(dd);
            let rt = Simulator::run(&cfg).mean_rt_secs();
            row.push(f2(if rt > 0.0 { base_rt[j] / rt } else { f64::NAN }));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 13 — Exp. 3 (declaration-error sensitivity): throughput (TPS)
/// at RT = 70 s as a function of the error σ, for GOW and LOW at
/// DD ∈ {1, 2, 4} (C2PL shown as the lower-bound reference).
pub fn fig13(opts: &ExpOptions) -> Table {
    let sigmas = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0];
    let mut t = Table {
        title: "Fig.13: Exp.3 Error Ratio σ vs Throughput (TPS at RT=70s), NumFiles=16"
            .into(),
        header: vec![
            "sigma".into(),
            "GOW DD=1".into(),
            "GOW DD=2".into(),
            "GOW DD=4".into(),
            "LOW DD=1".into(),
            "LOW DD=2".into(),
            "LOW DD=4".into(),
            "C2PL DD=1".into(),
            "C2PL DD=4".into(),
        ],
        rows: Vec::new(),
    };
    let tput = |kind: SchedulerKind, dd: u32, sigma: f64| -> f64 {
        let workload = if sigma == 0.0 {
            WorkloadKind::Exp1 { num_files: 16 }
        } else {
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma,
            }
        };
        let cfg = opts.base(kind, workload).with_dd(dd);
        driver::throughput_at_rt(&cfg, RT_TARGET, BISECT_LO, BISECT_HI, opts.bisect_iters)
            .throughput_tps()
    };
    for &sigma in &sigmas {
        let mut row = vec![f2(sigma)];
        for dd in [1u32, 2, 4] {
            row.push(f2(tput(SchedulerKind::Gow, dd, sigma)));
        }
        for dd in [1u32, 2, 4] {
            row.push(f2(tput(SchedulerKind::Low(2), dd, sigma)));
        }
        // C2PL ignores declarations entirely: σ-independent reference.
        row.push(f2(tput(SchedulerKind::C2pl, 1, 0.0)));
        row.push(f2(tput(SchedulerKind::C2pl, 4, 0.0)));
        t.rows.push(row);
    }
    t
}

/// Table 5 — Exp. 3: degradation ratio `TPS(σ=10) / TPS(σ=0)` for GOW
/// and LOW at DD ∈ {1, 2, 4}.
pub fn table5(opts: &ExpOptions) -> Table {
    let mut t = Table {
        title: "Table 5: Exp.3 Sensitivity — Degradation Ratio TPS(σ=10)/TPS(σ=0)".into(),
        header: vec!["scheduler".into(), "DD=1".into(), "DD=2".into(), "DD=4".into()],
        rows: Vec::new(),
    };
    for kind in [SchedulerKind::Gow, SchedulerKind::Low(2)] {
        let mut row = vec![kind.label()];
        for dd in [1u32, 2, 4] {
            let clean = driver::throughput_at_rt(
                &opts
                    .base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_dd(dd),
                RT_TARGET,
                BISECT_LO,
                BISECT_HI,
                opts.bisect_iters,
            )
            .throughput_tps();
            let noisy = driver::throughput_at_rt(
                &opts
                    .base(
                        kind,
                        WorkloadKind::Exp3 {
                            num_files: 16,
                            sigma: 10.0,
                        },
                    )
                    .with_dd(dd),
                RT_TARGET,
                BISECT_LO,
                BISECT_HI,
                opts.bisect_iters,
            )
            .throughput_tps();
            let ratio = if clean > 0.0 { noisy / clean } else { f64::NAN };
            row.push(format!("{:.0}%", ratio * 100.0));
        }
        t.rows.push(row);
    }
    t
}

/// A rendered artifact with its identifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Paper artifact id ("fig8", "table2", …).
    pub id: &'static str,
    /// The regenerated table.
    pub table: Table,
}

/// All artifact ids, in paper order.
pub const ARTIFACT_IDS: [&str; 10] = [
    "fig8", "table2", "fig9", "table3", "fig10", "fig11", "table4", "fig12", "fig13",
    "table5",
];

/// Regenerate one artifact by id.
///
/// # Panics
/// Panics on an unknown id.
pub fn run_artifact(id: &str, opts: &ExpOptions) -> Artifact {
    let table = match id {
        "fig8" => fig8(opts),
        "table2" => table2(opts),
        "fig9" => fig9(opts),
        "table3" => table3(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "table4" => table4(opts),
        "fig12" => fig12(opts),
        "fig13" => fig13(opts),
        "table5" => table5(opts),
        other => panic!("unknown artifact id '{other}' (valid: {ARTIFACT_IDS:?})"),
    };
    Artifact {
        id: ARTIFACT_IDS
            .iter()
            .find(|&&a| a == id)
            .expect("validated above"),
        table,
    }
}

/// Regenerate every artifact.
pub fn run_all(opts: &ExpOptions) -> Vec<Artifact> {
    ARTIFACT_IDS
        .iter()
        .map(|id| run_artifact(id, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-horizon smoke test of one artifact end to end.
    #[test]
    fn fig8_smoke() {
        let mut opts = ExpOptions::quick();
        opts.horizon = Duration::from_secs(120);
        let t = fig8(&opts);
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.header.len(), 7);
    }

    #[test]
    #[should_panic(expected = "unknown artifact")]
    fn unknown_artifact_panics() {
        run_artifact("fig99", &ExpOptions::quick());
    }
}

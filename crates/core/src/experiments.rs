//! One entry point per table/figure of the paper's evaluation (§5).
//!
//! Every function regenerates the corresponding artifact as a
//! [`Table`]; the `repro` binary in `bds-bench` prints them. Paper
//! reference values are recorded in `EXPERIMENTS.md` at the repo root.
//!
//! | Function | Paper artifact | What it reports |
//! |----------|----------------|-----------------|
//! | [`fig8`] | Fig. 8 | RT vs λ (Exp. 1, DD=1, 16 files) |
//! | [`table2`] | Table 2 | TPS at RT=70 s vs NumFiles (DD=1) |
//! | [`fig9`] | Fig. 9 | TPS at RT=70 s vs DD (16 files) |
//! | [`table3`] | Table 3 | RT(s) at λ=1.2 vs DD (incl. C2PL+M) |
//! | [`fig10`] | Fig. 10 | RT speedup at λ=1.2 vs DD |
//! | [`fig11`] | Fig. 11 | RT speedup vs λ (DD=4) |
//! | [`table4`] | Table 4 | Exp. 2: TPS at RT=70 s and RT at λ=1.2 |
//! | [`fig12`] | Fig. 12 | Exp. 2: RT speedup at λ=1.2 vs DD |
//! | [`fig13`] | Fig. 13 | Exp. 3: TPS at RT=70 s vs error σ |
//! | [`table5`] | Table 5 | Exp. 3: degradation TPS(σ=10)/TPS(σ=0) |
//!
//! Each artifact is a grid of *independent* simulation cells, so every
//! function fans its cells across the [`ExecCtx`]'s worker threads and
//! assembles rows from the order-preserved results. Determinism: each
//! cell's RNG streams derive solely from `SimConfig::seed`, so the
//! rendered tables are byte-identical at any job count.

use crate::config::{SimConfig, WorkloadKind};
use crate::driver;
use crate::parallel::ExecCtx;
use crate::report::{f1, f2, Table};
use bds_des::time::Duration;
use bds_sched::SchedulerKind;

/// Knobs controlling experiment fidelity (full paper runs vs quick CI
/// runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOptions {
    /// Horizon per simulation point (paper: 2,000,000 ms).
    pub horizon: Duration,
    /// Bisection iterations for the RT = 70 s search.
    pub bisect_iters: u32,
    /// Master seed.
    pub seed: u64,
    /// mpl grid swept for C2PL+M.
    pub mpl_grid: Vec<u32>,
    /// Worker threads used to fan out independent simulation cells
    /// (results are byte-identical at any value; 1 = serial).
    pub jobs: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            horizon: Duration::from_millis(2_000_000),
            bisect_iters: 6,
            seed: 0x5EED_BA7C,
            mpl_grid: vec![4, 8, 16, 32],
            jobs: default_jobs(),
        }
    }
}

/// Number of worker threads to use when the caller doesn't specify:
/// the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

impl ExpOptions {
    /// Reduced-fidelity options for tests and smoke runs.
    pub fn quick() -> Self {
        ExpOptions {
            horizon: Duration::from_secs(400),
            bisect_iters: 3,
            seed: 0x5EED_BA7C,
            mpl_grid: vec![8, 32],
            jobs: default_jobs(),
        }
    }

    /// Builder-style worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    fn base(&self, kind: SchedulerKind, workload: WorkloadKind) -> SimConfig {
        let mut c = SimConfig::new(kind, workload);
        c.horizon = self.horizon;
        c.seed = self.seed;
        c
    }
}

/// The scan-heavy 100-DPN point used by the sharded `--scale` leg and
/// `examples/shard_speedup.rs`: one long exclusive scan of 400 objects
/// declustered over two nodes, λ at ≈ 72 % of the machine's capacity
/// (0.25 TPS). Long scans make slice rotations — the work the sharded
/// engine parallelizes — dominate the event mix (≈ 800 rotations per
/// transaction against a handful of CN events), which is exactly the
/// regime the ROADMAP's 100–1000-DPN runs live in. `horizon` sets the
/// run length: ~0.18 transactions arrive per second of simulated time.
pub fn scan_heavy_point(horizon: Duration) -> SimConfig {
    use bds_workload::pattern::{Pattern, StepTemplate};
    use bds_workload::spec::{Access, LockMode};
    let pattern = Pattern::new(
        1,
        vec![StepTemplate {
            slot: 0,
            mode: LockMode::Exclusive,
            access: Access::Read,
            cost: 400.0,
        }],
    );
    let mut c = SimConfig::new(
        SchedulerKind::C2pl,
        WorkloadKind::Custom {
            pattern,
            num_files: 2_000,
        },
    );
    c.costs.num_nodes = 100;
    c.dd = 2;
    c.lambda_tps = 0.18;
    c.horizon = horizon;
    c
}

/// The λ range probed by the RT-target bisection (the machine saturates
/// near 1.11 TPS for Pattern 1).
const BISECT_LO: f64 = 0.05;
const BISECT_HI: f64 = 1.4;

/// Target mean response time for the throughput tables (seconds).
const RT_TARGET: f64 = 70.0;

/// Throughput at the RT target for one cell (shared bisection wrapper).
fn tput_cell(ctx: &ExecCtx, opts: &ExpOptions, cfg: &SimConfig) -> f64 {
    driver::throughput_at_rt(ctx, cfg, RT_TARGET, BISECT_LO, BISECT_HI, opts.bisect_iters)
        .throughput_tps()
}

/// Fig. 8 — Exp. 1: mean response time (s) as a function of arrival
/// rate; DD = 1, NumFiles = 16, all six schedulers.
pub fn fig8(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let lambdas = [0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4];
    let mut header = vec!["lambda(TPS)".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.8: Exp.1 Arrival Rate vs Response Time (s), DD=1, NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = lambdas
        .iter()
        .flat_map(|&l| {
            SchedulerKind::PAPER_SET.iter().map(move |&kind| {
                opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_lambda(l)
            })
        })
        .collect();
    let reports = ctx.map(&cells, |_, cfg| ctx.run_point(cfg));
    for (i, &l) in lambdas.iter().enumerate() {
        let mut row = vec![f2(l)];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f1(
                reports[i * SchedulerKind::PAPER_SET.len() + j].mean_rt_secs()
            ));
        }
        t.rows.push(row);
    }
    t
}

/// Table 2 — Exp. 1: throughput (TPS) at RT = 70 s, DD = 1,
/// NumFiles ∈ {8, 16, 32, 64}.
pub fn table2(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let files = [8u32, 16, 32, 64];
    let mut header = vec!["#files".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Table 2: Exp.1 NumFiles vs Throughput (TPS) at RT=70s, DD=1".into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = files
        .iter()
        .flat_map(|&nf| {
            SchedulerKind::PAPER_SET
                .iter()
                .map(move |&kind| opts.base(kind, WorkloadKind::Exp1 { num_files: nf }))
        })
        .collect();
    let tputs = ctx.map(&cells, |_, cfg| tput_cell(ctx, opts, cfg));
    for (i, nf) in files.iter().enumerate() {
        let mut row = vec![nf.to_string()];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f2(tputs[i * SchedulerKind::PAPER_SET.len() + j]));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 9 — Exp. 1: throughput (TPS) at RT = 70 s as DD grows,
/// NumFiles = 16.
pub fn fig9(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let dds = [1u32, 2, 4, 8];
    let mut header = vec!["DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.9: Exp.1 Declustering vs Throughput (TPS) at RT=70s, NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = dds
        .iter()
        .flat_map(|&dd| {
            SchedulerKind::PAPER_SET.iter().map(move |&kind| {
                opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_dd(dd)
            })
        })
        .collect();
    let tputs = ctx.map(&cells, |_, cfg| tput_cell(ctx, opts, cfg));
    for (i, dd) in dds.iter().enumerate() {
        let mut row = vec![dd.to_string()];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f2(tputs[i * SchedulerKind::PAPER_SET.len() + j]));
        }
        t.rows.push(row);
    }
    t
}

/// Shared computation for Table 3 / Fig. 10: mean RT at λ = 1.2 TPS for
/// DD ∈ {1, 2, 4, 8}, including C2PL+M (best mpl). Returns
/// `(labels, rt[dd_index][scheduler_index])`.
///
/// The whole point grid — six schedulers plus every C2PL+M mpl
/// candidate, at each DD — is prewarmed in one parallel fan-out; the
/// `best_mpl` searches then assemble from cache hits.
fn exp1_rt_at_heavy_load(opts: &ExpOptions, ctx: &ExecCtx) -> (Vec<String>, Vec<Vec<f64>>) {
    let schedulers = [
        SchedulerKind::Nodc,
        SchedulerKind::Asl,
        SchedulerKind::Gow,
        SchedulerKind::Low(2),
        SchedulerKind::C2pl,
        SchedulerKind::Opt,
    ];
    let dds = [1u32, 2, 4, 8];
    let mut labels: Vec<String> = schedulers.iter().map(|k| k.label()).collect();
    labels.push("C2PL+M".into());
    let heavy = |kind: SchedulerKind, dd: u32| {
        opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
            .with_lambda(1.2)
            .with_dd(dd)
    };
    let mut cells: Vec<SimConfig> = Vec::new();
    for &dd in &dds {
        for &kind in &schedulers {
            cells.push(heavy(kind, dd));
        }
        for &m in &opts.mpl_grid {
            cells.push(heavy(SchedulerKind::C2pl, dd).with_mpl(m));
        }
    }
    ctx.map(&cells, |_, cfg| ctx.run_point(cfg));
    let mut grid = Vec::new();
    for &dd in &dds {
        let mut row: Vec<f64> = schedulers
            .iter()
            .map(|&kind| ctx.run_point(&heavy(kind, dd)).mean_rt_secs())
            .collect();
        // C2PL+M: best mpl at this DD (cache hits). A fully saturated
        // grid has no meaningful RT — report ∞, not the empty report's 0.
        let choice = driver::best_mpl(ctx, &heavy(SchedulerKind::C2pl, dd), &opts.mpl_grid);
        row.push(if choice.all_saturated {
            f64::INFINITY
        } else {
            choice.report.mean_rt_secs()
        });
        grid.push(row);
    }
    (labels, grid)
}

/// Table 3 — Exp. 1: response time (s) at λ = 1.2 TPS vs DD,
/// NumFiles = 16 (C2PL reported through its best-mpl variant C2PL+M,
/// as in the paper).
pub fn table3(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let (labels, grid) = exp1_rt_at_heavy_load(opts, ctx);
    let mut header = vec!["DD".to_string()];
    header.extend(labels);
    let mut t = Table {
        title: "Table 3: Exp.1 Declustering vs Resp.Time (s), NumFiles=16, λ=1.2 TPS".into(),
        header,
        rows: Vec::new(),
    };
    for (i, dd) in [1u32, 2, 4, 8].iter().enumerate() {
        let mut row = vec![dd.to_string()];
        row.extend(grid[i].iter().map(|&rt| f1(rt)));
        t.rows.push(row);
    }
    t
}

/// Fig. 10 — Exp. 1: response-time speedup at λ = 1.2 TPS,
/// `RT(DD=1)/RT(DD=k)`, NumFiles = 16.
pub fn fig10(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let (labels, grid) = exp1_rt_at_heavy_load(opts, ctx);
    let mut header = vec!["DD".to_string()];
    header.extend(labels);
    let mut t = Table {
        title: "Fig.10: Exp.1 Declustering vs Resp.Time Speedup, NumFiles=16, λ=1.2 TPS".into(),
        header,
        rows: Vec::new(),
    };
    for (i, dd) in [1u32, 2, 4, 8].iter().enumerate() {
        let mut row = vec![dd.to_string()];
        for (j, &rt) in grid[i].iter().enumerate() {
            let speedup = if rt > 0.0 { grid[0][j] / rt } else { f64::NAN };
            row.push(f2(speedup));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 11 — Exp. 1: response-time speedup (`RT at DD=1 / RT at DD=4`)
/// as a function of arrival rate; NumFiles = 16.
pub fn fig11(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let lambdas = [0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let mut header = vec!["lambda(TPS)".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.11: Exp.1 Arrival Rate vs Resp.Time Speedup (DD=4), NumFiles=16".into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = lambdas
        .iter()
        .flat_map(|&l| {
            SchedulerKind::PAPER_SET.iter().map(move |&kind| {
                opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_lambda(l)
            })
        })
        .collect();
    let speedups = ctx.map(&cells, |_, cfg| driver::rt_speedup(ctx, cfg, 4));
    for (i, &l) in lambdas.iter().enumerate() {
        let mut row = vec![f2(l)];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f2(speedups[i * SchedulerKind::PAPER_SET.len() + j]));
        }
        t.rows.push(row);
    }
    t
}

/// Table 4 — Exp. 2 (hot-set update): throughput (TPS) at RT = 70 s and
/// response time (s) at λ = 1.2 TPS, for DD ∈ {1, 2, 4}.
pub fn table4(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let dds = [1u32, 2, 4];
    let mut header = vec!["metric".to_string(), "DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Table 4: Exp.2 Throughput (TPS at RT=70s) and Resp.Time (s at λ=1.2)".into(),
        header,
        rows: Vec::new(),
    };
    let tput_cells: Vec<SimConfig> = dds
        .iter()
        .flat_map(|&dd| {
            SchedulerKind::PAPER_SET
                .iter()
                .map(move |&kind| opts.base(kind, WorkloadKind::Exp2).with_dd(dd))
        })
        .collect();
    let rt_cells: Vec<SimConfig> = tput_cells
        .iter()
        .map(|cfg| cfg.clone().with_lambda(1.2))
        .collect();
    let tputs = ctx.map(&tput_cells, |_, cfg| tput_cell(ctx, opts, cfg));
    let rts = ctx.map(&rt_cells, |_, cfg| ctx.run_point(cfg).mean_rt_secs());
    for (i, dd) in dds.iter().enumerate() {
        let mut row = vec!["Thruput".to_string(), dd.to_string()];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f2(tputs[i * SchedulerKind::PAPER_SET.len() + j]));
        }
        t.rows.push(row);
    }
    for (i, dd) in dds.iter().enumerate() {
        let mut row = vec!["RespTime".to_string(), dd.to_string()];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            row.push(f1(rts[i * SchedulerKind::PAPER_SET.len() + j]));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 12 — Exp. 2: response-time speedup at λ = 1.2 TPS vs DD.
pub fn fig12(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let dds = [1u32, 2, 4, 8];
    let mut header = vec!["DD".to_string()];
    header.extend(SchedulerKind::PAPER_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.12: Exp.2 Declustering vs Resp.Time Speedup, λ=1.2 TPS".into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = dds
        .iter()
        .flat_map(|&dd| {
            SchedulerKind::PAPER_SET.iter().map(move |&kind| {
                opts.base(kind, WorkloadKind::Exp2)
                    .with_lambda(1.2)
                    .with_dd(dd)
            })
        })
        .collect();
    let rts = ctx.map(&cells, |_, cfg| ctx.run_point(cfg).mean_rt_secs());
    // RT at DD=1 per scheduler (speedup baseline) is the first row of
    // the same grid.
    for (i, dd) in dds.iter().enumerate() {
        let mut row = vec![dd.to_string()];
        for j in 0..SchedulerKind::PAPER_SET.len() {
            let rt = rts[i * SchedulerKind::PAPER_SET.len() + j];
            let base = rts[j];
            row.push(f2(if rt > 0.0 { base / rt } else { f64::NAN }));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 13 — Exp. 3 (declaration-error sensitivity): throughput (TPS)
/// at RT = 70 s as a function of the error σ, for GOW and LOW at
/// DD ∈ {1, 2, 4} (C2PL shown as the lower-bound reference).
pub fn fig13(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let sigmas = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0];
    let dds = [1u32, 2, 4];
    let mut t = Table {
        title: "Fig.13: Exp.3 Error Ratio σ vs Throughput (TPS at RT=70s), NumFiles=16".into(),
        header: vec![
            "sigma".into(),
            "GOW DD=1".into(),
            "GOW DD=2".into(),
            "GOW DD=4".into(),
            "LOW DD=1".into(),
            "LOW DD=2".into(),
            "LOW DD=4".into(),
            "C2PL DD=1".into(),
            "C2PL DD=4".into(),
        ],
        rows: Vec::new(),
    };
    let noisy = |kind: SchedulerKind, dd: u32, sigma: f64| -> SimConfig {
        let workload = if sigma == 0.0 {
            WorkloadKind::Exp1 { num_files: 16 }
        } else {
            WorkloadKind::Exp3 {
                num_files: 16,
                sigma,
            }
        };
        opts.base(kind, workload).with_dd(dd)
    };
    // One bisection cell per table cell; the σ-independent C2PL
    // references appear once per row but collapse in the point cache.
    let mut cells: Vec<SimConfig> = Vec::new();
    for &sigma in &sigmas {
        for &dd in &dds {
            cells.push(noisy(SchedulerKind::Gow, dd, sigma));
        }
        for &dd in &dds {
            cells.push(noisy(SchedulerKind::Low(2), dd, sigma));
        }
        cells.push(noisy(SchedulerKind::C2pl, 1, 0.0));
        cells.push(noisy(SchedulerKind::C2pl, 4, 0.0));
    }
    let tputs = ctx.map(&cells, |_, cfg| tput_cell(ctx, opts, cfg));
    let per_row = 2 * dds.len() + 2;
    for (i, &sigma) in sigmas.iter().enumerate() {
        let mut row = vec![f2(sigma)];
        row.extend(tputs[i * per_row..(i + 1) * per_row].iter().map(|&x| f2(x)));
        t.rows.push(row);
    }
    t
}

/// Table 5 — Exp. 3: degradation ratio `TPS(σ=10) / TPS(σ=0)` for GOW
/// and LOW at DD ∈ {1, 2, 4}.
pub fn table5(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let kinds = [SchedulerKind::Gow, SchedulerKind::Low(2)];
    let dds = [1u32, 2, 4];
    let mut t = Table {
        title: "Table 5: Exp.3 Sensitivity — Degradation Ratio TPS(σ=10)/TPS(σ=0)".into(),
        header: vec![
            "scheduler".into(),
            "DD=1".into(),
            "DD=2".into(),
            "DD=4".into(),
        ],
        rows: Vec::new(),
    };
    // Cells: (kind × dd) × {clean σ=0, noisy σ=10}, flattened.
    let mut cells: Vec<SimConfig> = Vec::new();
    for &kind in &kinds {
        for &dd in &dds {
            cells.push(
                opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_dd(dd),
            );
            cells.push(
                opts.base(
                    kind,
                    WorkloadKind::Exp3 {
                        num_files: 16,
                        sigma: 10.0,
                    },
                )
                .with_dd(dd),
            );
        }
    }
    let tputs = ctx.map(&cells, |_, cfg| tput_cell(ctx, opts, cfg));
    for (ki, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for di in 0..dds.len() {
            let base = (ki * dds.len() + di) * 2;
            let (clean, noisy) = (tputs[base], tputs[base + 1]);
            let ratio = if clean > 0.0 { noisy / clean } else { f64::NAN };
            row.push(format!("{:.0}%", ratio * 100.0));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 8 extended — the Fig. 8 arrival-rate sweep rerun over
/// [`SchedulerKind::EXTENDED_SET`], adding the batch/epoch family
/// (DGCC, BROOK) next to the paper's six. Legacy columns reuse the
/// same point cache as `fig8`, so running both costs only the two
/// new schedulers' cells.
pub fn fig8x(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let lambdas = [0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4];
    let mut header = vec!["lambda(TPS)".to_string()];
    header.extend(SchedulerKind::EXTENDED_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.8x: Exp.1 Arrival Rate vs Response Time (s), DD=1, NumFiles=16, +DGCC/BROOK"
            .into(),
        header,
        rows: Vec::new(),
    };
    let cells: Vec<SimConfig> = lambdas
        .iter()
        .flat_map(|&l| {
            SchedulerKind::EXTENDED_SET.iter().map(move |&kind| {
                opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
                    .with_lambda(l)
            })
        })
        .collect();
    let reports = ctx.map(&cells, |_, cfg| ctx.run_point(cfg));
    for (i, &l) in lambdas.iter().enumerate() {
        let mut row = vec![f2(l)];
        for j in 0..SchedulerKind::EXTENDED_SET.len() {
            row.push(f1(
                reports[i * SchedulerKind::EXTENDED_SET.len() + j].mean_rt_secs()
            ));
        }
        t.rows.push(row);
    }
    t
}

/// Fig. 10 extended — declustering speedup `RT(DD=1)/RT(DD=k)` at
/// λ = 1.2 TPS over [`SchedulerKind::EXTENDED_SET`]. Unlike `fig10`
/// this skips the C2PL+M best-mpl column: the point is the
/// batch/epoch family's parallelism response, not mpl tuning.
pub fn fig10x(opts: &ExpOptions, ctx: &ExecCtx) -> Table {
    let dds = [1u32, 2, 4, 8];
    let mut header = vec!["DD".to_string()];
    header.extend(SchedulerKind::EXTENDED_SET.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Fig.10x: Exp.1 Declustering vs Resp.Time Speedup, λ=1.2 TPS, +DGCC/BROOK".into(),
        header,
        rows: Vec::new(),
    };
    let heavy = |kind: SchedulerKind, dd: u32| {
        opts.base(kind, WorkloadKind::Exp1 { num_files: 16 })
            .with_lambda(1.2)
            .with_dd(dd)
    };
    let mut cells: Vec<SimConfig> = Vec::new();
    for &dd in &dds {
        for &kind in &SchedulerKind::EXTENDED_SET {
            cells.push(heavy(kind, dd));
        }
    }
    let rts = ctx.map(&cells, |_, cfg| ctx.run_point(cfg).mean_rt_secs());
    let w = SchedulerKind::EXTENDED_SET.len();
    for (i, dd) in dds.iter().enumerate() {
        let mut row = vec![dd.to_string()];
        for j in 0..w {
            let rt = rts[i * w + j];
            let speedup = if rt > 0.0 { rts[j] / rt } else { f64::NAN };
            row.push(f2(speedup));
        }
        t.rows.push(row);
    }
    t
}

/// A rendered artifact with its identifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Paper artifact id ("fig8", "table2", …).
    pub id: &'static str,
    /// The regenerated table.
    pub table: Table,
}

/// All artifact ids: the paper's ten in paper order, then the
/// extended-set companions (`fig8x`, `fig10x`) that add the
/// batch/epoch schedulers. The first ten stay index-stable so the
/// golden-hash tables keyed by position keep working unchanged.
pub const ARTIFACT_IDS: [&str; 12] = [
    "fig8", "table2", "fig9", "table3", "fig10", "fig11", "table4", "fig12", "fig13", "table5",
    "fig8x", "fig10x",
];

/// Regenerate one artifact by id with a caller-provided execution
/// context. Passing the same context across artifacts lets later ones
/// reuse every simulation point earlier ones already ran (Table 3 and
/// Fig. 10 share their entire grid, for example).
///
/// # Panics
/// Panics on an unknown id.
pub fn run_artifact_with(id: &str, opts: &ExpOptions, ctx: &ExecCtx) -> Artifact {
    let table = match id {
        "fig8" => fig8(opts, ctx),
        "table2" => table2(opts, ctx),
        "fig9" => fig9(opts, ctx),
        "table3" => table3(opts, ctx),
        "fig10" => fig10(opts, ctx),
        "fig11" => fig11(opts, ctx),
        "table4" => table4(opts, ctx),
        "fig12" => fig12(opts, ctx),
        "fig13" => fig13(opts, ctx),
        "table5" => table5(opts, ctx),
        "fig8x" => fig8x(opts, ctx),
        "fig10x" => fig10x(opts, ctx),
        other => panic!("unknown artifact id '{other}' (valid: {ARTIFACT_IDS:?})"),
    };
    Artifact {
        id: ARTIFACT_IDS
            .iter()
            .find(|&&a| a == id)
            .expect("validated above"),
        table,
    }
}

/// Regenerate one artifact by id on a fresh context with `opts.jobs`
/// workers.
///
/// # Panics
/// Panics on an unknown id.
pub fn run_artifact(id: &str, opts: &ExpOptions) -> Artifact {
    run_artifact_with(id, opts, &ExecCtx::new(opts.jobs))
}

/// Regenerate every artifact, sharing one point cache across all of
/// them.
pub fn run_all(opts: &ExpOptions) -> Vec<Artifact> {
    let ctx = ExecCtx::new(opts.jobs);
    ARTIFACT_IDS
        .iter()
        .map(|id| run_artifact_with(id, opts, &ctx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-horizon smoke test of one artifact end to end.
    #[test]
    fn fig8_smoke() {
        let mut opts = ExpOptions::quick();
        opts.horizon = Duration::from_secs(120);
        let t = fig8(&opts, &ExecCtx::new(opts.jobs));
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.header.len(), 7);
    }

    /// The extended artifacts carry all eight schedulers and share
    /// lambda/DD structure with their paper counterparts.
    #[test]
    fn extended_artifacts_smoke() {
        let mut opts = ExpOptions::quick();
        opts.horizon = Duration::from_secs(120);
        let ctx = ExecCtx::new(opts.jobs);
        let t8 = fig8x(&opts, &ctx);
        assert_eq!(t8.rows.len(), 8);
        assert_eq!(t8.header.len(), 1 + SchedulerKind::EXTENDED_SET.len());
        assert!(t8.header.iter().any(|h| h == "DGCC"));
        assert!(t8.header.iter().any(|h| h == "BROOK"));
        let t10 = fig10x(&opts, &ctx);
        assert_eq!(t10.rows.len(), 4);
        assert_eq!(t10.header.len(), 1 + SchedulerKind::EXTENDED_SET.len());
        // DD=1 row is the speedup baseline: every column is exactly 1.
        for cell in &t10.rows[0][1..] {
            assert_eq!(cell, "1.00");
        }
    }

    #[test]
    #[should_panic(expected = "unknown artifact")]
    fn unknown_artifact_panics() {
        run_artifact("fig99", &ExpOptions::quick());
    }
}

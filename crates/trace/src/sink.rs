//! Trace sinks: where events go.
//!
//! The simulator emits events through a [`Tracer`], an enum over "off"
//! and "recording" so the disabled path is a single branch — the event
//! is never even constructed (emission takes a closure) and there is no
//! `dyn` call per event. The recording arm is a bounded in-memory ring
//! ([`RingRecorder`]): when full, the oldest records are overwritten but
//! the monotone [`Counts`] stay exact, so accounting cross-checks remain
//! valid even for runs longer than the ring.

use crate::event::{EventKind, Rec};

/// A destination for trace records.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, rec: Rec);
}

/// A sink that discards everything; `record` compiles to a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _rec: Rec) {}
}

/// Monotone event counters, exact even when the ring wraps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Transaction arrivals.
    pub arrivals: u64,
    /// Admissions granted.
    pub admissions: u64,
    /// Admissions refused.
    pub admit_refusals: u64,
    /// Lock requests evaluated (including retries).
    pub lock_requests: u64,
    /// Lock requests granted.
    pub lock_grants: u64,
    /// Lock requests blocked on a held lock.
    pub lock_blocks: u64,
    /// Lock requests delayed by scheduler policy.
    pub lock_denies: u64,
    /// Lock requests answered with a restart order.
    pub lock_restarts: u64,
    /// WTPG precedence edges inserted.
    pub wtpg_edges: u64,
    /// Steps dispatched.
    pub step_dispatches: u64,
    /// Steps completed.
    pub steps_done: u64,
    /// Cohorts enqueued on DPNs.
    pub cohort_starts: u64,
    /// Cohorts that finished their scans.
    pub cohort_finishes: u64,
    /// Round-robin CPU slices served by DPNs.
    pub quanta: u64,
    /// CPU bursts served by the control node.
    pub cn_bursts: u64,
    /// Certifications that passed.
    pub certify_ok: u64,
    /// Certifications that failed.
    pub certify_fail: u64,
    /// Commits.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Restart re-entries into the start queue.
    pub restarts: u64,
    /// Fault-plan actions injected (crashes, stalls, link losses).
    pub faults_injected: u64,
    /// Transactions dropped permanently by fault retry exhaustion.
    pub txns_killed: u64,
    /// DPN recoveries.
    pub node_recoveries: u64,
}

impl Counts {
    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.arrivals
            + self.admissions
            + self.admit_refusals
            + self.lock_requests
            + self.lock_grants
            + self.lock_blocks
            + self.lock_denies
            + self.lock_restarts
            + self.wtpg_edges
            + self.step_dispatches
            + self.steps_done
            + self.cohort_starts
            + self.cohort_finishes
            + self.quanta
            + self.cn_bursts
            + self.certify_ok
            + self.certify_fail
            + self.commits
            + self.aborts
            + self.restarts
            + self.faults_injected
            + self.txns_killed
            + self.node_recoveries
    }

    fn bump(&mut self, kind: &EventKind) {
        match kind {
            EventKind::Arrival { .. } => self.arrivals += 1,
            EventKind::Admit { .. } => self.admissions += 1,
            EventKind::AdmitRefuse { .. } => self.admit_refusals += 1,
            EventKind::LockRequest { .. } => self.lock_requests += 1,
            EventKind::LockGrant { .. } => self.lock_grants += 1,
            EventKind::LockBlock { .. } => self.lock_blocks += 1,
            EventKind::LockDeny { .. } => self.lock_denies += 1,
            EventKind::LockRestart { .. } => self.lock_restarts += 1,
            EventKind::WtpgEdge { .. } => self.wtpg_edges += 1,
            EventKind::StepDispatch { .. } => self.step_dispatches += 1,
            EventKind::StepDone { .. } => self.steps_done += 1,
            EventKind::CohortStart { .. } => self.cohort_starts += 1,
            EventKind::CohortFinish { .. } => self.cohort_finishes += 1,
            EventKind::Quantum { .. } => self.quanta += 1,
            EventKind::CnCpu { .. } => self.cn_bursts += 1,
            EventKind::Certify { ok: true, .. } => self.certify_ok += 1,
            EventKind::Certify { ok: false, .. } => self.certify_fail += 1,
            EventKind::Commit { .. } => self.commits += 1,
            EventKind::Abort { .. } => self.aborts += 1,
            EventKind::Restart { .. } => self.restarts += 1,
            EventKind::FaultInjected { .. } => self.faults_injected += 1,
            EventKind::TxnKilled { .. } => self.txns_killed += 1,
            EventKind::NodeRecovered { .. } => self.node_recoveries += 1,
        }
    }
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// records (overwriting the oldest when full) plus exact [`Counts`].
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<Rec>,
    cap: usize,
    /// Next overwrite position once the ring is full.
    head: usize,
    dropped: u64,
    counts: Counts,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingRecorder capacity must be positive");
        RingRecorder {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            dropped: 0,
            counts: Counts::default(),
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact monotone counters over *all* events seen (including
    /// overwritten ones).
    pub fn counts(&self) -> Counts {
        self.counts
    }

    /// Consume the recorder, yielding the retained records in
    /// chronological order plus the exact counters.
    pub fn into_data(mut self) -> TraceData {
        if self.dropped > 0 {
            // Unwrap the ring: oldest retained record sits at `head`.
            self.buf.rotate_left(self.head);
        }
        TraceData {
            records: self.buf,
            counts: self.counts,
            dropped: self.dropped,
        }
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, rec: Rec) {
        self.counts.bump(&rec.kind);
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// A completed trace: retained records (chronological) and exact counts.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Retained records in chronological order.
    pub records: Vec<Rec>,
    /// Exact counters over all events, including any overwritten ones.
    pub counts: Counts,
    /// Number of records lost to ring overwrites.
    pub dropped: u64,
}

/// The simulator-facing tracing handle: enum dispatch over "off" and
/// "recording", so the disabled hot path is one branch and zero
/// construction work.
#[derive(Debug, Default)]
pub enum Tracer {
    /// Tracing disabled; [`Tracer::emit`] never builds the event.
    #[default]
    Off,
    /// Record into a bounded in-memory ring.
    Ring(Box<RingRecorder>),
}

impl Tracer {
    /// Default ring capacity (records), ample for a multi-thousand-second
    /// run of the paper's machine model.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A tracer recording into a fresh ring of `capacity` records.
    pub fn ring(capacity: usize) -> Self {
        Tracer::Ring(Box::new(RingRecorder::new(capacity)))
    }

    /// Is tracing enabled?
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !matches!(self, Tracer::Off)
    }

    /// Emit an event. The closure runs only when tracing is enabled, so
    /// callers pay a single predictable branch when it is off.
    #[inline(always)]
    pub fn emit(&mut self, make: impl FnOnce() -> Rec) {
        if let Tracer::Ring(r) = self {
            r.record(make());
        }
    }

    /// Current exact counters, if recording.
    pub fn counts(&self) -> Option<Counts> {
        match self {
            Tracer::Off => None,
            Tracer::Ring(r) => Some(r.counts()),
        }
    }

    /// Consume the tracer, yielding the recorded trace (if recording).
    pub fn finish(self) -> Option<TraceData> {
        match self {
            Tracer::Off => None,
            Tracer::Ring(r) => Some(r.into_data()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_des::time::SimTime;
    use bds_wtpg::TxnId;

    fn rec(ms: u64, kind: EventKind) -> Rec {
        Rec {
            at: SimTime::from_millis(ms),
            kind,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_exact_counts() {
        let mut r = RingRecorder::new(3);
        for i in 0..5u64 {
            r.record(rec(i, EventKind::Commit { txn: TxnId(i) }));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.counts().commits, 5);
        let data = r.into_data();
        let kept: Vec<u64> = data.records.iter().map(|r| r.at.as_millis()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest dropped, order preserved");
        assert_eq!(data.counts.total(), 5);
    }

    #[test]
    fn tracer_off_never_runs_closure() {
        let mut t = Tracer::Off;
        assert!(!t.enabled());
        t.emit(|| unreachable!("closure must not run when tracing is off"));
        assert!(t.finish().is_none());
    }

    #[test]
    fn tracer_ring_records() {
        let mut t = Tracer::ring(8);
        assert!(t.enabled());
        t.emit(|| rec(1, EventKind::Arrival { txn: TxnId(1) }));
        t.emit(|| {
            rec(
                2,
                EventKind::Certify {
                    txn: TxnId(1),
                    ok: false,
                },
            )
        });
        assert_eq!(t.counts().unwrap().arrivals, 1);
        let data = t.finish().unwrap();
        assert_eq!(data.records.len(), 2);
        assert_eq!(data.counts.certify_fail, 1);
        assert_eq!(data.dropped, 0);
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(rec(1, EventKind::Commit { txn: TxnId(1) }));
    }
}

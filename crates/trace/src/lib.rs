//! # bds-trace — event tracing for the batch-transaction simulator
//!
//! The paper's results are *explained* by where time goes — lock-wait
//! vs. CPU vs. restarted work under each scheduler — but an end-of-run
//! report cannot show that. This crate provides the observability
//! substrate:
//!
//! * [`event`] — a typed event model over the full transaction
//!   lifecycle, including scheduler refusal reasons;
//! * [`sink`] — the [`Tracer`] handle (enum dispatch: the disabled path
//!   is a single branch, no event construction, no virtual call), a
//!   bounded [`RingRecorder`], and a no-op [`NullSink`];
//! * [`analyze`] — fold a trace into per-transaction span summaries,
//!   per-file contention tallies and a wait-for critical-path report;
//! * [`chrome`] — export to Chrome `trace_event` JSON, viewable in
//!   `chrome://tracing` or Perfetto;
//! * [`json`] — the workspace's hand-rolled JSON writers (no external
//!   serialization dependency anywhere in the workspace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod chrome;
pub mod event;
pub mod json;
pub mod sink;

pub use analyze::{Analysis, Breakdown, CriticalPath, FileStats, TxnSpan};
pub use chrome::chrome_trace;
pub use event::{EventKind, Rec};
pub use json::{JsonArr, JsonObj};
pub use sink::{Counts, NullSink, RingRecorder, TraceData, TraceSink, Tracer};

//! Chrome `trace_event` JSON exporter.
//!
//! Renders a recorded trace in the Trace Event Format understood by
//! `chrome://tracing` and Perfetto (<https://ui.perfetto.dev>): one
//! process (`pid`) per machine node — the control node plus one per DPN —
//! and one thread (`tid`) per transaction. CPU bursts, DPN quanta and
//! step executions become complete (`"X"`) events; lifecycle moments
//! (arrival, grants, denials, commit, abort) become instant (`"i"`)
//! events. Timestamps are microseconds, as the format requires.

use crate::event::EventKind;
use crate::json::{JsonArr, JsonObj};
use crate::sink::TraceData;
use bds_des::time::SimTime;
use bds_wtpg::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// The control node's pid in the exported trace.
pub const CN_PID: u64 = 1;

/// The pid of DPN `node` in the exported trace.
pub fn dpn_pid(node: u32) -> u64 {
    2 + u64::from(node)
}

fn tid_of(txn: Option<TxnId>) -> u64 {
    // tid 0 is reserved for work not attributable to one transaction.
    txn.map(|t| t.0 + 1).unwrap_or(0)
}

fn us(t: SimTime) -> u64 {
    t.as_millis() * 1000
}

fn complete(name: &str, pid: u64, tid: u64, start: SimTime, end: SimTime, args: &str) -> String {
    let mut o = JsonObj::new();
    o.str("name", name);
    o.str("ph", "X");
    o.int("pid", pid);
    o.int("tid", tid);
    o.int("ts", us(start));
    o.int("dur", us(end) - us(start));
    if !args.is_empty() {
        o.raw("args", args);
    }
    o.finish()
}

fn instant(name: &str, pid: u64, tid: u64, at: SimTime, args: &str) -> String {
    let mut o = JsonObj::new();
    o.str("name", name);
    o.str("ph", "i");
    o.str("s", "t");
    o.int("pid", pid);
    o.int("tid", tid);
    o.int("ts", us(at));
    if !args.is_empty() {
        o.raw("args", args);
    }
    o.finish()
}

fn process_name(pid: u64, name: &str) -> String {
    let mut args = JsonObj::new();
    args.str("name", name);
    let mut o = JsonObj::new();
    o.str("name", "process_name");
    o.str("ph", "M");
    o.int("pid", pid);
    o.int("tid", 0);
    o.raw("args", &args.finish());
    o.finish()
}

fn file_args(file: u32, reason: Option<&str>) -> String {
    let mut a = JsonObj::new();
    a.int("file", u64::from(file));
    if let Some(r) = reason {
        a.str("reason", r);
    }
    a.finish()
}

/// Render the trace as a Chrome `trace_event` JSON document.
pub fn chrome_trace(data: &TraceData) -> String {
    let mut events = JsonArr::new();
    let mut dpn_pids: BTreeSet<u32> = BTreeSet::new();
    // Open step spans: txn → (step, dispatch time).
    let mut open_steps: BTreeMap<TxnId, (u32, SimTime)> = BTreeMap::new();

    for rec in &data.records {
        let at = rec.at;
        match rec.kind {
            EventKind::Arrival { txn } => {
                events.raw(&instant("arrival", CN_PID, tid_of(Some(txn)), at, ""));
            }
            EventKind::Admit { txn } => {
                events.raw(&instant("admit", CN_PID, tid_of(Some(txn)), at, ""));
            }
            EventKind::AdmitRefuse { txn, reason } => {
                let mut a = JsonObj::new();
                a.str("reason", reason);
                events.raw(&instant(
                    "admit_refuse",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &a.finish(),
                ));
            }
            EventKind::LockRequest { txn, file, .. } => {
                events.raw(&instant(
                    "lock_request",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &file_args(file.0, None),
                ));
            }
            EventKind::LockGrant { txn, file, .. } => {
                events.raw(&instant(
                    "lock_grant",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &file_args(file.0, None),
                ));
            }
            EventKind::LockBlock {
                txn, file, reason, ..
            } => {
                events.raw(&instant(
                    "lock_block",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &file_args(file.0, Some(reason)),
                ));
            }
            EventKind::LockDeny {
                txn, file, reason, ..
            } => {
                events.raw(&instant(
                    "lock_deny",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &file_args(file.0, Some(reason)),
                ));
            }
            EventKind::LockRestart {
                txn, file, reason, ..
            } => {
                events.raw(&instant(
                    "lock_restart",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &file_args(file.0, Some(reason)),
                ));
            }
            EventKind::WtpgEdge { from, to } => {
                let mut a = JsonObj::new();
                a.int("from", from.0);
                a.int("to", to.0);
                events.raw(&instant(
                    "wtpg_edge",
                    CN_PID,
                    tid_of(Some(to)),
                    at,
                    &a.finish(),
                ));
            }
            EventKind::StepDispatch { txn, step } => {
                open_steps.insert(txn, (step, at));
            }
            EventKind::StepDone { txn, step } => {
                if let Some((s0, t0)) = open_steps.remove(&txn) {
                    if s0 == step {
                        let mut a = JsonObj::new();
                        a.int("step", u64::from(step));
                        events.raw(&complete(
                            "step",
                            CN_PID,
                            tid_of(Some(txn)),
                            t0,
                            at,
                            &a.finish(),
                        ));
                    }
                }
            }
            EventKind::CohortStart { .. } | EventKind::CohortFinish { .. } => {
                // Covered by the quantum spans on the DPN tracks.
            }
            EventKind::Quantum { txn, node, start } => {
                dpn_pids.insert(node);
                events.raw(&complete(
                    "quantum",
                    dpn_pid(node),
                    tid_of(Some(txn)),
                    start,
                    at,
                    "",
                ));
            }
            EventKind::CnCpu { txn, what, start } => {
                events.raw(&complete(what, CN_PID, tid_of(txn), start, at, ""));
            }
            EventKind::Certify { txn, ok } => {
                let mut a = JsonObj::new();
                a.bool("ok", ok);
                events.raw(&instant(
                    "certify",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &a.finish(),
                ));
            }
            EventKind::Commit { txn } => {
                events.raw(&instant("commit", CN_PID, tid_of(Some(txn)), at, ""));
            }
            EventKind::Abort { txn } => {
                events.raw(&instant("abort", CN_PID, tid_of(Some(txn)), at, ""));
            }
            EventKind::Restart { txn } => {
                events.raw(&instant("restart", CN_PID, tid_of(Some(txn)), at, ""));
            }
            EventKind::FaultInjected { node, what } => {
                let mut a = JsonObj::new();
                a.str("what", what);
                let pid = match node {
                    Some(n) => {
                        dpn_pids.insert(n);
                        dpn_pid(n)
                    }
                    None => CN_PID,
                };
                events.raw(&instant("fault_injected", pid, 0, at, &a.finish()));
            }
            EventKind::TxnKilled { txn, attempts } => {
                let mut a = JsonObj::new();
                a.int("attempts", u64::from(attempts));
                events.raw(&instant(
                    "txn_killed",
                    CN_PID,
                    tid_of(Some(txn)),
                    at,
                    &a.finish(),
                ));
            }
            EventKind::NodeRecovered { node } => {
                dpn_pids.insert(node);
                events.raw(&instant("node_recovered", dpn_pid(node), 0, at, ""));
            }
        }
    }

    events.raw(&process_name(CN_PID, "CN (control node)"));
    for node in dpn_pids {
        events.raw(&process_name(dpn_pid(node), &format!("DPN {node}")));
    }

    let mut doc = JsonObj::new();
    doc.raw("traceEvents", &events.finish());
    doc.str("displayTimeUnit", "ms");
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Rec;
    use crate::sink::{RingRecorder, TraceSink};
    use bds_workload::FileId;

    fn rec(ms: u64, kind: EventKind) -> Rec {
        Rec {
            at: SimTime::from_millis(ms),
            kind,
        }
    }

    #[test]
    fn exports_spans_instants_and_metadata() {
        let mut r = RingRecorder::new(16);
        r.record(rec(0, EventKind::Arrival { txn: TxnId(1) }));
        r.record(rec(
            2,
            EventKind::LockGrant {
                txn: TxnId(1),
                step: 0,
                file: FileId(3),
            },
        ));
        r.record(rec(
            2,
            EventKind::StepDispatch {
                txn: TxnId(1),
                step: 0,
            },
        ));
        r.record(rec(
            10,
            EventKind::Quantum {
                txn: TxnId(1),
                node: 4,
                start: SimTime::from_millis(5),
            },
        ));
        r.record(rec(
            12,
            EventKind::StepDone {
                txn: TxnId(1),
                step: 0,
            },
        ));
        r.record(rec(
            14,
            EventKind::CnCpu {
                txn: None,
                what: "cot",
                start: SimTime::from_millis(12),
            },
        ));
        r.record(rec(14, EventKind::Commit { txn: TxnId(1) }));
        let json = chrome_trace(&r.into_data());
        assert!(json.starts_with("{\"traceEvents\":["));
        // Step span: dispatched at 2ms, done at 12ms → ts 2000µs dur 10000µs.
        assert!(json.contains(r#""name":"step","ph":"X","pid":1,"tid":2,"ts":2000,"dur":10000"#));
        // Quantum on DPN 4 → pid 6.
        assert!(json.contains(r#""name":"quantum","ph":"X","pid":6,"tid":2,"ts":5000,"dur":5000"#));
        // Unattributed CN burst lands on tid 0.
        assert!(json.contains(r#""name":"cot","ph":"X","pid":1,"tid":0"#));
        assert!(json.contains(r#""name":"commit","ph":"i""#));
        assert!(json.contains(r#""name":"process_name""#));
        assert!(json.contains(r#""name":"DPN 4""#));
        assert!(json.contains(r#""displayTimeUnit":"ms""#));
    }
}

//! The typed trace event model.
//!
//! One [`Rec`] per observable simulator action, covering the full
//! transaction lifecycle: arrival, admission, lock request/grant/block/
//! deny, WTPG edge insertion, per-DPN cohort execution and round-robin
//! CPU quanta, control-node CPU bursts, certification, commit, abort and
//! restart. Scheduler refusals carry a static `reason` string (e.g.
//! C2PL's `"predicted-deadlock"`, LOW's `"E(q)>E(p)"`, GOW's
//! `"critical-path"`), so analyzers can attribute denied time to policy.

use bds_des::time::SimTime;
use bds_workload::FileId;
use bds_wtpg::TxnId;

/// One trace record: the instant it was emitted plus its payload.
///
/// Span-like events ([`EventKind::Quantum`], [`EventKind::CnCpu`]) carry
/// their own `start`; `at` is the span's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rec {
    /// Emission time (for spans: the end of the span).
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction arrived and was registered with the scheduler.
    Arrival {
        /// The arriving transaction.
        txn: TxnId,
    },
    /// Admission granted: the transaction is live (and, under ASL, holds
    /// its whole lock set).
    Admit {
        /// The admitted transaction.
        txn: TxnId,
    },
    /// Admission refused by the scheduler; the transaction stays queued.
    AdmitRefuse {
        /// The refused transaction.
        txn: TxnId,
        /// Policy reason (`"chain-form"`, `"k-conflict"`, …).
        reason: &'static str,
    },
    /// A lock request was submitted to the scheduler.
    LockRequest {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: u32,
        /// File whose lock is requested.
        file: FileId,
    },
    /// The lock request was granted.
    LockGrant {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: u32,
        /// Granted file.
        file: FileId,
    },
    /// The request conflicts with a currently held lock (the paper's
    /// "blocked").
    LockBlock {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: u32,
        /// Contested file.
        file: FileId,
        /// Why the scheduler blocked it.
        reason: &'static str,
    },
    /// The request was refused by scheduler policy (the paper's
    /// "delayed").
    LockDeny {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: u32,
        /// Contested file.
        file: FileId,
        /// Policy reason (`"predicted-deadlock"`, `"E(q)>E(p)"`, …).
        reason: &'static str,
    },
    /// The scheduler ordered the requester aborted and restarted
    /// (restart-oriented protocols such as WDL).
    LockRestart {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: u32,
        /// Contested file.
        file: FileId,
        /// Policy reason (`"wait-depth"`, …).
        reason: &'static str,
    },
    /// A precedence edge `from → to` entered the wait-for/WTPG state.
    WtpgEdge {
        /// Transaction ordered first.
        from: TxnId,
        /// Transaction ordered after `from`.
        to: TxnId,
    },
    /// A step's cohorts were dispatched to their DPNs.
    StepDispatch {
        /// Owning transaction.
        txn: TxnId,
        /// Step index.
        step: u32,
    },
    /// Every cohort of the step finished and the completion message was
    /// processed at the control node.
    StepDone {
        /// Owning transaction.
        txn: TxnId,
        /// Step index.
        step: u32,
    },
    /// One cohort of a step entered a DPN's ready queue.
    CohortStart {
        /// Owning transaction.
        txn: TxnId,
        /// Step index.
        step: u32,
        /// The DPN serving this cohort.
        node: u32,
    },
    /// One cohort of a step completed its scan on a DPN.
    CohortFinish {
        /// Owning transaction.
        txn: TxnId,
        /// Step index.
        step: u32,
        /// The DPN that served this cohort.
        node: u32,
    },
    /// A round-robin CPU slice `[start, at]` ran on a DPN.
    Quantum {
        /// Transaction whose cohort ran.
        txn: TxnId,
        /// The DPN the slice ran on.
        node: u32,
        /// Slice start (the record's `at` is the slice end).
        start: SimTime,
    },
    /// A CPU burst `[start, at]` served by the control node's FCFS CPU.
    CnCpu {
        /// Transaction the burst was charged to, when attributable.
        txn: Option<TxnId>,
        /// What the burst paid for (`"sot"`, `"sched"`, `"msg"`, `"cot"`).
        what: &'static str,
        /// Burst start (the record's `at` is the burst end).
        start: SimTime,
    },
    /// Commit certification verdict (locking schedulers always pass; OPT
    /// validates backward).
    Certify {
        /// The certified transaction.
        txn: TxnId,
        /// Whether certification passed.
        ok: bool,
    },
    /// The transaction committed.
    Commit {
        /// The committed transaction.
        txn: TxnId,
    },
    /// The transaction's current attempt was aborted.
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// The transaction re-entered the start queue after its restart
    /// delay.
    Restart {
        /// The restarting transaction.
        txn: TxnId,
    },
    /// A fault-plan action fired (DPN crash, CN stall, link loss, …).
    FaultInjected {
        /// The affected DPN, or `None` for machine-wide faults (CN
        /// stalls, link faults).
        node: Option<u32>,
        /// What happened (`"dpn-crash"`, `"cn-stall"`, `"link-loss"`).
        what: &'static str,
    },
    /// A transaction was dropped permanently after exhausting its
    /// fault-retry budget.
    TxnKilled {
        /// The killed transaction.
        txn: TxnId,
        /// How many times it had been fault-killed (== the retry cap).
        attempts: u32,
    },
    /// A crashed DPN came back up and accepts cohorts again.
    NodeRecovered {
        /// The recovered DPN.
        node: u32,
    },
}

impl EventKind {
    /// Short static name of the event kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::Admit { .. } => "admit",
            EventKind::AdmitRefuse { .. } => "admit_refuse",
            EventKind::LockRequest { .. } => "lock_request",
            EventKind::LockGrant { .. } => "lock_grant",
            EventKind::LockBlock { .. } => "lock_block",
            EventKind::LockDeny { .. } => "lock_deny",
            EventKind::LockRestart { .. } => "lock_restart",
            EventKind::WtpgEdge { .. } => "wtpg_edge",
            EventKind::StepDispatch { .. } => "step_dispatch",
            EventKind::StepDone { .. } => "step_done",
            EventKind::CohortStart { .. } => "cohort_start",
            EventKind::CohortFinish { .. } => "cohort_finish",
            EventKind::Quantum { .. } => "quantum",
            EventKind::CnCpu { .. } => "cn_cpu",
            EventKind::Certify { .. } => "certify",
            EventKind::Commit { .. } => "commit",
            EventKind::Abort { .. } => "abort",
            EventKind::Restart { .. } => "restart",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::TxnKilled { .. } => "txn_killed",
            EventKind::NodeRecovered { .. } => "node_recovered",
        }
    }

    /// The transaction this event belongs to, when there is exactly one.
    pub fn txn(&self) -> Option<TxnId> {
        match *self {
            EventKind::Arrival { txn }
            | EventKind::Admit { txn }
            | EventKind::AdmitRefuse { txn, .. }
            | EventKind::LockRequest { txn, .. }
            | EventKind::LockGrant { txn, .. }
            | EventKind::LockBlock { txn, .. }
            | EventKind::LockDeny { txn, .. }
            | EventKind::LockRestart { txn, .. }
            | EventKind::StepDispatch { txn, .. }
            | EventKind::StepDone { txn, .. }
            | EventKind::CohortStart { txn, .. }
            | EventKind::CohortFinish { txn, .. }
            | EventKind::Quantum { txn, .. }
            | EventKind::Certify { txn, .. }
            | EventKind::Commit { txn }
            | EventKind::Abort { txn }
            | EventKind::Restart { txn }
            | EventKind::TxnKilled { txn, .. } => Some(txn),
            EventKind::CnCpu { txn, .. } => txn,
            EventKind::WtpgEdge { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::NodeRecovered { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_txn_extraction() {
        let k = EventKind::Commit { txn: TxnId(7) };
        assert_eq!(k.name(), "commit");
        assert_eq!(k.txn(), Some(TxnId(7)));
        let e = EventKind::WtpgEdge {
            from: TxnId(1),
            to: TxnId(2),
        };
        assert_eq!(e.txn(), None);
        let c = EventKind::CnCpu {
            txn: None,
            what: "sot",
            start: SimTime::ZERO,
        };
        assert_eq!(c.txn(), None);
        assert_eq!(c.name(), "cn_cpu");
    }
}

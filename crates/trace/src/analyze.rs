//! Derived trace analyzers.
//!
//! Folds a recorded trace into (1) per-transaction span summaries with a
//! queue/wait/exec/lost breakdown, (2) per-file lock-contention tallies,
//! and (3) a wait-for critical-path report over the observed precedence
//! edges — the quantities the paper uses to *explain* its results
//! (e.g. Fig. 11's lock-wait argument) rather than just report them.

use crate::event::EventKind;
use crate::json::{JsonArr, JsonObj};
use crate::sink::{Counts, TraceData};
use bds_des::time::{Duration, SimTime};
use bds_workload::FileId;
use bds_wtpg::TxnId;
use std::collections::BTreeMap;

/// Lifecycle breakdown for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSpan {
    /// The transaction.
    pub txn: TxnId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// First admission instant, if it ever started.
    pub first_admit: Option<SimTime>,
    /// Commit instant, if it committed within the trace.
    pub commit: Option<SimTime>,
    /// Aborted attempts observed.
    pub aborts: u32,
    /// Start-queue time: arrival → first admission.
    pub queue: Duration,
    /// Lock-wait time in the committing attempt (first request → grant).
    pub wait: Duration,
    /// Step-execution time in the committing attempt (dispatch → done).
    pub exec: Duration,
    /// Wait + exec time thrown away by aborted attempts.
    pub lost: Duration,
}

impl TxnSpan {
    /// Response time (arrival → commit), when the transaction committed.
    pub fn response(&self) -> Option<Duration> {
        self.commit.map(|c| c.since(self.arrival))
    }
}

/// Lock-contention tally for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileStats {
    /// The file.
    pub file: FileId,
    /// Lock requests naming this file (including retries).
    pub requests: u64,
    /// Grants.
    pub grants: u64,
    /// Requests blocked on a held lock.
    pub blocks: u64,
    /// Requests delayed by scheduler policy.
    pub denies: u64,
    /// Total time transactions waited between first request and grant of
    /// this file's lock.
    pub wait: Duration,
}

/// The heaviest chain through the observed precedence edges, weighted by
/// each transaction's lock-wait time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Transactions along the chain, in precedence order.
    pub path: Vec<TxnId>,
    /// Summed lock-wait time along the chain.
    pub total_wait: Duration,
}

/// Run-wide averages over committed transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Committed transactions in the trace.
    pub committed: u64,
    /// Aborted attempts in the trace.
    pub aborted_attempts: u64,
    /// Mean start-queue time (seconds, per committed transaction).
    pub mean_queue_secs: f64,
    /// Mean lock-wait time (seconds).
    pub mean_wait_secs: f64,
    /// Mean step-execution time (seconds).
    pub mean_exec_secs: f64,
    /// Mean time lost to aborted attempts (seconds).
    pub mean_lost_secs: f64,
    /// Mean response time (seconds).
    pub mean_response_secs: f64,
}

/// Per-transaction accumulator used while folding the trace.
#[derive(Debug, Clone, Copy)]
struct Acc {
    arrival: SimTime,
    first_admit: Option<SimTime>,
    commit: Option<SimTime>,
    aborts: u32,
    wait: Duration,
    exec: Duration,
    lost: Duration,
    att_wait: Duration,
    att_exec: Duration,
    wait_since: Option<(SimTime, FileId)>,
    exec_since: Option<SimTime>,
}

impl Acc {
    fn new(arrival: SimTime) -> Self {
        Acc {
            arrival,
            first_admit: None,
            commit: None,
            aborts: 0,
            wait: Duration::ZERO,
            exec: Duration::ZERO,
            lost: Duration::ZERO,
            att_wait: Duration::ZERO,
            att_exec: Duration::ZERO,
            wait_since: None,
            exec_since: None,
        }
    }
}

/// The folded analysis of one trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-transaction spans, in transaction-id order.
    pub spans: Vec<TxnSpan>,
    /// Per-file contention tallies, in file-id order.
    pub files: Vec<FileStats>,
    /// Denial/refusal reasons with occurrence counts, most frequent first.
    pub deny_reasons: Vec<(&'static str, u64)>,
    /// Distinct precedence edges observed, in insertion order.
    pub edges: Vec<(TxnId, TxnId)>,
    /// Exact event counters copied from the trace.
    pub counts: Counts,
    /// Records lost to ring overwrites (analysis is partial when > 0).
    pub dropped: u64,
}

impl Analysis {
    /// Fold a recorded trace.
    pub fn from_data(data: &TraceData) -> Self {
        let mut accs: BTreeMap<TxnId, Acc> = BTreeMap::new();
        let mut files: BTreeMap<FileId, FileStats> = BTreeMap::new();
        let mut reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut edges: Vec<(TxnId, TxnId)> = Vec::new();
        let mut edge_seen: BTreeMap<(TxnId, TxnId), ()> = BTreeMap::new();

        // A record for a transaction whose arrival was overwritten by ring
        // wraparound starts an accumulator at first sighting.
        fn acc_of(accs: &mut BTreeMap<TxnId, Acc>, txn: TxnId, at: SimTime) -> &mut Acc {
            accs.entry(txn).or_insert_with(|| Acc::new(at))
        }
        fn file_of(files: &mut BTreeMap<FileId, FileStats>, file: FileId) -> &mut FileStats {
            files.entry(file).or_insert_with(|| FileStats {
                file,
                ..FileStats::default()
            })
        }

        for rec in &data.records {
            let at = rec.at;
            match rec.kind {
                EventKind::Arrival { txn } => {
                    accs.entry(txn).or_insert_with(|| Acc::new(at));
                }
                EventKind::Admit { txn } => {
                    let a = acc_of(&mut accs, txn, at);
                    if a.first_admit.is_none() {
                        a.first_admit = Some(at);
                    }
                }
                EventKind::AdmitRefuse { reason, .. } => {
                    *reasons.entry(reason).or_insert(0) += 1;
                }
                EventKind::LockRequest { txn, file, .. } => {
                    file_of(&mut files, file).requests += 1;
                    let a = acc_of(&mut accs, txn, at);
                    if a.wait_since.is_none() {
                        a.wait_since = Some((at, file));
                    }
                }
                EventKind::LockGrant { txn, file, .. } => {
                    file_of(&mut files, file).grants += 1;
                    let a = acc_of(&mut accs, txn, at);
                    if let Some((t0, wfile)) = a.wait_since.take() {
                        let w = at.since(t0);
                        a.att_wait += w;
                        file_of(&mut files, wfile).wait += w;
                    }
                }
                EventKind::LockBlock { file, reason, .. } => {
                    file_of(&mut files, file).blocks += 1;
                    *reasons.entry(reason).or_insert(0) += 1;
                }
                EventKind::LockDeny { file, reason, .. }
                | EventKind::LockRestart { file, reason, .. } => {
                    file_of(&mut files, file).denies += 1;
                    *reasons.entry(reason).or_insert(0) += 1;
                }
                EventKind::WtpgEdge { from, to } => {
                    if edge_seen.insert((from, to), ()).is_none() {
                        edges.push((from, to));
                    }
                }
                EventKind::StepDispatch { txn, .. } => {
                    acc_of(&mut accs, txn, at).exec_since = Some(at);
                }
                EventKind::StepDone { txn, .. } => {
                    let a = acc_of(&mut accs, txn, at);
                    if let Some(t0) = a.exec_since.take() {
                        a.att_exec += at.since(t0);
                    }
                }
                EventKind::Commit { txn } => {
                    let a = acc_of(&mut accs, txn, at);
                    a.commit = Some(at);
                    a.wait = a.att_wait;
                    a.exec = a.att_exec;
                    a.att_wait = Duration::ZERO;
                    a.att_exec = Duration::ZERO;
                }
                EventKind::Abort { txn } => {
                    let a = acc_of(&mut accs, txn, at);
                    // Close any open intervals into the discarded attempt.
                    if let Some((t0, _)) = a.wait_since.take() {
                        a.att_wait += at.since(t0);
                    }
                    if let Some(t0) = a.exec_since.take() {
                        a.att_exec += at.since(t0);
                    }
                    a.lost += a.att_wait + a.att_exec;
                    a.att_wait = Duration::ZERO;
                    a.att_exec = Duration::ZERO;
                    a.aborts += 1;
                }
                // Cohort/quantum/CN-CPU/certify/restart/fault events
                // carry no span-accounting state (a fault kill is always
                // preceded by an `Abort`, which closes the attempt).
                EventKind::CohortStart { .. }
                | EventKind::CohortFinish { .. }
                | EventKind::Quantum { .. }
                | EventKind::CnCpu { .. }
                | EventKind::Certify { .. }
                | EventKind::Restart { .. }
                | EventKind::FaultInjected { .. }
                | EventKind::TxnKilled { .. }
                | EventKind::NodeRecovered { .. } => {}
            }
        }

        let spans = accs
            .into_iter()
            .map(|(txn, a)| TxnSpan {
                txn,
                arrival: a.arrival,
                first_admit: a.first_admit,
                commit: a.commit,
                aborts: a.aborts,
                queue: a
                    .first_admit
                    .map(|t| t.since(a.arrival))
                    .unwrap_or(Duration::ZERO),
                wait: a.wait,
                exec: a.exec,
                lost: a.lost,
            })
            .collect();
        let mut deny_reasons: Vec<(&'static str, u64)> = reasons.into_iter().collect();
        deny_reasons.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Analysis {
            spans,
            files: files.into_values().collect(),
            deny_reasons,
            edges,
            counts: data.counts,
            dropped: data.dropped,
        }
    }

    /// Run-wide averages over committed transactions.
    pub fn breakdown(&self) -> Breakdown {
        let committed: Vec<&TxnSpan> = self.spans.iter().filter(|s| s.commit.is_some()).collect();
        let n = committed.len() as f64;
        let mean = |f: &dyn Fn(&TxnSpan) -> Duration| -> f64 {
            if committed.is_empty() {
                0.0
            } else {
                committed.iter().map(|s| f(s).as_secs_f64()).sum::<f64>() / n
            }
        };
        Breakdown {
            committed: committed.len() as u64,
            aborted_attempts: self.spans.iter().map(|s| u64::from(s.aborts)).sum(),
            mean_queue_secs: mean(&|s| s.queue),
            mean_wait_secs: mean(&|s| s.wait),
            mean_exec_secs: mean(&|s| s.exec),
            mean_lost_secs: mean(&|s| s.lost),
            mean_response_secs: mean(&|s| s.response().unwrap_or(Duration::ZERO)),
        }
    }

    /// The heaviest chain through the observed precedence edges, weighted
    /// by each transaction's lock-wait time (committing attempt). Cycles
    /// cannot arise from the schedulers' serializable orders; any edge
    /// that would close one is ignored defensively.
    pub fn wait_critical_path(&self) -> CriticalPath {
        let wait_of: BTreeMap<TxnId, Duration> =
            self.spans.iter().map(|s| (s.txn, s.wait)).collect();
        let weight = |t: TxnId| wait_of.get(&t).copied().unwrap_or(Duration::ZERO);

        // Kahn topological sweep with longest-path relaxation. Distances
        // are (wait, hops) so zero-wait chains still prefer more hops.
        let mut succs: BTreeMap<TxnId, Vec<TxnId>> = BTreeMap::new();
        let mut indeg: BTreeMap<TxnId, usize> = BTreeMap::new();
        for &(from, to) in &self.edges {
            succs.entry(from).or_default().push(to);
            indeg.entry(from).or_default();
            *indeg.entry(to).or_default() += 1;
        }
        let mut ready: Vec<TxnId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut dist: BTreeMap<TxnId, (Duration, usize)> = BTreeMap::new();
        let mut pred: BTreeMap<TxnId, TxnId> = BTreeMap::new();
        for &t in &ready {
            dist.insert(t, (weight(t), 1));
        }
        let mut order = 0usize;
        while order < ready.len() {
            let u = ready[order];
            order += 1;
            let (du, hu) = dist[&u];
            for &v in succs.get(&u).into_iter().flatten() {
                let cand = (du + weight(v), hu + 1);
                if dist.get(&v).is_none_or(|&d| cand > d) {
                    dist.insert(v, cand);
                    pred.insert(v, u);
                }
                let d = indeg.get_mut(&v).expect("edge endpoint has indegree");
                *d -= 1;
                if *d == 0 {
                    ready.push(v);
                }
            }
        }
        // Reconstruct from the heaviest endpoint (ties: lowest txn id).
        let end = dist
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&t, _)| t);
        let mut path = Vec::new();
        let total_wait = end.map(|t| dist[&t].0).unwrap_or(Duration::ZERO);
        let mut cur = end;
        while let Some(t) = cur {
            path.push(t);
            cur = pred.get(&t).copied();
        }
        path.reverse();
        CriticalPath { path, total_wait }
    }

    /// Append the span-summary fields to a caller-provided [`JsonObj`]
    /// (so callers can prefix run metadata of their own).
    pub fn write_summary(&self, o: &mut JsonObj) {
        let b = self.breakdown();
        o.int("commits", self.counts.commits);
        o.int("aborts", self.counts.aborts);
        o.int("restarts", self.counts.restarts);
        o.int("lock_requests", self.counts.lock_requests);
        o.int("lock_grants", self.counts.lock_grants);
        o.int("lock_blocks", self.counts.lock_blocks);
        o.int("lock_denies", self.counts.lock_denies);
        o.int("wtpg_edges", self.counts.wtpg_edges);
        o.int("events_total", self.counts.total());
        o.int("records_dropped", self.dropped);
        o.num("mean_queue_secs", b.mean_queue_secs);
        o.num("mean_wait_secs", b.mean_wait_secs);
        o.num("mean_exec_secs", b.mean_exec_secs);
        o.num("mean_lost_secs", b.mean_lost_secs);
        o.num("mean_response_secs", b.mean_response_secs);
        let mut reasons = JsonArr::new();
        for &(reason, count) in &self.deny_reasons {
            let mut r = JsonObj::new();
            r.str("reason", reason);
            r.int("count", count);
            reasons.raw(&r.finish());
        }
        o.raw("deny_reasons", &reasons.finish());
        // Top contended files by accumulated lock-wait time.
        let mut by_wait: Vec<&FileStats> = self.files.iter().collect();
        by_wait.sort_by(|a, b| b.wait.cmp(&a.wait).then(a.file.cmp(&b.file)));
        let mut top = JsonArr::new();
        for fs in by_wait.iter().take(8) {
            let mut f = JsonObj::new();
            f.int("file", u64::from(fs.file.0));
            f.int("requests", fs.requests);
            f.int("grants", fs.grants);
            f.int("blocks", fs.blocks);
            f.int("denies", fs.denies);
            f.num("wait_secs", fs.wait.as_secs_f64());
            top.raw(&f.finish());
        }
        o.raw("top_files", &top.finish());
        let cp = self.wait_critical_path();
        let mut cpo = JsonObj::new();
        cpo.num("total_wait_secs", cp.total_wait.as_secs_f64());
        let mut ids = JsonArr::new();
        for t in &cp.path {
            ids.int(t.0);
        }
        cpo.raw("txns", &ids.finish());
        o.raw("wait_critical_path", &cpo.finish());
    }

    /// The span summary as a standalone JSON object.
    pub fn summary_json(&self) -> String {
        let mut o = JsonObj::new();
        self.write_summary(&mut o);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Rec;
    use crate::sink::{RingRecorder, TraceSink};

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn f(i: u32) -> FileId {
        FileId(i)
    }
    fn rec(ms: u64, kind: EventKind) -> Rec {
        Rec {
            at: SimTime::from_millis(ms),
            kind,
        }
    }

    /// T1: arrives at 0, admitted at 10, requests F0 at 10, blocked,
    /// granted at 50, executes 10..(dispatch 50, done 150), commits 160.
    /// T2: arrives at 5, aborted attempt (wait 20..40 lost), restarts,
    /// never commits.
    fn sample() -> TraceData {
        let mut r = RingRecorder::new(64);
        for e in [
            rec(0, EventKind::Arrival { txn: t(1) }),
            rec(5, EventKind::Arrival { txn: t(2) }),
            rec(10, EventKind::Admit { txn: t(1) }),
            rec(
                10,
                EventKind::LockRequest {
                    txn: t(1),
                    step: 0,
                    file: f(0),
                },
            ),
            rec(
                10,
                EventKind::LockBlock {
                    txn: t(1),
                    step: 0,
                    file: f(0),
                    reason: "lock-held",
                },
            ),
            rec(20, EventKind::Admit { txn: t(2) }),
            rec(
                20,
                EventKind::LockRequest {
                    txn: t(2),
                    step: 0,
                    file: f(1),
                },
            ),
            rec(
                20,
                EventKind::LockDeny {
                    txn: t(2),
                    step: 0,
                    file: f(1),
                    reason: "predicted-deadlock",
                },
            ),
            rec(
                40,
                EventKind::WtpgEdge {
                    from: t(1),
                    to: t(2),
                },
            ),
            rec(40, EventKind::Abort { txn: t(2) }),
            rec(
                50,
                EventKind::LockGrant {
                    txn: t(1),
                    step: 0,
                    file: f(0),
                },
            ),
            rec(50, EventKind::StepDispatch { txn: t(1), step: 0 }),
            rec(150, EventKind::StepDone { txn: t(1), step: 0 }),
            rec(
                160,
                EventKind::Certify {
                    txn: t(1),
                    ok: true,
                },
            ),
            rec(160, EventKind::Commit { txn: t(1) }),
        ] {
            r.record(e);
        }
        r.into_data()
    }

    #[test]
    fn spans_fold_wait_exec_and_lost() {
        let a = Analysis::from_data(&sample());
        assert_eq!(a.spans.len(), 2);
        let s1 = a.spans[0];
        assert_eq!(s1.txn, t(1));
        assert_eq!(s1.queue, Duration::from_millis(10));
        assert_eq!(s1.wait, Duration::from_millis(40));
        assert_eq!(s1.exec, Duration::from_millis(100));
        assert_eq!(s1.lost, Duration::ZERO);
        assert_eq!(s1.response(), Some(Duration::from_millis(160)));
        let s2 = a.spans[1];
        assert_eq!(s2.aborts, 1);
        assert_eq!(s2.lost, Duration::from_millis(20), "open wait closed");
        assert_eq!(s2.commit, None);
    }

    #[test]
    fn file_tallies_attribute_wait_to_granted_file() {
        let a = Analysis::from_data(&sample());
        let f0 = a.files.iter().find(|s| s.file == f(0)).unwrap();
        assert_eq!(f0.requests, 1);
        assert_eq!(f0.grants, 1);
        assert_eq!(f0.blocks, 1);
        assert_eq!(f0.wait, Duration::from_millis(40));
        let f1 = a.files.iter().find(|s| s.file == f(1)).unwrap();
        assert_eq!(f1.denies, 1);
        assert_eq!(f1.wait, Duration::ZERO, "aborted wait is lost, not filed");
    }

    #[test]
    fn reasons_and_breakdown() {
        let a = Analysis::from_data(&sample());
        assert!(a
            .deny_reasons
            .iter()
            .any(|&(r, c)| r == "predicted-deadlock" && c == 1));
        let b = a.breakdown();
        assert_eq!(b.committed, 1);
        assert_eq!(b.aborted_attempts, 1);
        assert!((b.mean_wait_secs - 0.04).abs() < 1e-12);
        assert!((b.mean_response_secs - 0.16).abs() < 1e-12);
    }

    #[test]
    fn critical_path_follows_edges() {
        let a = Analysis::from_data(&sample());
        let cp = a.wait_critical_path();
        assert_eq!(cp.path, vec![t(1), t(2)]);
        // T1 waited 40ms; T2's committing-attempt wait is zero.
        assert_eq!(cp.total_wait, Duration::from_millis(40));
    }

    #[test]
    fn summary_json_is_wellformed() {
        let a = Analysis::from_data(&sample());
        let json = a.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "commits",
            "mean_wait_secs",
            "deny_reasons",
            "top_files",
            "wait_critical_path",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"commits\":1"));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let data = RingRecorder::new(4).into_data();
        let a = Analysis::from_data(&data);
        assert!(a.spans.is_empty());
        let b = a.breakdown();
        assert_eq!(b.committed, 0);
        assert_eq!(b.mean_wait_secs, 0.0);
        assert!(a.wait_critical_path().path.is_empty());
    }
}

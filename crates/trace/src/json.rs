//! Minimal hand-rolled JSON writers.
//!
//! The workspace carries no external serialization dependency; these
//! writers cover the flat objects and arrays the reports and trace
//! exporters need. Keys and string values are both escaped, so arbitrary
//! scheduler/file labels can never produce invalid JSON.

/// Escape `v` into `out` as JSON string *contents* (no surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters become
/// `\n`/`\r`/`\t` or `\u00XX`.
pub fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Escape `v` as a complete JSON string literal, quotes included.
pub fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    escape_into(&mut out, v);
    out.push('"');
    out
}

/// Minimal JSON object writer: enough for flat reports (string, number,
/// and null values). Both keys and values are escaped.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Append a string field.
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
    }

    /// Append a float field (`null` when non-finite — JSON has no inf).
    pub fn num(&mut self, k: &str, v: f64) {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Append an integer field.
    pub fn int(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Append a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Append an optional float field (`null` when absent).
    pub fn opt_num(&mut self, k: &str, v: Option<f64>) {
        match v {
            Some(x) => self.num(k, x),
            None => {
                self.key(k);
                self.buf.push_str("null");
            }
        }
    }

    /// Append a raw pre-rendered JSON value (nested object/array).
    pub fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Minimal JSON array writer; elements are pre-rendered JSON values.
#[derive(Debug, Default)]
pub struct JsonArr {
    buf: String,
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> Self {
        JsonArr { buf: String::new() }
    }

    /// Append a raw pre-rendered JSON value.
    pub fn raw(&mut self, v: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
    }

    /// Append a string element.
    pub fn str(&mut self, v: &str) {
        let e = escape(v);
        self.raw(&e);
    }

    /// Append an integer element.
    pub fn int(&mut self, v: u64) {
        let s = v.to_string();
        self.raw(&s);
    }

    /// Number of elements appended so far is not tracked; emptiness is.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Close the array.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_keys_and_values() {
        let mut o = JsonObj::new();
        o.str("ke\"y", "a\"b\\c\nd\te\u{1}");
        assert_eq!(o.finish(), r#"{"ke\"y":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn numbers_and_nulls() {
        let mut o = JsonObj::new();
        o.num("x", 1.5);
        o.num("inf", f64::INFINITY);
        o.opt_num("none", None);
        o.int("n", 7);
        o.bool("b", true);
        assert_eq!(
            o.finish(),
            r#"{"x":1.5,"inf":null,"none":null,"n":7,"b":true}"#
        );
    }

    #[test]
    fn arrays_compose_with_objects() {
        let mut arr = JsonArr::new();
        assert!(arr.is_empty());
        let mut inner = JsonObj::new();
        inner.int("i", 1);
        arr.raw(&inner.finish());
        arr.str("two");
        arr.int(3);
        let mut o = JsonObj::new();
        o.raw("items", &arr.finish());
        assert_eq!(o.finish(), r#"{"items":[{"i":1},"two",3]}"#);
    }

    #[test]
    fn escape_produces_quoted_literal() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape(""), r#""""#);
    }
}

//! Online statistics for simulation outputs.
//!
//! * [`Welford`] — numerically stable streaming mean/variance (response
//!   times).
//! * [`TimeWeighted`] — piecewise-constant time averages (server
//!   utilization, queue lengths; the paper reports ~95 % resource
//!   utilization for NODC at saturation).
//! * [`Histogram`] — fixed-width binning with quantile queries.
//! * [`BatchMeans`] — non-overlapping batch means for a Student-t
//!   confidence interval on a steady-state mean (streaming; batch means
//!   fold into a [`Welford`], not a sample vector).

use crate::time::{Duration, SimTime};

/// Welford's streaming mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Raw accumulator state `(count, mean, m2, min, max)`, for
    /// checkpointing. Restoring it bit-exactly with
    /// [`Welford::from_state`] resumes the stream of observations with
    /// no loss of precision.
    pub fn state(&self) -> (u64, f64, f64, Option<f64>, Option<f64>) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from a state captured by
    /// [`Welford::state`].
    pub fn from_state(count: u64, mean: f64, m2: f64, min: Option<f64>, max: Option<f64>) -> Self {
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. number of
/// busy servers or queue length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let span = now.since(self.last_change);
        self.weighted_sum += self.value * span.as_millis() as f64;
        self.last_change = now;
        self.value = value;
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value;
        self.set(now, v + delta);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Raw state `(last_change, value, weighted_sum, start)`, for
    /// checkpointing; restore with [`TimeWeighted::from_state`].
    pub fn state(&self) -> (SimTime, f64, f64, SimTime) {
        (self.last_change, self.value, self.weighted_sum, self.start)
    }

    /// Rebuild a tracker from a state captured by
    /// [`TimeWeighted::state`].
    pub fn from_state(last_change: SimTime, value: f64, weighted_sum: f64, start: SimTime) -> Self {
        TimeWeighted {
            last_change,
            value,
            weighted_sum,
            start,
        }
    }

    /// Time average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_millis() as f64;
        if total == 0.0 {
            return self.value;
        }
        let pending = self.value * now.since(self.last_change).as_millis() as f64;
        (self.weighted_sum + pending) / total
    }
}

/// Fixed-width histogram over `[0, width · bins)` with an overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of width `width` plus one overflow bucket.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0`.
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(width > 0.0 && bins > 0, "invalid histogram shape");
        Histogram {
            width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Record a (non-negative) observation; negatives clamp to bucket 0.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.counts[0] += 1;
            return;
        }
        let idx = (x / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts (excluding overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Rebuild a histogram from raw parts (checkpointing counterpart of
    /// [`Histogram::width`] / [`Histogram::counts`] /
    /// [`Histogram::overflow`] / [`Histogram::total`]).
    ///
    /// # Panics
    /// Panics if the shape is invalid or the counts do not sum to
    /// `total`.
    pub fn from_state(width: f64, counts: Vec<u64>, overflow: u64, total: u64) -> Self {
        assert!(width > 0.0 && !counts.is_empty(), "invalid histogram shape");
        assert_eq!(
            counts.iter().sum::<u64>() + overflow,
            total,
            "histogram counts do not sum to total"
        );
        Histogram {
            width,
            counts,
            overflow,
            total,
        }
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) assuming observations sit at
    /// bucket midpoints; returns `None` if empty. Observations in the
    /// overflow bucket are treated as `width · bins`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i as f64 + 0.5) * self.width);
            }
        }
        Some(self.width * self.counts.len() as f64)
    }
}

/// Two-sided 95 % Student-t critical values keyed by degrees of freedom.
/// Between entries the value for the next *lower* tabulated dof applies
/// (a wider, conservative interval).
const T_TABLE_95: &[(u64, f64)] = &[
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (12, 2.179),
    (15, 2.131),
    (20, 2.086),
    (25, 2.060),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
];

/// Two-sided 95 % Student-t critical value for `dof` degrees of freedom,
/// rounded down to the nearest tabulated dof (never narrower than exact).
fn t_critical_95(dof: u64) -> f64 {
    let mut t = 12.706;
    for &(d, v) in T_TABLE_95 {
        if d <= dof {
            t = v;
        } else {
            break;
        }
    }
    t
}

/// Batch-means estimator: splits a sample stream into equally sized
/// batches and reports a Student-t confidence interval for the
/// steady-state mean. Completed batch means are folded into a [`Welford`]
/// accumulator, so memory stays O(1) regardless of run length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    means: Welford,
}

impl BatchMeans {
    /// Accumulate batches of `batch_size` observations each.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            means: Welford::new(),
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.means.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.means.count() as usize
    }

    /// Grand mean over completed batches (`None` until one completes).
    pub fn mean(&self) -> Option<f64> {
        if self.means.count() == 0 {
            None
        } else {
            Some(self.means.mean())
        }
    }

    /// 95 % confidence half-width using the Student-t critical value for
    /// `n − 1` degrees of freedom (the normal 1.96 understates the
    /// interval by 14 % at 10 batches and 2× at 3). `None` with fewer
    /// than 2 batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let n = self.means.count();
        if n < 2 {
            return None;
        }
        let t = t_critical_95(n - 1);
        Some(t * (self.means.variance() / n as f64).sqrt())
    }
}

/// Convenience: mean of a duration sample expressed in seconds (a
/// [`Welford`] fold, matching the streaming per-run statistics).
pub fn mean_duration_secs(durations: &[Duration]) -> f64 {
    let mut w = Welford::new();
    for d in durations {
        w.push(d.as_secs_f64());
    }
    w.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::new();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_millis(10), 1.0); // 0 for 10ms
        tw.set(SimTime::from_millis(30), 0.0); // 1 for 20ms
                                               // average over 40ms: (0*10 + 1*20 + 0*10)/40 = 0.5
        assert!((tw.average(SimTime::from_millis(40)) - 0.5).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.add(SimTime::from_millis(5), 3.0);
        assert_eq!(tw.current(), 5.0);
        // (2*5 + 5*5) / 10 = 3.5
        assert!((tw.average(SimTime::from_millis(10)) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // uniform on [0, 10)
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(1.0, 2);
        h.record(5.0);
        h.record(-1.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn batch_means_interval_shrinks() {
        let mut bm = BatchMeans::new(10);
        let mut r = crate::rng::Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            bm.push(r.next_f64());
        }
        assert_eq!(bm.batches(), 100);
        let mean = bm.mean().unwrap();
        assert!((mean - 0.5).abs() < 0.05);
        let hw = bm.half_width_95().unwrap();
        assert!(hw < 0.05, "half width {hw}");
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(100);
        for _ in 0..150 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.mean(), Some(1.0));
        assert_eq!(bm.half_width_95(), None);
    }

    #[test]
    fn t_table_is_monotone_and_matches_known_values() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(4) - 2.776).abs() < 1e-9);
        assert!((t_critical_95(9) - 2.262).abs() < 1e-9);
        // Between entries, round dof down (wider interval): dof 11 uses
        // the dof-10 value, never the smaller dof-12 one.
        assert!((t_critical_95(11) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.980).abs() < 1e-9);
        for dof in 1..200 {
            assert!(t_critical_95(dof) >= t_critical_95(dof + 1));
            assert!(t_critical_95(dof) >= 1.96);
        }
    }

    #[test]
    fn batch_means_small_n_uses_student_t() {
        // Three batches of one observation each: dof = 2, t = 4.303.
        let mut bm = BatchMeans::new(1);
        for x in [1.0, 2.0, 3.0] {
            bm.push(x);
        }
        assert_eq!(bm.batches(), 3);
        // Sample std dev of {1,2,3} is 1; hw = t * 1/sqrt(3).
        let expect = 4.303 / 3.0_f64.sqrt();
        let hw = bm.half_width_95().unwrap();
        assert!(
            (hw - expect).abs() < 1e-9,
            "hw {hw}, expected Student-t {expect}"
        );
    }

    #[test]
    fn mean_duration_secs_works() {
        let ds = [Duration::from_millis(1000), Duration::from_millis(3000)];
        assert!((mean_duration_secs(&ds) - 2.0).abs() < 1e-12);
        assert_eq!(mean_duration_secs(&[]), 0.0);
    }
}

//! Random variates for the paper's workloads.
//!
//! * [`Exponential`] — transaction inter-arrival times (`λ` in TPS).
//! * [`Normal`] — the I/O-demand estimation error of Experiment 3
//!   (`C = C0 · (1 + x)`, `x ~ N(0, σ²)`).
//! * [`Uniform`] — uniform reals in an interval.
//! * [`Discrete`] — sampling from an explicit weight table (used by
//!   extension workloads with skewed file popularity).

use crate::rng::Xoshiro256;

/// Sample a distribution with an explicit RNG.
pub trait Sample {
    /// Draw one variate.
    fn sample(&mut self, rng: &mut Xoshiro256) -> f64;
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create from a rate `λ > 0`.
    ///
    /// # Panics
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Theoretical mean (`1/λ`).
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample(&mut self, rng: &mut Xoshiro256) -> f64 {
        // Inverse CDF on (0,1] avoids ln(0).
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Normal distribution via the Box–Muller transform (caching the second
/// variate of each pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Create from mean and standard deviation (`σ ≥ 0`).
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid Normal parameters: mean={mean}, std_dev={std_dev}"
        );
        Normal {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The cached Box–Muller spare variate, for checkpointing. `None` when
    /// the next [`Sample::sample`] call will draw a fresh pair.
    pub fn spare(&self) -> Option<f64> {
        self.spare
    }

    /// Restore the cached spare variate captured by [`Normal::spare`].
    pub fn set_spare(&mut self, spare: Option<f64>) {
        self.spare = spare;
    }
}

impl Sample for Normal {
    fn sample(&mut self, rng: &mut Xoshiro256) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.spare = Some(z1);
        self.mean + self.std_dev * z0
    }
}

/// Uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create on `[low, high)`.
    ///
    /// # Panics
    /// Panics unless `low < high` and both are finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid Uniform bounds [{low}, {high})"
        );
        Uniform { low, high }
    }
}

impl Sample for Uniform {
    fn sample(&mut self, rng: &mut Xoshiro256) -> f64 {
        self.low + (self.high - self.low) * rng.next_f64()
    }
}

/// Discrete distribution over indices `0..weights.len()` proportional to
/// the given non-negative weights (linear-scan inversion; the tables used
/// here are small).
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Build from a weight table.
    ///
    /// # Panics
    /// Panics if the table is empty, any weight is negative/non-finite, or
    /// all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Discrete: empty weight table");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "Discrete: bad weight {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "Discrete: all weights zero");
        for c in &mut cumulative {
            *c /= total;
        }
        Discrete { cumulative }
    }

    /// The normalized cumulative weight table, for checkpointing.
    pub fn state(&self) -> &[f64] {
        &self.cumulative
    }

    /// Rebuild from a cumulative table captured by [`Discrete::state`].
    ///
    /// # Panics
    /// Panics if the table is empty, non-monotone, or does not end at 1.0
    /// (within rounding).
    pub fn from_state(cumulative: Vec<f64>) -> Self {
        assert!(!cumulative.is_empty(), "Discrete: empty cumulative table");
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "Discrete: cumulative table must be non-decreasing"
        );
        let last = *cumulative.last().unwrap();
        assert!(
            (last - 1.0).abs() < 1e-9,
            "Discrete: cumulative table must end at 1.0, got {last}"
        );
        Discrete { cumulative }
    }

    /// Draw an index.
    pub fn sample_index(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        match self.cumulative.iter().position(|&c| u < c) {
            Some(i) => i,
            // u can only reach the final bucket boundary through rounding.
            None => self.fallback_index(),
        }
    }

    /// Index drawn when rounding pushes `u` past every bucket boundary:
    /// the *last index with nonzero weight*. Trailing zero-weight entries
    /// repeat the previous cumulative value, so falling back to
    /// `len() - 1` could return an index that must never be drawn (e.g.
    /// weights `[1.0, 0.0]`).
    fn fallback_index(&self) -> usize {
        let mut i = self.cumulative.len() - 1;
        while i > 0 && self.cumulative[i] <= self.cumulative[i - 1] {
            i -= 1;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(2024)
    }

    #[test]
    fn exponential_mean_matches() {
        let mut d = Exponential::new(1.2);
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 0.01,
            "sample mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut d = Exponential::new(0.001);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn normal_moments_match() {
        let mut d = Normal::new(3.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let mut d = Normal::new(5.0, 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid Normal")]
    fn normal_rejects_negative_sigma() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut d = Uniform::new(-2.0, 3.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean() {
        let mut d = Uniform::new(0.0, 10.0);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut r = rng();
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample_index(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        let f1 = counts[1] as f64 / n as f64;
        let f3 = counts[3] as f64 / n as f64;
        assert!((f1 - 0.3).abs() < 0.01, "f1={f1}");
        assert!((f3 - 0.6).abs() < 0.01, "f3={f3}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn discrete_rejects_zero_weights() {
        Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_spare_round_trip_resumes_stream() {
        // Capture at every parity of the Box–Muller pair cache; the
        // restored sampler must produce the identical tail.
        let mut d = Normal::new(1.0, 2.0);
        let mut r = rng();
        for _ in 0..50 {
            let mut d2 = d;
            d2.set_spare(d.spare());
            let mut r2 = Xoshiro256::from_state(r.state());
            for _ in 0..7 {
                assert_eq!(d2.sample(&mut r2), d.sample(&mut r));
            }
        }
    }

    #[test]
    fn discrete_state_round_trip_is_identical() {
        let d = Discrete::new(&[1.0, 3.0, 0.0, 6.0]);
        let d2 = Discrete::from_state(d.state().to_vec());
        assert_eq!(d, d2);
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..10_000 {
            assert_eq!(d.sample_index(&mut ra), d2.sample_index(&mut rb));
        }
    }

    #[test]
    fn rounding_fallback_skips_trailing_zero_weights() {
        // The fallback index must always carry nonzero weight — falling
        // back to `len() - 1` would return a forbidden index whenever the
        // table ends in zero weights.
        assert_eq!(Discrete::new(&[1.0, 0.0]).fallback_index(), 0);
        assert_eq!(Discrete::new(&[0.5, 0.5, 0.0, 0.0]).fallback_index(), 1);
        assert_eq!(Discrete::new(&[1.0, 2.0]).fallback_index(), 1);
        assert_eq!(Discrete::new(&[0.0, 1.0]).fallback_index(), 1);
    }

    #[test]
    fn trailing_zero_weight_is_never_drawn() {
        let d = Discrete::new(&[1.0, 0.0]);
        let mut r = rng();
        for _ in 0..100_000 {
            assert_eq!(d.sample_index(&mut r), 0);
        }
    }
}

//! # bds-des — discrete-event simulation kernel
//!
//! This crate provides the simulation substrate used by the `batchsched`
//! reproduction of *"Scheduling Batch Transactions on Shared-Nothing Parallel
//! Database Machines"* (Ohmori, Kitsuregawa, Tanaka — ICDE 1991):
//!
//! * [`SimTime`] / [`Duration`] — a millisecond-resolution simulated clock
//!   (the paper uses `1 clock = 1 ms`).
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   ordering of simultaneous events, backed by a hierarchical timing
//!   wheel (O(1) amortized push/pop) with a calendar overflow for
//!   far-future events.
//! * [`rng::Xoshiro256`] — a small, fast, fully deterministic PRNG so that
//!   simulation results are reproducible across platforms and do not depend
//!   on third-party RNG version churn.
//! * [`dist`] — the distributions the paper's workloads need (exponential
//!   inter-arrival times, normally distributed I/O-demand estimation error,
//!   uniform file choice).
//! * [`stats`] — online statistics: Welford mean/variance, histograms,
//!   time-weighted averages (for utilization), and batch-means confidence
//!   intervals.
//! * [`fcfs::FcfsServer`] — an analytic single-server FCFS queue used to
//!   model the control node's CPU.
//!
//! Everything here is deliberately free of unsafe code and external runtime
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod fcfs;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use time::{Duration, SimTime};

//! Analytic single-server FCFS queue.
//!
//! The control node (CN) of the machine model is a single CPU that serves
//! concurrency-control work, message handling, transaction startup and
//! commit coordination in first-come-first-served order. Because service
//! demands are known when work arrives, the queue can be simulated
//! analytically: `enqueue(now, demand)` returns the completion instant, and
//! the caller schedules its follow-up event at that time. This avoids
//! per-quantum events for the CN entirely.

use crate::stats::TimeWeighted;
use crate::time::{Duration, SimTime};

/// An analytic single-server FCFS queue with utilization tracking.
#[derive(Debug, Clone)]
pub struct FcfsServer {
    /// Time at which the server next becomes idle.
    free_at: SimTime,
    busy: TimeWeighted,
    total_demand: Duration,
    jobs: u64,
}

impl FcfsServer {
    /// A server idle from `start`.
    pub fn new(start: SimTime) -> Self {
        FcfsServer {
            free_at: start,
            busy: TimeWeighted::new(start, 0.0),
            total_demand: Duration::ZERO,
            jobs: 0,
        }
    }

    /// Enqueue `demand` units of work at time `now`; returns the instant
    /// the work completes. Zero-demand work completes at
    /// `max(now, free_at)` without consuming time.
    ///
    /// # Panics
    /// Panics if `now` runs backwards relative to an earlier enqueue whose
    /// completion is still in the future **and** earlier than `now` — i.e.
    /// callers must enqueue in non-decreasing event order, which the event
    /// queue guarantees.
    pub fn enqueue(&mut self, now: SimTime, demand: Duration) -> SimTime {
        self.enqueue_span(now, demand).1
    }

    /// Like [`FcfsServer::enqueue`], but also returns the instant service
    /// *begins* — the `(begin, end)` span the work occupies the server,
    /// which tracers record as a CPU burst.
    pub fn enqueue_span(&mut self, now: SimTime, demand: Duration) -> (SimTime, SimTime) {
        let begin = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        // Track busy/idle transitions for utilization: the server is busy
        // on [begin, begin+demand]. We only track aggregate busy time.
        let end = begin + demand;
        self.total_demand += demand;
        self.jobs += 1;
        // Update the busy signal: if the server was idle at `now`
        // (free_at <= now), it becomes busy at `now` (equivalently
        // `begin`); it stays busy until `end`.
        if self.free_at <= now {
            self.busy.set(now, 1.0);
        }
        self.free_at = end;
        (begin, end)
    }

    /// Record the passage of idle time: callers may invoke this at the end
    /// of the run so that utilization reflects trailing idleness.
    pub fn settle(&mut self, now: SimTime) {
        if self.free_at <= now && self.busy.current() != 0.0 {
            // The busy period ended at free_at; approximate by marking the
            // transition now (the discrepancy is bounded by one service
            // time and irrelevant for the long runs used here).
            self.busy.set(self.free_at.max(SimTime::ZERO), 0.0);
        }
    }

    /// Stall the server until `until`: no work is served before then,
    /// so queued and newly arriving jobs begin no earlier than `until`.
    /// Models a control-node freeze (fault injection); the stall window
    /// counts as idle time in [`FcfsServer::utilization`] because no
    /// demand is served during it.
    pub fn stall_until(&mut self, until: SimTime) {
        if until > self.free_at {
            self.free_at = until;
        }
    }

    /// The instant the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the server would be idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total service demand accepted so far.
    pub fn total_demand(&self) -> Duration {
        self.total_demand
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// The full server state `(free_at, busy, total_demand, jobs)`, for
    /// checkpointing.
    pub fn state(&self) -> (SimTime, TimeWeighted, Duration, u64) {
        (self.free_at, self.busy, self.total_demand, self.jobs)
    }

    /// Rebuild a server from a state captured by [`FcfsServer::state`].
    pub fn from_state(
        free_at: SimTime,
        busy: TimeWeighted,
        total_demand: Duration,
        jobs: u64,
    ) -> Self {
        FcfsServer {
            free_at,
            busy,
            total_demand,
            jobs,
        }
    }

    /// Utilization over `[start, now]`: busy time divided by elapsed time.
    ///
    /// Computed from total accepted demand (exact for a work-conserving
    /// FCFS server that never idles with queued work).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.since(SimTime::ZERO).as_millis() as f64;
        if elapsed == 0.0 {
            return 0.0;
        }
        // Demand scheduled beyond `now` hasn't been served yet.
        let unserved = self.free_at.saturating_since(now).as_millis() as f64;
        let served = self.total_demand.as_millis() as f64 - unserved;
        (served / elapsed).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        let done = s.enqueue(SimTime::from_millis(100), Duration::from_millis(50));
        assert_eq!(done, SimTime::from_millis(150));
        assert!(s.is_idle_at(SimTime::from_millis(150)));
        assert!(!s.is_idle_at(SimTime::from_millis(149)));
    }

    #[test]
    fn busy_server_queues_fcfs() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        let d1 = s.enqueue(SimTime::from_millis(0), Duration::from_millis(100));
        let d2 = s.enqueue(SimTime::from_millis(10), Duration::from_millis(100));
        let d3 = s.enqueue(SimTime::from_millis(20), Duration::from_millis(100));
        assert_eq!(d1, SimTime::from_millis(100));
        assert_eq!(d2, SimTime::from_millis(200));
        assert_eq!(d3, SimTime::from_millis(300));
        assert_eq!(s.jobs(), 3);
    }

    #[test]
    fn zero_demand_is_free() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, Duration::from_millis(100));
        let done = s.enqueue(SimTime::from_millis(5), Duration::ZERO);
        assert_eq!(done, SimTime::from_millis(100));
    }

    #[test]
    fn utilization_tracks_demand() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, Duration::from_millis(500));
        // At t=1000 the server worked 500ms of the elapsed 1000ms.
        assert!((s.utilization(SimTime::from_millis(1000)) - 0.5).abs() < 1e-9);
        // At t=250 only 250ms of demand has been served.
        assert!((s.utilization(SimTime::from_millis(250)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_excludes_future_backlog() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, Duration::from_millis(10_000));
        let u = s.utilization(SimTime::from_millis(1000));
        assert!((u - 1.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn enqueue_span_reports_begin_and_end() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        let (b1, e1) = s.enqueue_span(SimTime::from_millis(10), Duration::from_millis(20));
        assert_eq!(
            (b1, e1),
            (SimTime::from_millis(10), SimTime::from_millis(30))
        );
        // Queued work begins when the server frees up, not at `now`.
        let (b2, e2) = s.enqueue_span(SimTime::from_millis(15), Duration::from_millis(5));
        assert_eq!(
            (b2, e2),
            (SimTime::from_millis(30), SimTime::from_millis(35))
        );
    }

    #[test]
    fn stall_defers_service() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        s.stall_until(SimTime::from_millis(100));
        let (b, e) = s.enqueue_span(SimTime::from_millis(10), Duration::from_millis(20));
        assert_eq!(
            (b, e),
            (SimTime::from_millis(100), SimTime::from_millis(120))
        );
        // A stall that ends before the current backlog is a no-op.
        s.stall_until(SimTime::from_millis(50));
        assert_eq!(s.free_at(), SimTime::from_millis(120));
    }

    #[test]
    fn total_demand_accumulates() {
        let mut s = FcfsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, Duration::from_millis(7));
        s.enqueue(SimTime::ZERO, Duration::from_millis(2));
        assert_eq!(s.total_demand(), Duration::from_millis(9));
    }
}

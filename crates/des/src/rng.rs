//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible: the paper compares six
//! schedulers on *the same* arrival stream, and the sensitivity experiment
//! (Exp. 3) perturbs declared I/O demands while keeping everything else
//! fixed. We therefore implement a small, well-known generator —
//! **xoshiro256++** seeded through **SplitMix64** — rather than depending on
//! an external RNG crate whose stream could change between versions.
//!
//! [`Xoshiro256::fork`] derives an independent child stream, which the
//! simulator uses to give each stochastic component (arrivals, file choice,
//! estimation error) its own stream so that changing one experiment knob
//! does not perturb the others (common random numbers).

/// SplitMix64 step: used for seeding and stream derivation.
///
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality for
/// simulation purposes. Not cryptographically secure (irrelevant here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed deterministically from a single `u64` via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is invalid; SplitMix64 cannot produce four
        // zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            Xoshiro256 { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256 { s }
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in the half-open interval `(0, 1]` — zero is
    /// excluded and 1.0 included, so `ln()` of the result is always
    /// finite and non-positive (the contract [`crate::dist::Exponential`]
    /// and [`crate::dist::Normal`] rely on).
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n != 0, "next_range: empty range");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index into a slice of length `len`.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_range(len as u64) as usize
    }

    /// Derive an independent child stream. The child is seeded from the
    /// parent's output, so forking N children from a fixed parent yields a
    /// fixed family of streams.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`Xoshiro256::from_state`] resumes the stream exactly where
    /// it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by
    /// [`Xoshiro256::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which is invalid for xoshiro and can
    /// never be captured from a live generator.
    pub fn from_state(s: [u64; 4]) -> Xoshiro256 {
        assert!(s != [0, 0, 0, 0], "xoshiro256 state must be non-zero");
        Xoshiro256 { s }
    }

    /// Choose `k` distinct indices uniformly from `0..n` (Floyd's
    /// algorithm); order of the result is the insertion order.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "choose_distinct: k={k} > n={n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams nearly identical: {same} collisions");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_open_boundaries_are_ln_safe() {
        // Pin the (0, 1] contract at the extreme raw outputs rather than
        // by sampling. next_u64 = rotl(s0 + s3, 23) + s0, so states with
        // s0 = 0 emit rotl(s3, 23) as the next output.
        //
        // Raw output 0 is the smallest next_f64 (0.0) and the largest
        // next_f64_open: exactly 1.0, whose ln() is 0.
        let mut r = Xoshiro256 { s: [0, 1, 2, 0] };
        assert_eq!(r.next_f64_open(), 1.0);
        assert_eq!(1.0_f64.ln(), 0.0);
        // Raw output u64::MAX is the largest next_f64 (1 − 2⁻⁵³) and the
        // smallest next_f64_open: 2⁻⁵³, still strictly positive with a
        // finite ln().
        let mut r = Xoshiro256 {
            s: [0, 1, 2, u64::MAX.rotate_right(23)],
        };
        let smallest = r.next_f64_open();
        assert_eq!(smallest, 1.0 / (1u64 << 53) as f64);
        assert!(smallest > 0.0 && smallest.ln().is_finite());
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn range_is_unbiased_enough() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.next_range(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket {i} count {c} far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_range(0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Xoshiro256::seed_from_u64(5);
        let mut parent2 = Xoshiro256::seed_from_u64(5);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Parent and child streams diverge.
        let mut p = Xoshiro256::seed_from_u64(5);
        let mut c = p.fork();
        let same = (0..100).filter(|_| p.next_u64() == c.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn choose_distinct_yields_distinct_in_range() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            let v = r.choose_distinct(16, 2);
            assert_eq!(v.len(), 2);
            assert_ne!(v[0], v[1]);
            assert!(v.iter().all(|&x| x < 16));
        }
    }

    #[test]
    fn choose_distinct_full_set() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut v = r.choose_distinct(5, 5);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn choose_distinct_covers_all_pairs() {
        // With 16 files and many draws every file should appear.
        let mut r = Xoshiro256::seed_from_u64(13);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            for i in r.choose_distinct(16, 2) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        // Property check over many capture points: restoring the captured
        // state must continue the stream bit-for-bit.
        let mut r = Xoshiro256::seed_from_u64(0xC0FFEE);
        for _ in 0..200 {
            let mut resumed = Xoshiro256::from_state(r.state());
            for _ in 0..16 {
                assert_eq!(resumed.next_u64(), r.next_u64());
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn from_state_rejects_all_zero() {
        Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn splitmix_known_progression() {
        // SplitMix64 from seed 0: first output is a fixed known value.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }
}

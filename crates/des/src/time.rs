//! Simulated time.
//!
//! The paper's simulator advances in integer clocks with `1 clock = 1 ms`.
//! We keep the same resolution: [`SimTime`] is an absolute instant in
//! milliseconds since simulation start, [`Duration`] a span in milliseconds.
//! Both are thin wrappers over `u64` so arithmetic is exact; fractional
//! service demands (e.g. a `0.2`-object write step) are rounded to the
//! nearest millisecond when they are converted to durations, which at
//! `ObjTime = 1000 ms` preserves the paper's resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute simulated instant, in milliseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from a (non-negative) second count.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "Duration::from_secs_f64: invalid seconds {s}"
        );
        Duration((s * 1000.0).round() as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "Duration::from_millis_f64: invalid milliseconds {ms}"
        );
        Duration(ms.round() as u64)
    }

    /// Milliseconds in this span.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiply the span by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }

    /// Divide the span by an integer divisor (rounding down).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn div_int(self, n: u64) -> Duration {
        assert!(n != 0, "Duration::div_int by zero");
        Duration(self.0 / n)
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_secs(3);
        let d = Duration::from_millis(250);
        assert_eq!((t + d).as_millis(), 3250);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn since_computes_span() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(175);
        assert_eq!(b.since(a), Duration::from_millis(75));
        assert_eq!(b.saturating_since(a).as_millis(), 75);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_negative_span() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(175);
        let _ = a.since(b);
    }

    #[test]
    fn from_secs_f64_rounds_to_ms() {
        assert_eq!(Duration::from_secs_f64(0.0005).as_millis(), 1);
        assert_eq!(Duration::from_secs_f64(0.0004).as_millis(), 0);
        assert_eq!(Duration::from_secs_f64(1.2).as_millis(), 1200);
    }

    #[test]
    fn from_millis_f64_rounds() {
        assert_eq!(Duration::from_millis_f64(199.6).as_millis(), 200);
        assert_eq!(Duration::from_millis_f64(0.4).as_millis(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(500);
        let b = Duration::from_millis(300);
        assert_eq!(a + b, Duration::from_millis(800));
        assert_eq!(a - b, Duration::from_millis(200));
        assert_eq!(a.times(3), Duration::from_millis(1500));
        assert_eq!(a.div_int(4), Duration::from_millis(125));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{:?}", Duration::from_millis(42)), "42ms");
    }
}

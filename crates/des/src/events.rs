//! Deterministic future-event list backed by a hierarchical timing wheel.
//!
//! [`EventQueue`] is a priority queue keyed by ([`SimTime`], insertion
//! sequence number). Two events scheduled for the same instant pop in the
//! order they were pushed, which makes whole-simulation runs bit-for-bit
//! reproducible — a property the paper's sensitivity experiments rely on
//! (identical arrival streams across schedulers).
//!
//! # Layout
//!
//! The queue stores pending events in a four-level timing wheel of 256
//! slots per level. Level `L` covers bits `[8·L, 8·L+8)` of the absolute
//! firing time in milliseconds, so the wheel spans the next `2³²` ms
//! (≈ 49.7 simulated days) relative to the clock; events beyond that go
//! to an overflow calendar, a `BTreeMap` of buckets keyed by
//! `at >> 32`. An event whose firing time agrees with the clock on all
//! bits above `8·(L+1)` but differs somewhere in byte `L` lives at level
//! `L`, in slot `(at >> 8·L) & 255`. Push and pop are O(1) amortized;
//! each event cascades down at most `LEVELS` times over its lifetime.
//!
//! # Cascading and same-instant FIFO order
//!
//! The wheel maintains one invariant: *every pending event sits at the
//! level determined by the current clock*. [`EventQueue::pop`] first
//! advances the clock to the earliest pending time `t`, then — top-down —
//! drains the overflow bucket and the one slot per level whose window the
//! clock just entered, re-placing the drained events at their new
//! (strictly lower) levels. Because the clock never passes the minimum
//! pending time, a slot being cascaded is entered exactly once per wheel
//! wrap, *before* any event can be pushed directly into a lower level of
//! that window (a direct push to level `L` requires the clock to already
//! share the window, which begins at the crossing). Slots are appended in
//! push order and drained front-to-back, so every slot's entries are in
//! strictly increasing sequence order at all times — and the level-0 slot
//! for an instant therefore pops in exact insertion order, matching the
//! binary-heap reference model entry for entry (see
//! `tests/prop_event_queue.rs` for the differential check).
//!
//! Occupancy bitmaps (256 bits per level) plus a per-slot minimum make
//! finding the next firing time O(levels) without scanning slot contents,
//! even under `schedule_now` chains with a large far-future slot pending.

use crate::time::{Duration, SimTime};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

/// A scheduled event: the payload plus its firing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

/// Bits of firing time resolved per wheel level.
const BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Slot-index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels.
const LEVELS: usize = 4;
/// Total bits covered by the wheel; times further ahead overflow.
const WHEEL_BITS: u32 = BITS * LEVELS as u32;
/// `u64` words per occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// An overflow bucket: the minimum firing time it holds plus its entries
/// in insertion order.
#[derive(Debug)]
struct Bucket<E> {
    min: u64,
    entries: Vec<Entry<E>>,
}

/// A future-event list with a monotone clock.
///
/// The queue owns the simulation clock: [`EventQueue::pop`] advances the
/// clock to the firing time of the earliest event. Scheduling an event in
/// the past is a logic error and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` wheel slots, flattened (`level * SLOTS + slot`).
    /// Entries within a slot are in insertion order.
    slots: Vec<VecDeque<Entry<E>>>,
    /// One 256-bit occupancy bitmap per level.
    occ: [[u64; OCC_WORDS]; LEVELS],
    /// Minimum firing time per slot (`u64::MAX` when empty); lets the
    /// next-event search avoid scanning slot contents.
    slot_min: Vec<u64>,
    /// Far-future calendar, keyed by `at >> WHEEL_BITS`.
    overflow: BTreeMap<u64, Bucket<E>>,
    /// Cached earliest pending firing time; `None` means "recompute".
    next_cache: Cell<Option<u64>>,
    pending: usize,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [[0; OCC_WORDS]; LEVELS],
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            overflow: BTreeMap::new(),
            next_cache: Cell::new(None),
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time (the firing time of the last popped
    /// event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule_at: scheduling in the past ({:?} < {:?})",
            at,
            self.now
        );
        self.seq += 1;
        self.pending += 1;
        if let Some(next) = self.next_cache.get() {
            if at.0 < next {
                self.next_cache.set(Some(at.0));
            }
        }
        self.place(Entry {
            at: at.0,
            seq: self.seq,
            event,
        });
    }

    /// Consume and return the next insertion sequence number without
    /// scheduling anything. The sharded runner stamps DPN-local lane
    /// events with reserved sequence numbers so they merge back against
    /// wheel-resident events in exact serial `(time, seq)` order.
    pub fn reserve_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Reserve a contiguous block of `n` sequence numbers, returning the
    /// first. Used by the sharded runner's barrier replay: one window's
    /// worth of slice-end successors consumes exactly the block the
    /// serial engine would have, in the same order.
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let first = self.seq + 1;
        self.seq += n;
        first
    }

    /// The current value of the insertion sequence counter (the seq of
    /// the most recently scheduled or reserved event).
    pub fn seq_counter(&self) -> u64 {
        self.seq
    }

    /// Schedule `event` after a delay from the current clock.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (fires after any event
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pop the earliest event and advance the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.pop_keyed().map(|(s, _)| s)
    }

    /// Pop the earliest event, also returning its insertion sequence
    /// number. The seq totally orders events sharing a firing time; the
    /// sharded runner compares it against lane stamps to interleave
    /// wheel-resident and DPN-local events in exact serial order.
    pub fn pop_keyed(&mut self) -> Option<(Scheduled<E>, u64)> {
        let t = self.next_time()?;
        let old = self.now.0;
        debug_assert!(t >= old, "event queue time went backwards");
        self.now = SimTime(t);
        let diff = old ^ t;
        if diff >> WHEEL_BITS != 0 {
            // Entered a new wheel wrap: all wheel levels are empty (any
            // resident entry would predate `t`, the minimum pending
            // time), so redistributing this wrap's calendar bucket
            // repopulates the wheel from scratch.
            if let Some(bucket) = self.overflow.remove(&(t >> WHEEL_BITS)) {
                for e in bucket.entries {
                    self.place(e);
                }
            }
        }
        for level in (1..LEVELS).rev() {
            let shift = BITS * level as u32;
            if diff >> shift != 0 {
                // The clock entered a new level-`level` window; cascade
                // the one slot of that window down. Earlier slots of this
                // level cannot be occupied (their times would be < t).
                let slot = ((t >> shift) & MASK) as usize;
                let idx = level * SLOTS + slot;
                if !self.slots[idx].is_empty() {
                    let drained = std::mem::take(&mut self.slots[idx]);
                    self.occ[level][slot >> 6] &= !(1u64 << (slot & 63));
                    self.slot_min[idx] = u64::MAX;
                    for e in drained {
                        self.place(e);
                    }
                }
            }
        }
        let slot = (t & MASK) as usize;
        let entry = self.slots[slot]
            .pop_front()
            .expect("timing wheel invariant: level-0 slot empty at pop time");
        debug_assert_eq!(entry.at, t, "timing wheel invariant: slot holds wrong time");
        if self.slots[slot].is_empty() {
            self.occ[0][slot >> 6] &= !(1u64 << (slot & 63));
            self.slot_min[slot] = u64::MAX;
            self.next_cache.set(None);
        }
        self.pending -= 1;
        self.popped += 1;
        Some((
            Scheduled {
                at: SimTime(t),
                event: entry.event,
            },
            entry.seq,
        ))
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time().map(SimTime)
    }

    /// Earliest pending firing time, via the cache when warm.
    fn next_time(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        if let Some(t) = self.next_cache.get() {
            return Some(t);
        }
        let mut best = u64::MAX;
        for level in 0..LEVELS {
            // The first occupied slot of a level is its earliest window
            // (slots below the clock's own window are always empty), and
            // `slot_min` gives the earliest time inside it.
            if let Some(slot) = first_set(&self.occ[level]) {
                best = best.min(self.slot_min[level * SLOTS + slot]);
            }
        }
        if let Some(bucket) = self.overflow.values().next() {
            best = best.min(bucket.min);
        }
        debug_assert_ne!(best, u64::MAX, "pending > 0 but no entry found");
        self.next_cache.set(Some(best));
        Some(best)
    }

    /// All pending events in pop order, for checkpointing. The queue is
    /// left untouched.
    ///
    /// Pop order is insertion order within each firing time. The wheel
    /// keeps every pending event at the level determined by the current
    /// clock, and that level is a pure function of `(at, now)` — so all
    /// entries sharing a firing time live in *one* container, in insertion
    /// order, and a stable sort by firing time across containers
    /// reconstructs the global pop order.
    pub fn snapshot_entries(&self) -> Vec<Scheduled<E>>
    where
        E: Clone,
    {
        self.snapshot_entries_seq()
            .into_iter()
            .map(|(_, s)| s)
            .collect()
    }

    /// All pending events with their insertion sequence numbers, in pop
    /// order (sorted by `(at, seq)`). The queue is left untouched. The
    /// sharded runner uses this to split slice-end events into per-DPN
    /// lanes while keeping their exact serial positions.
    pub fn snapshot_entries_seq(&self) -> Vec<(u64, Scheduled<E>)>
    where
        E: Clone,
    {
        let mut out: Vec<(u64, Scheduled<E>)> = Vec::with_capacity(self.pending);
        for slot in &self.slots {
            out.extend(slot.iter().map(|e| {
                (
                    e.seq,
                    Scheduled {
                        at: SimTime(e.at),
                        event: e.event.clone(),
                    },
                )
            }));
        }
        for bucket in self.overflow.values() {
            out.extend(bucket.entries.iter().map(|e| {
                (
                    e.seq,
                    Scheduled {
                        at: SimTime(e.at),
                        event: e.event.clone(),
                    },
                )
            }));
        }
        out.sort_by_key(|(seq, s)| (s.at, *seq));
        debug_assert_eq!(out.len(), self.pending);
        out
    }

    /// Rebuild a queue from a checkpoint: the clock, the pop counter, and
    /// the pending events in pop order (as returned by
    /// [`EventQueue::snapshot_entries`]).
    ///
    /// # Panics
    /// Panics if `entries` is not sorted by firing time or schedules in
    /// the past relative to `now`.
    pub fn from_snapshot(now: SimTime, popped: u64, entries: Vec<Scheduled<E>>) -> Self {
        let mut q = EventQueue::new();
        q.now = now;
        q.popped = popped;
        let mut prev = now;
        for s in entries {
            assert!(
                s.at >= prev,
                "EventQueue::from_snapshot: entries out of order ({:?} < {:?})",
                s.at,
                prev
            );
            prev = s.at;
            q.seq += 1;
            q.pending += 1;
            q.place(Entry {
                at: s.at.0,
                seq: q.seq,
                event: s.event,
            });
        }
        q
    }

    /// Rebuild a queue preserving the original insertion sequence
    /// numbers. `entries` must be sorted by `(at, seq)` (pop order) and
    /// `next_seq` must be at least every entry's seq; the rebuilt queue
    /// continues allocating sequence numbers from `next_seq`. The
    /// sharded runner uses this at setup (to lift slice-end events out
    /// of the wheel into lanes) and at teardown (to merge them back), so
    /// a run that was sharded mid-way is indistinguishable from one that
    /// never was.
    ///
    /// # Panics
    /// Panics if `entries` is out of `(at, seq)` order, schedules in the
    /// past relative to `now`, or carries a seq beyond `next_seq`.
    pub fn from_entries_seq(
        now: SimTime,
        popped: u64,
        next_seq: u64,
        entries: Vec<(u64, Scheduled<E>)>,
    ) -> Self {
        let mut q = EventQueue::new();
        q.now = now;
        q.popped = popped;
        let mut prev = (now, 0u64);
        for (seq, s) in entries {
            assert!(
                (s.at, seq) >= prev,
                "EventQueue::from_entries_seq: entries out of order ({:?} < {:?})",
                (s.at, seq),
                prev
            );
            assert!(
                seq <= next_seq,
                "EventQueue::from_entries_seq: seq {seq} beyond counter {next_seq}"
            );
            prev = (s.at, seq);
            q.pending += 1;
            q.place(Entry {
                at: s.at.0,
                seq,
                event: s.event,
            });
        }
        q.seq = next_seq;
        q
    }

    /// Insert an entry at the level determined by the current clock.
    fn place(&mut self, e: Entry<E>) {
        let diff = e.at ^ self.now.0;
        if diff >> WHEEL_BITS != 0 {
            let bucket = self
                .overflow
                .entry(e.at >> WHEEL_BITS)
                .or_insert_with(|| Bucket {
                    min: u64::MAX,
                    entries: Vec::new(),
                });
            bucket.min = bucket.min.min(e.at);
            bucket.entries.push(e);
            return;
        }
        let mut level = 0;
        while diff >> (BITS * (level as u32 + 1)) != 0 {
            level += 1;
        }
        let slot = ((e.at >> (BITS * level as u32)) & MASK) as usize;
        let idx = level * SLOTS + slot;
        self.occ[level][slot >> 6] |= 1u64 << (slot & 63);
        self.slot_min[idx] = self.slot_min[idx].min(e.at);
        self.slots[idx].push_back(e);
    }
}

/// Index of the first set bit in a 256-bit bitmap.
fn first_set(words: &[u64; OCC_WORDS]) -> Option<usize> {
    words
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_millis(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let s = q.pop().unwrap();
        assert_eq!(s.at, SimTime::from_millis(42));
        assert_eq!(q.now(), SimTime::from_millis(42));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_after_and_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_after(Duration::from_millis(5), 2);
        q.schedule_now(3);
        // schedule_now at t=10 fires before the one at t=15.
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.now(), SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "scheduling in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule_at(SimTime::from_millis(7), ());
        q.schedule_at(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn events_cascade_across_level_boundaries() {
        // Times straddling every level boundary of the wheel, plus an
        // overflow bucket beyond 2^32 ms.
        let times: [u64; 8] = [1, 255, 256, 65_535, 65_536, 1 << 24, (1 << 32) - 1, 1 << 32];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        while let Some(s) = q.pop() {
            popped.push((s.at.as_millis(), s.event));
        }
        let expect: Vec<(u64, usize)> = times.iter().copied().zip(0..times.len()).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn fifo_survives_cascade_then_direct_push() {
        // "a" is pushed while t=1000 is still far away (lands in an upper
        // level and cascades down); "b" is pushed for the same instant
        // after the clock has entered its window. Insertion order must
        // survive both routes into the level-0 slot.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1000), "a");
        q.schedule_at(SimTime::from_millis(999), "tick");
        assert_eq!(q.pop().unwrap().event, "tick");
        q.schedule_at(SimTime::from_millis(1000), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        // Mix of same-instant runs, cascade-straddling times, and a
        // far-future overflow entry; snapshot mid-run and check the
        // rebuilt queue pops identically to the original.
        let mut q = EventQueue::new();
        let times: [u64; 12] = [
            5,
            5,
            5,
            255,
            256,
            1000,
            1000,
            65_536,
            (1 << 24) + 3,
            (1 << 33) + 17,
            (1 << 33) + 17,
            7,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        for _ in 0..3 {
            q.pop();
        }
        // Same-instant push after the clock moved: must stay after the
        // earlier same-instant entries in both queues.
        q.schedule_at(SimTime::from_millis(1000), 99usize);
        let mut r = EventQueue::from_snapshot(q.now(), q.events_processed(), q.snapshot_entries());
        assert_eq!(r.now(), q.now());
        assert_eq!(r.len(), q.len());
        assert_eq!(r.events_processed(), q.events_processed());
        loop {
            match (q.pop(), r.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(r.now(), q.now());
    }

    #[test]
    fn pop_keyed_exposes_monotone_seqs_per_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "a");
        q.schedule_at(SimTime::from_millis(5), "b");
        q.schedule_at(SimTime::from_millis(3), "c");
        let (s1, q1) = q.pop_keyed().unwrap();
        assert_eq!(s1.event, "c");
        assert_eq!(q1, 3);
        let (s2, q2) = q.pop_keyed().unwrap();
        let (s3, q3) = q.pop_keyed().unwrap();
        assert_eq!((s2.event, s3.event), ("a", "b"));
        assert!(q2 < q3, "same-instant seqs must order FIFO");
    }

    #[test]
    fn reserved_seqs_interleave_with_scheduled_ones() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), 0);
        let r = q.reserve_seq();
        q.schedule_at(SimTime::from_millis(5), 1);
        let (_, s0) = q.pop_keyed().unwrap();
        let (_, s1) = q.pop_keyed().unwrap();
        assert!(s0 < r && r < s1);
        let first = q.reserve_seqs(3);
        assert_eq!(first, r + 2);
        assert_eq!(q.seq_counter(), r + 4);
    }

    #[test]
    fn from_entries_seq_round_trips_with_lane_merge() {
        // Simulate the sharded teardown: pull two same-instant entries
        // out, hold them aside with their seqs, splice them back via
        // from_entries_seq, and check pop order matches the original.
        let mut q = EventQueue::new();
        for (t, i) in [(10u64, 0), (10, 1), (10, 2), (20, 3)] {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let all = q.snapshot_entries_seq();
        let (held, kept): (Vec<_>, Vec<_>) = all.into_iter().partition(|(_, s)| s.event % 2 == 1);
        let rebuilt =
            EventQueue::from_entries_seq(q.now(), q.events_processed(), q.seq_counter(), kept);
        // Merge the held entries back, as teardown does.
        let mut merged = rebuilt.snapshot_entries_seq();
        merged.extend(held);
        merged.sort_by_key(|(seq, s)| (s.at, *seq));
        let mut full = EventQueue::from_entries_seq(
            rebuilt.now(),
            rebuilt.events_processed(),
            rebuilt.seq_counter(),
            merged,
        );
        let order: Vec<_> = std::iter::from_fn(|| full.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn far_future_overflow_keeps_order() {
        let mut q = EventQueue::new();
        let far = (1u64 << 33) + 17;
        for i in 0..10 {
            q.schedule_at(SimTime::from_millis(far), i);
        }
        q.schedule_at(SimTime::from_millis(3), 99);
        assert_eq!(q.pop().unwrap().event, 99);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert_eq!(q.now(), SimTime::from_millis(far));
    }
}

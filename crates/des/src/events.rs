//! Deterministic future-event list.
//!
//! [`EventQueue`] is a priority queue keyed by ([`SimTime`], insertion
//! sequence number). Two events scheduled for the same instant pop in the
//! order they were pushed, which makes whole-simulation runs bit-for-bit
//! reproducible — a property the paper's sensitivity experiments rely on
//! (identical arrival streams across schedulers).

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event: the payload plus its firing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event list with a monotone clock.
///
/// The queue owns the simulation clock: [`EventQueue::pop`] advances the
/// clock to the firing time of the earliest event. Scheduling an event in
/// the past is a logic error and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time (the firing time of the last popped
    /// event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule_at: scheduling in the past ({:?} < {:?})",
            at,
            self.now
        );
        let key = Reverse((at, self.seq));
        self.seq += 1;
        self.heap.push(Entry { key, event });
    }

    /// Schedule `event` after a delay from the current clock.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (fires after any event
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pop the earliest event and advance the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|entry| {
            let (at, _) = entry.key.0;
            debug_assert!(at >= self.now, "event queue time went backwards");
            self.now = at;
            self.popped += 1;
            Scheduled {
                at,
                event: entry.event,
            }
        })
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_millis(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let s = q.pop().unwrap();
        assert_eq!(s.at, SimTime::from_millis(42));
        assert_eq!(q.now(), SimTime::from_millis(42));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_after_and_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_after(Duration::from_millis(5), 2);
        q.schedule_now(3);
        // schedule_now at t=10 fires before the one at t=15.
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.now(), SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "scheduling in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule_at(SimTime::from_millis(7), ());
        q.schedule_at(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

//! Differential property tests for the timing-wheel [`EventQueue`]: the
//! wheel is run against a reference binary-heap model (ordered by
//! `(SimTime, insertion sequence)` — the queue's documented contract) on
//! randomized interleavings of pushes and pops, asserting identical pop
//! order event by event. Schedules include bursts of same-instant
//! events, `schedule_now` chains from inside the pop loop (the pattern
//! event handlers produce), and far-future outliers that exercise the
//! overflow calendar. Clock monotonicity is a *checked* invariant here,
//! not a `debug_assert!`, so release builds of the suite still verify it.

use bds_des::rng::Xoshiro256;
use bds_des::time::SimTime;
use bds_des::EventQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: a plain binary heap over `(at, seq)` with the same
/// monotone-clock semantics as `EventQueue`.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
    now: u64,
}

impl HeapModel {
    fn schedule_at(&mut self, at: u64) -> u64 {
        assert!(at >= self.now, "model: scheduling in the past");
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        id
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((at, id))| {
            self.now = at;
            (at, id)
        })
    }
}

fn rng(case: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(0x77EE1 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A delay drawn from a mixture that stresses every wheel level: zero
/// (same instant), each power-of-256 window, and far-future outliers
/// beyond the 2³² ms wheel span (the overflow calendar).
fn mixed_delay(r: &mut Xoshiro256) -> u64 {
    match r.next_range(100) {
        0..=24 => 0,
        25..=54 => r.next_range(256),
        55..=74 => r.next_range(1 << 16),
        75..=89 => r.next_range(1 << 26),
        90..=96 => r.next_range(1 << 32),
        _ => (1 << 32) + r.next_range(1 << 33),
    }
}

/// Drive the wheel and the model through one identical operation
/// sequence, checking pop-for-pop agreement and clock monotonicity.
fn run_case(case: u64, ops: usize) {
    let mut r = rng(case);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut model = HeapModel::default();
    let mut last_popped = 0u64;

    let push = |wheel: &mut EventQueue<u64>, model: &mut HeapModel, at: u64| {
        let id = model.schedule_at(at);
        wheel.schedule_at(SimTime::from_millis(at), id);
    };
    let pop = |wheel: &mut EventQueue<u64>, model: &mut HeapModel, last: &mut u64| {
        let got = wheel.pop().map(|s| (s.at.as_millis(), s.event));
        let want = model.pop();
        assert_eq!(got, want, "case {case}: wheel diverged from heap model");
        if let Some((at, _)) = got {
            // Checked invariant: the clock never runs backwards.
            assert!(
                at >= *last,
                "case {case}: clock went backwards ({at} < {last})"
            );
            assert_eq!(wheel.now(), SimTime::from_millis(at));
            *last = at;
        }
        got
    };

    for _ in 0..ops {
        assert_eq!(wheel.len(), model.heap.len());
        assert_eq!(wheel.peek_time().map(SimTime::as_millis), {
            model.heap.peek().map(|Reverse((at, _))| *at)
        });
        match r.next_range(10) {
            // Push a single event at a mixed-mixture delay.
            0..=3 => {
                let at = wheel.now().as_millis() + mixed_delay(&mut r);
                push(&mut wheel, &mut model, at);
            }
            // Burst of same-instant events.
            4 => {
                let at = wheel.now().as_millis() + mixed_delay(&mut r);
                for _ in 0..r.next_range(20) {
                    push(&mut wheel, &mut model, at);
                }
            }
            // schedule_now chain: pop, then re-arm events at the very
            // instant the clock just reached.
            5..=6 => {
                if pop(&mut wheel, &mut model, &mut last_popped).is_some() {
                    for _ in 0..r.next_range(4) {
                        let at = wheel.now().as_millis();
                        push(&mut wheel, &mut model, at);
                    }
                }
            }
            // Plain pop.
            _ => {
                pop(&mut wheel, &mut model, &mut last_popped);
            }
        }
    }
    // Drain: both queues must agree to the last event.
    while pop(&mut wheel, &mut model, &mut last_popped).is_some() {}
    assert!(wheel.is_empty());
    assert_eq!(wheel.len(), 0);
}

#[test]
fn wheel_matches_heap_model_on_random_schedules() {
    for case in 0..64 {
        run_case(case, 2_000);
    }
}

#[test]
fn wheel_matches_heap_model_on_long_runs() {
    // Fewer cases, deeper interleavings: enough pops to wrap level-0
    // many times and cross several level-1/2 windows in one run.
    for case in 1000..1008 {
        run_case(case, 40_000);
    }
}

#[test]
fn wheel_survives_pathological_schedule_now_storm() {
    // A large far-future slot stays pending while the near present is a
    // dense schedule_now chain — the next-event search must not rescan
    // the big slot per pop (this is a correctness test; the bench in
    // crates/bench/benches/event_queue.rs covers the cost).
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut model = HeapModel::default();
    let far = (1u64 << 31) + 12_345;
    for _ in 0..50_000 {
        let id = model.schedule_at(far);
        wheel.schedule_at(SimTime::from_millis(far), id);
    }
    let mut last = 0u64;
    for step in 0..20_000u64 {
        let at = step / 4; // four same-instant events per millisecond
        let id = model.schedule_at(at);
        wheel.schedule_at(SimTime::from_millis(at), id);
        if step % 2 == 0 {
            let got = wheel.pop().map(|s| (s.at.as_millis(), s.event));
            assert_eq!(got, model.pop());
            let (at, _) = got.unwrap();
            assert!(at >= last, "clock went backwards");
            last = at;
        }
    }
    let mut remaining = 0u64;
    loop {
        let got = wheel.pop().map(|s| (s.at.as_millis(), s.event));
        assert_eq!(got, model.pop());
        match got {
            Some((at, _)) => {
                assert!(at >= last, "clock went backwards");
                last = at;
                remaining += 1;
            }
            None => break,
        }
    }
    assert_eq!(last, far);
    assert!(remaining > 50_000);
}

//! Property tests for the DES kernel: event ordering, FCFS server
//! conservation, and statistics correctness against naive references.

use bds_des::dist::{Exponential, Normal, Sample};
use bds_des::fcfs::FcfsServer;
use bds_des::rng::Xoshiro256;
use bds_des::stats::Welford;
use bds_des::time::{Duration, SimTime};
use bds_des::EventQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn events_pop_sorted_and_stable(times in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some(s) = q.pop() {
            popped.push(s.event);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Sorted by time; ties in insertion order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn fcfs_is_conserving_and_ordered(jobs in prop::collection::vec((0u64..5000, 0u64..300), 1..100)) {
        // Jobs arrive at non-decreasing times with random demands.
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut server = FcfsServer::new(SimTime::ZERO);
        let mut prev_done = SimTime::ZERO;
        let mut total = 0u64;
        for &(t, d) in &arrivals {
            let done = server.enqueue(SimTime::from_millis(t), Duration::from_millis(d));
            total += d;
            // FCFS: completions are ordered.
            prop_assert!(done >= prev_done);
            // Completion at least arrival + own demand.
            prop_assert!(done >= SimTime::from_millis(t + d));
            prev_done = done;
        }
        // Conservation: last completion ≤ last arrival + total demand.
        let last_arrival = arrivals.last().unwrap().0;
        prop_assert!(prev_done <= SimTime::from_millis(last_arrival + total));
        prop_assert_eq!(server.total_demand(), Duration::from_millis(total));
    }

    #[test]
    fn welford_matches_naive(data in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if data.len() > 1 {
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((w.variance() - var).abs() < 1e-6 * (1.0 + var));
        }
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), Some(min));
        prop_assert_eq!(w.max(), Some(max));
    }

    #[test]
    fn welford_merge_any_split(data in prop::collection::vec(-50f64..50.0, 2..100), split in 0usize..100) {
        let k = split % data.len();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..k] { a.push(x); }
        for &x in &data[k..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn exponential_is_memoryless_enough(seed in any::<u64>()) {
        // Smoke: mean of 5k samples within 10% of 1/rate.
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Exponential::new(2.0);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_sigma_scales(seed in any::<u64>(), sigma in 0.1f64..5.0) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Normal::new(0.0, sigma);
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        prop_assert!((var.sqrt() - sigma).abs() < sigma * 0.12,
            "sd {} vs sigma {sigma}", var.sqrt());
    }

    #[test]
    fn rng_range_never_exceeds(seed in any::<u64>(), n in 1u64..1000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..1000 {
            prop_assert!(rng.next_range(n) < n);
        }
    }
}

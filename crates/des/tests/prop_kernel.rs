//! Randomized property tests for the DES kernel: event ordering, FCFS
//! server conservation, and statistics correctness against naive
//! references. Inputs are generated from a fixed-seed [`Xoshiro256`]
//! stream, so the suite is deterministic and dependency-free.

use bds_des::dist::{Exponential, Normal, Sample};
use bds_des::fcfs::FcfsServer;
use bds_des::rng::Xoshiro256;
use bds_des::stats::Welford;
use bds_des::time::{Duration, SimTime};
use bds_des::EventQueue;

const CASES: u64 = 256;

fn rng(case: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(0xDE5_7E57 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[test]
fn events_pop_sorted_and_stable() {
    for case in 0..CASES {
        let mut r = rng(case);
        let n = r.next_index(300);
        let times: Vec<u64> = (0..n).map(|_| r.next_range(10_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some(s) = q.pop() {
            popped.push(s.event);
        }
        assert_eq!(popped.len(), times.len());
        // Sorted by time; ties in insertion order.
        for w in popped.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}

#[test]
fn fcfs_is_conserving_and_ordered() {
    for case in 0..CASES {
        let mut r = rng(case ^ 0xFCF5);
        let n = 1 + r.next_index(99);
        // Jobs arrive at non-decreasing times with random demands.
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|_| (r.next_range(5000), r.next_range(300)))
            .collect();
        arrivals.sort_by_key(|&(t, _)| t);
        let mut server = FcfsServer::new(SimTime::ZERO);
        let mut prev_done = SimTime::ZERO;
        let mut total = 0u64;
        for &(t, d) in &arrivals {
            let done = server.enqueue(SimTime::from_millis(t), Duration::from_millis(d));
            total += d;
            // FCFS: completions are ordered.
            assert!(done >= prev_done);
            // Completion at least arrival + own demand.
            assert!(done >= SimTime::from_millis(t + d));
            prev_done = done;
        }
        // Conservation: last completion ≤ last arrival + total demand.
        let last_arrival = arrivals.last().unwrap().0;
        assert!(prev_done <= SimTime::from_millis(last_arrival + total));
        assert_eq!(server.total_demand(), Duration::from_millis(total));
    }
}

#[test]
fn welford_matches_naive() {
    for case in 0..CASES {
        let mut r = rng(case ^ 0x3E1F);
        let n = 1 + r.next_index(199);
        let data: Vec<f64> = (0..n).map(|_| (r.next_f64() - 0.5) * 2e3).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let nf = data.len() as f64;
        let mean = data.iter().sum::<f64>() / nf;
        assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if data.len() > 1 {
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nf - 1.0);
            assert!((w.variance() - var).abs() < 1e-6 * (1.0 + var));
        }
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(w.min(), Some(min));
        assert_eq!(w.max(), Some(max));
    }
}

#[test]
fn welford_merge_any_split() {
    for case in 0..CASES {
        let mut r = rng(case ^ 0x6E26);
        let n = 2 + r.next_index(98);
        let data: Vec<f64> = (0..n).map(|_| (r.next_f64() - 0.5) * 100.0).collect();
        let k = r.next_index(data.len());
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..k] {
            a.push(x);
        }
        for &x in &data[k..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }
}

#[test]
fn exponential_is_memoryless_enough() {
    for case in 0..24 {
        // Smoke: mean of 5k samples within 10% of 1/rate.
        let mut rng = rng(case ^ 0xE4B0);
        let mut d = Exponential::new(2.0);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}

#[test]
fn normal_sigma_scales() {
    for case in 0..24 {
        let mut rng = rng(case ^ 0x4012);
        let sigma = 0.1 + rng.next_f64() * 4.9;
        let mut d = Normal::new(0.0, sigma);
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(
            (var.sqrt() - sigma).abs() < sigma * 0.12,
            "sd {} vs sigma {sigma}",
            var.sqrt()
        );
    }
}

#[test]
fn rng_range_never_exceeds() {
    for case in 0..CASES {
        let mut rng = rng(case ^ 0x7A26E);
        let n = 1 + rng.next_range(999);
        for _ in 0..1000 {
            assert!(rng.next_range(n) < n);
        }
    }
}

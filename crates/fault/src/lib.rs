//! # bds-fault — deterministic fault plans for the simulator
//!
//! The paper's machine is failure-free; production shared-nothing
//! deployments are not. This crate describes *what goes wrong and when*
//! as plain data — a [`FaultPlan`] — so that the simulator can inject
//! failures as ordinary DES events and every run remains a pure function
//! of its configuration:
//!
//! * **DPN crashes** ([`CrashFault`]): a data-processing node goes down
//!   at a given instant and recovers after a fixed downtime. In-flight
//!   cohorts on the node are lost; their parent transactions abort and
//!   retry under the plan's [`RetryPolicy`].
//! * **CN stalls** ([`CnStall`]): the control node freezes for a window;
//!   lock/commit messages queue but are not served until it ends.
//! * **Link faults** ([`LinkFaults`]): every cohort-dispatch message is
//!   delayed by a fixed interconnect latency and, with a configured
//!   probability, lost and redelivered after a timeout.
//!
//! Crash schedules can be given explicitly (`crash=node@at×down`) or
//! generated from per-node MTBF/MTTR exponentials seeded by the plan —
//! [`FaultPlan::timeline`] expands either form into one sorted list of
//! [`FaultAction`]s. An empty plan ([`FaultPlan::is_empty`]) injects
//! nothing and must leave the simulator byte-identical to a build
//! without this crate.
//!
//! Plans parse from compact command-line strings via
//! [`FaultPlan::parse`]; see that method for the grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bds_des::rng::Xoshiro256;
use bds_des::time::{Duration, SimTime};

/// One explicit DPN crash: `node` goes down at `at` and recovers at
/// `at + down_for`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Index of the crashed data-processing node.
    pub node: u32,
    /// Instant the node fails.
    pub at: SimTime,
    /// Downtime; the node recovers at `at + down_for`.
    pub down_for: Duration,
}

/// One control-node stall window: the CN serves nothing during
/// `[at, at + stall_for)`; queued work resumes afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnStall {
    /// Instant the stall begins.
    pub at: SimTime,
    /// Length of the stall window.
    pub stall_for: Duration,
}

/// Interconnect fault model applied to every cohort-dispatch message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    /// Fixed one-way delivery delay added to each dispatch message.
    pub delay: Duration,
    /// Per-message loss probability in permille (0..=1000). A lost
    /// message is redelivered once after [`LinkFaults::redeliver_after`].
    pub loss_per_mille: u32,
    /// Redelivery timeout for lost messages.
    pub redeliver_after: Duration,
}

impl LinkFaults {
    /// True when the link is perfect (no delay, no loss).
    pub fn is_perfect(&self) -> bool {
        self.delay.is_zero() && self.loss_per_mille == 0
    }
}

/// Exponential-backoff retry policy for fault-killed transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Cap on the backed-off delay.
    pub max_delay: Duration,
    /// Maximum fault kills a transaction survives; on the
    /// `max_attempts`-th kill it is dropped permanently.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: Duration::from_secs(2),
            max_delay: Duration::from_secs(60),
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// Backed-off delay before retry number `kill` (1-based: the first
    /// fault kill waits `base_delay`, the second `2 × base_delay`, …),
    /// capped at `max_delay`.
    pub fn delay_for(&self, kill: u32) -> Duration {
        let shift = kill.saturating_sub(1).min(32);
        let ms = self
            .base_delay
            .as_millis()
            .saturating_mul(1u64 << shift)
            .min(self.max_delay.as_millis());
        Duration::from_millis(ms)
    }
}

/// What to do with work destined for a crashed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Route the cohort to the next surviving node (replica read): the
    /// machine keeps full throughput minus the lost CPU.
    #[default]
    Reroute,
    /// Hold the cohort at the CN until the node recovers: the
    /// transaction stays live but makes no progress on that fragment.
    Hold,
}

/// A deterministic, seed-driven fault plan.
///
/// Embedded in the simulator configuration; equality and `Debug` are
/// part of the simulation cache key, so two configs with the same plan
/// memoize to the same point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault-side random draw (MTBF schedule expansion
    /// and link-loss coin flips). Independent of the workload seed.
    pub seed: u64,
    /// Explicit DPN crashes.
    pub crashes: Vec<CrashFault>,
    /// Explicit CN stall windows.
    pub cn_stalls: Vec<CnStall>,
    /// Interconnect fault model.
    pub link: LinkFaults,
    /// Retry policy for fault-killed transactions.
    pub retry: RetryPolicy,
    /// Placement policy while a node is down.
    pub degraded: DegradedMode,
    /// When set, generate additional crashes per node from an
    /// exponential(MTBF) / exponential(MTTR) renewal process seeded by
    /// [`FaultPlan::seed`].
    pub mtbf: Option<Duration>,
    /// Mean time to repair for MTBF-generated crashes.
    pub mttr: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            crashes: Vec::new(),
            cn_stalls: Vec::new(),
            link: LinkFaults::default(),
            retry: RetryPolicy::default(),
            degraded: DegradedMode::default(),
            mtbf: None,
            mttr: Duration::from_secs(30),
        }
    }
}

/// One entry of the expanded fault timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Node `node` fails now.
    CrashNode {
        /// Index of the failing node.
        node: u32,
    },
    /// Node `node` comes back now.
    RecoverNode {
        /// Index of the recovering node.
        node: u32,
    },
    /// The control node stalls for `dur` starting now.
    StallCn {
        /// Length of the stall window.
        dur: Duration,
    },
}

impl FaultPlan {
    /// An empty plan: no crashes, no stalls, a perfect link. The
    /// simulator must behave byte-identically to a fault-free build.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that crashes nodes from a per-node exponential(MTBF)
    /// renewal process with exponential(MTTR) repairs, seeded by `seed`.
    pub fn from_mtbf(mtbf: Duration, mttr: Duration, seed: u64) -> Self {
        FaultPlan {
            seed,
            mtbf: Some(mtbf),
            mttr,
            ..FaultPlan::default()
        }
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.cn_stalls.is_empty()
            && self.link.is_perfect()
            && self.mtbf.is_none()
    }

    /// Seed for the simulator's fault-side RNG stream, mixed with the
    /// workload seed so distinct workloads see distinct loss patterns
    /// while the stream stays a pure function of the configuration.
    pub fn rng_seed(&self, workload_seed: u64) -> u64 {
        self.seed ^ workload_seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15
    }

    /// Expand the plan into a time-sorted list of fault actions for a
    /// machine with `num_nodes` DPNs over `horizon`.
    ///
    /// Explicit crashes with `node >= num_nodes` are dropped; crashes at
    /// or past the horizon are dropped (their recoveries would never be
    /// observed). Per node, overlapping explicit crashes are merged by
    /// ignoring any crash that begins while the node is already down,
    /// so the timeline alternates crash/recover strictly per node. The
    /// expansion is a pure function of the plan, `num_nodes` and
    /// `horizon`.
    pub fn timeline(&self, num_nodes: u32, horizon: Duration) -> Vec<(SimTime, FaultAction)> {
        let mut crashes: Vec<CrashFault> = self
            .crashes
            .iter()
            .copied()
            .filter(|c| c.node < num_nodes && c.at.as_millis() < horizon.as_millis())
            .collect();
        if let Some(mtbf) = self.mtbf {
            let mtbf_ms = mtbf.as_millis().max(1) as f64;
            let mttr_ms = self.mttr.as_millis().max(1) as f64;
            let mut master = Xoshiro256::seed_from_u64(self.seed ^ 0x4D54_4246); // "MTBF"
            for node in 0..num_nodes {
                let mut rng = master.fork();
                let mut t = 0.0f64;
                loop {
                    t += exp_draw(&mut rng, mtbf_ms);
                    if t >= horizon.as_millis() as f64 {
                        break;
                    }
                    let down = exp_draw(&mut rng, mttr_ms).max(1.0);
                    crashes.push(CrashFault {
                        node,
                        at: SimTime::from_millis(t as u64),
                        down_for: Duration::from_millis(down as u64),
                    });
                    // Next failure clock starts after repair.
                    t += down;
                }
            }
        }
        // Per node, drop crashes that begin while the node is already
        // down so the action stream alternates strictly.
        crashes.sort_by_key(|c| (c.node, c.at));
        let mut actions: Vec<(SimTime, FaultAction)> = Vec::new();
        let mut down_until: Vec<SimTime> = vec![SimTime::ZERO; num_nodes as usize];
        for c in &crashes {
            let up_at = down_until[c.node as usize];
            if c.at < up_at {
                continue;
            }
            // A recover and a crash of the same node at the same instant
            // would be ambiguous; delay the new crash by one tick.
            let at = if c.at == up_at && up_at != SimTime::ZERO {
                SimTime::from_millis(c.at.as_millis() + 1)
            } else {
                c.at
            };
            let recover = at + c.down_for.max(Duration::from_millis(1));
            actions.push((at, FaultAction::CrashNode { node: c.node }));
            actions.push((recover, FaultAction::RecoverNode { node: c.node }));
            down_until[c.node as usize] = recover;
        }
        for s in &self.cn_stalls {
            if s.at.as_millis() < horizon.as_millis() && !s.stall_for.is_zero() {
                actions.push((s.at, FaultAction::StallCn { dur: s.stall_for }));
            }
        }
        // Stable: simultaneous actions keep per-node alternation order.
        actions.sort_by_key(|(at, _)| *at);
        actions
    }

    /// Parse a plan from a compact directive string.
    ///
    /// Comma-separated directives (seconds unless stated otherwise):
    ///
    /// ```text
    /// crash=NODE@AT x DOWN    crash=2@100x30   (node 2 down 100s..130s)
    /// stall=AT x DUR          stall=50x5       (CN frozen 50s..55s)
    /// delay=MS                fixed link delay in milliseconds
    /// loss=PER_MILLE          per-message loss chance, 0..=1000
    /// redeliver=MS            redelivery timeout for lost messages
    /// retry=BASE:MAX:N        backoff base ms, cap ms, max attempts
    /// mode=reroute|hold       degraded placement policy
    /// mtbf=SECS  mttr=SECS    generated per-node crash schedule
    /// seed=N                  fault-side RNG seed
    /// ```
    ///
    /// The empty string parses to [`FaultPlan::none`].
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault directive '{part}' is not key=value"))?;
            match key {
                "crash" => {
                    let (node, rest) = val
                        .split_once('@')
                        .ok_or_else(|| format!("crash '{val}': expected NODE@ATxDOWN"))?;
                    let (at, down) = rest
                        .split_once('x')
                        .ok_or_else(|| format!("crash '{val}': expected NODE@ATxDOWN"))?;
                    plan.crashes.push(CrashFault {
                        node: parse_num(node, "crash node")?,
                        at: SimTime::from_secs(parse_num(at, "crash at")?),
                        down_for: Duration::from_secs(parse_num(down, "crash down")?),
                    });
                }
                "stall" => {
                    let (at, dur) = val
                        .split_once('x')
                        .ok_or_else(|| format!("stall '{val}': expected ATxDUR"))?;
                    plan.cn_stalls.push(CnStall {
                        at: SimTime::from_secs(parse_num(at, "stall at")?),
                        stall_for: Duration::from_secs(parse_num(dur, "stall dur")?),
                    });
                }
                "delay" => plan.link.delay = Duration::from_millis(parse_num(val, "delay")?),
                "loss" => {
                    let pm: u64 = parse_num(val, "loss")?;
                    if pm > 1000 {
                        return Err(format!("loss '{val}': permille must be 0..=1000"));
                    }
                    plan.link.loss_per_mille = pm as u32;
                }
                "redeliver" => {
                    plan.link.redeliver_after = Duration::from_millis(parse_num(val, "redeliver")?)
                }
                "retry" => {
                    let mut it = val.splitn(3, ':');
                    let (Some(b), Some(m), Some(n)) = (it.next(), it.next(), it.next()) else {
                        return Err(format!("retry '{val}': expected BASE:MAX:N"));
                    };
                    plan.retry = RetryPolicy {
                        base_delay: Duration::from_millis(parse_num(b, "retry base")?),
                        max_delay: Duration::from_millis(parse_num(m, "retry max")?),
                        max_attempts: parse_num::<u32>(n, "retry attempts")?,
                    };
                    if plan.retry.max_attempts == 0 {
                        return Err("retry: max attempts must be >= 1".into());
                    }
                }
                "mode" => {
                    plan.degraded = match val {
                        "reroute" => DegradedMode::Reroute,
                        "hold" => DegradedMode::Hold,
                        other => return Err(format!("mode '{other}': expected reroute|hold")),
                    }
                }
                "mtbf" => plan.mtbf = Some(Duration::from_secs(parse_num(val, "mtbf")?)),
                "mttr" => plan.mttr = Duration::from_secs(parse_num(val, "mttr")?),
                "seed" => plan.seed = parse_num(val, "seed")?,
                other => return Err(format!("unknown fault directive '{other}'")),
            }
        }
        if plan.link.loss_per_mille > 0 && plan.link.redeliver_after.is_zero() {
            // A lost message with no redelivery would wedge its
            // transaction forever; default to a 1 s timeout.
            plan.link.redeliver_after = Duration::from_secs(1);
        }
        Ok(plan)
    }
}

/// An exponential draw with the given mean, in the same unit as `mean`.
fn exp_draw(rng: &mut Xoshiro256, mean: f64) -> f64 {
    -mean * rng.next_f64_open().ln()
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.trim()
        .parse::<T>()
        .map_err(|_| format!("{what}: could not parse '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::none()
            .timeline(8, Duration::from_secs(1000))
            .is_empty());
    }

    #[test]
    fn parse_directives() {
        let p = FaultPlan::parse(
            "crash=2@100x30,stall=50x5,delay=3,loss=25,redeliver=500,retry=1000:30000:4,mode=hold,seed=9",
        )
        .unwrap();
        assert_eq!(
            p.crashes,
            vec![CrashFault {
                node: 2,
                at: SimTime::from_secs(100),
                down_for: Duration::from_secs(30),
            }]
        );
        assert_eq!(
            p.cn_stalls,
            vec![CnStall {
                at: SimTime::from_secs(50),
                stall_for: Duration::from_secs(5),
            }]
        );
        assert_eq!(p.link.delay, Duration::from_millis(3));
        assert_eq!(p.link.loss_per_mille, 25);
        assert_eq!(p.link.redeliver_after, Duration::from_millis(500));
        assert_eq!(p.retry.max_attempts, 4);
        assert_eq!(p.degraded, DegradedMode::Hold);
        assert_eq!(p.seed, 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("crash=2").is_err());
        assert!(FaultPlan::parse("loss=1001").is_err());
        assert!(FaultPlan::parse("retry=1:2:0").is_err());
        assert!(FaultPlan::parse("mode=sideways").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
    }

    #[test]
    fn loss_without_redeliver_gets_default_timeout() {
        let p = FaultPlan::parse("loss=10").unwrap();
        assert_eq!(p.link.redeliver_after, Duration::from_secs(1));
    }

    #[test]
    fn timeline_alternates_per_node_and_is_deterministic() {
        let plan = FaultPlan::from_mtbf(Duration::from_secs(120), Duration::from_secs(20), 42);
        let horizon = Duration::from_secs(2_000);
        let a = plan.timeline(8, horizon);
        let b = plan.timeline(8, horizon);
        assert_eq!(a, b, "timeline expansion must be deterministic");
        assert!(!a.is_empty(), "2000s at MTBF 120s should produce crashes");
        // Strict crash/recover alternation per node.
        let mut down = [false; 8];
        let mut prev = SimTime::ZERO;
        for (at, act) in &a {
            assert!(*at >= prev, "timeline must be sorted");
            prev = *at;
            match act {
                FaultAction::CrashNode { node } => {
                    assert!(!down[*node as usize], "crash while already down");
                    down[*node as usize] = true;
                }
                FaultAction::RecoverNode { node } => {
                    assert!(down[*node as usize], "recover while up");
                    down[*node as usize] = false;
                }
                FaultAction::StallCn { .. } => {}
            }
        }
    }

    #[test]
    fn overlapping_explicit_crashes_are_merged() {
        let mut plan = FaultPlan::none();
        plan.crashes = vec![
            CrashFault {
                node: 0,
                at: SimTime::from_secs(10),
                down_for: Duration::from_secs(100),
            },
            CrashFault {
                node: 0,
                at: SimTime::from_secs(50),
                down_for: Duration::from_secs(10),
            },
        ];
        let t = plan.timeline(4, Duration::from_secs(1_000));
        assert_eq!(t.len(), 2, "second crash begins while down; dropped");
    }

    #[test]
    fn out_of_range_crashes_are_dropped() {
        let mut plan = FaultPlan::none();
        plan.crashes = vec![
            CrashFault {
                node: 99,
                at: SimTime::from_secs(10),
                down_for: Duration::from_secs(5),
            },
            CrashFault {
                node: 0,
                at: SimTime::from_secs(5_000),
                down_for: Duration::from_secs(5),
            },
        ];
        assert!(plan.timeline(8, Duration::from_secs(1_000)).is_empty());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            base_delay: Duration::from_millis(1000),
            max_delay: Duration::from_millis(5000),
            max_attempts: 8,
        };
        assert_eq!(r.delay_for(1), Duration::from_millis(1000));
        assert_eq!(r.delay_for(2), Duration::from_millis(2000));
        assert_eq!(r.delay_for(3), Duration::from_millis(4000));
        assert_eq!(r.delay_for(4), Duration::from_millis(5000));
        assert_eq!(r.delay_for(63), Duration::from_millis(5000));
    }

    #[test]
    fn rng_seed_mixes_both_seeds() {
        let p = FaultPlan::none();
        assert_ne!(p.rng_seed(1), p.rng_seed(2));
        let mut q = FaultPlan::none();
        q.seed = 7;
        assert_ne!(p.rng_seed(1), q.rng_seed(1));
    }
}

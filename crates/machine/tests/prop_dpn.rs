//! Randomized tests for the DPN round-robin server: work conservation,
//! completion-time bounds and busy-time accounting. Inputs come from a
//! fixed-seed [`Xoshiro256`] stream, so the suite is deterministic.

use bds_des::rng::Xoshiro256;
use bds_des::time::{Duration, SimTime};
use bds_machine::{Cohort, CohortId, Dpn};

const CASES: u64 = 256;

/// Drive the DPN to idleness, returning (id, finish time) pairs.
fn drain(dpn: &mut Dpn, mut next: Option<SimTime>) -> Vec<(CohortId, SimTime)> {
    let mut out = Vec::new();
    let mut guard = 0u32;
    while let Some(t) = next {
        let o = dpn.on_slice_end(t);
        if let Some(id) = o.finished {
            out.push((id, t));
        }
        next = o.next_slice_end;
        guard += 1;
        assert!(guard < 1_000_000, "slice loop did not terminate");
    }
    out
}

/// Random (remaining ms, quantum ms) pairs.
fn gen_cohorts(case: u64, salt: u64) -> Vec<(u64, u64)> {
    let mut r = Xoshiro256::seed_from_u64(0xD62 ^ salt ^ case.wrapping_mul(0x9E37_79B9));
    let n = 1 + r.next_index(23);
    (0..n)
        .map(|_| (1 + r.next_range(7999), 100 + r.next_range(1900)))
        .collect()
}

fn load(dpn: &mut Dpn, cohorts: &[(u64, u64)]) -> Option<SimTime> {
    let mut first = None;
    for (i, &(rem, q)) in cohorts.iter().enumerate() {
        let r = dpn.add_cohort(
            SimTime::ZERO,
            Cohort {
                id: CohortId(i as u64),
                remaining: Duration::from_millis(rem),
                quantum: Duration::from_millis(q),
            },
        );
        if let Some(t) = r {
            first = Some(t);
        }
    }
    first
}

#[test]
fn work_conservation() {
    for case in 0..CASES {
        let cohorts = gen_cohorts(case, 1);
        let mut dpn = Dpn::new();
        let first = load(&mut dpn, &cohorts);
        let finished = drain(&mut dpn, first);
        assert_eq!(finished.len(), cohorts.len());
        // Work conservation: the node never idles while work remains, so
        // the last completion equals total work.
        let total: u64 = cohorts.iter().map(|&(rem, _)| rem).sum();
        let makespan = finished.last().unwrap().1;
        assert_eq!(makespan, SimTime::from_millis(total));
        assert_eq!(dpn.busy_time(), Duration::from_millis(total));
        assert!(dpn.is_idle());
        assert_eq!(dpn.completed(), cohorts.len() as u64);
    }
}

#[test]
fn completion_bounds() {
    for case in 0..CASES {
        // Every cohort finishes no earlier than its own work and no later
        // than the total work.
        let cohorts = gen_cohorts(case, 2);
        let mut dpn = Dpn::new();
        let first = load(&mut dpn, &cohorts);
        let total: u64 = cohorts.iter().map(|&(rem, _)| rem).sum();
        for (id, at) in drain(&mut dpn, first) {
            let own = cohorts[id.0 as usize].0;
            assert!(at >= SimTime::from_millis(own));
            assert!(at <= SimTime::from_millis(total));
        }
    }
}

#[test]
fn equal_cohorts_finish_in_arrival_order() {
    for case in 0..CASES {
        let mut r = Xoshiro256::seed_from_u64(0xF1F0 ^ case);
        let n = 2 + r.next_index(10);
        let work = 500 + r.next_range(3500);
        let cohorts: Vec<(u64, u64)> = (0..n).map(|_| (work, 250)).collect();
        let mut dpn = Dpn::new();
        let first = load(&mut dpn, &cohorts);
        let finished = drain(&mut dpn, first);
        let order: Vec<u64> = finished.iter().map(|(c, _)| c.0).collect();
        let expect: Vec<u64> = (0..n as u64).collect();
        assert_eq!(order, expect, "equal work must preserve FIFO fairness");
    }
}

#[test]
fn utilization_is_one_while_busy() {
    for case in 0..CASES {
        let cohorts = gen_cohorts(case, 3);
        let mut dpn = Dpn::new();
        let first = load(&mut dpn, &cohorts);
        let finished = drain(&mut dpn, first);
        let makespan = finished.last().unwrap().1;
        let u = dpn.utilization(makespan);
        assert!((u - 1.0).abs() < 1e-9, "utilization {u} during saturation");
    }
}

//! Property tests for the DPN round-robin server: work conservation,
//! completion-time bounds and busy-time accounting.

use bds_des::time::{Duration, SimTime};
use bds_machine::{Cohort, CohortId, Dpn};
use proptest::prelude::*;

/// Drive the DPN to idleness, returning (id, finish time) pairs.
fn drain(dpn: &mut Dpn, mut next: Option<SimTime>) -> Vec<(CohortId, SimTime)> {
    let mut out = Vec::new();
    let mut guard = 0u32;
    while let Some(t) = next {
        let o = dpn.on_slice_end(t);
        if let Some(id) = o.finished {
            out.push((id, t));
        }
        next = o.next_slice_end;
        guard += 1;
        assert!(guard < 1_000_000, "slice loop did not terminate");
    }
    out
}

fn arb_cohorts() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (remaining ms, quantum ms)
    prop::collection::vec((1u64..8000, 100u64..2000), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn work_conservation(cohorts in arb_cohorts()) {
        let mut dpn = Dpn::new();
        let mut first = None;
        for (i, &(rem, q)) in cohorts.iter().enumerate() {
            let r = dpn.add_cohort(SimTime::ZERO, Cohort {
                id: CohortId(i as u64),
                remaining: Duration::from_millis(rem),
                quantum: Duration::from_millis(q),
            });
            if let Some(t) = r { first = Some(t); }
        }
        let finished = drain(&mut dpn, first);
        prop_assert_eq!(finished.len(), cohorts.len());
        // Work conservation: the node never idles while work remains, so
        // the last completion equals total work.
        let total: u64 = cohorts.iter().map(|&(rem, _)| rem).sum();
        let makespan = finished.last().unwrap().1;
        prop_assert_eq!(makespan, SimTime::from_millis(total));
        prop_assert_eq!(dpn.busy_time(), Duration::from_millis(total));
        prop_assert!(dpn.is_idle());
        prop_assert_eq!(dpn.completed(), cohorts.len() as u64);
    }

    #[test]
    fn completion_bounds(cohorts in arb_cohorts()) {
        // Every cohort finishes no earlier than its own work and no later
        // than the total work.
        let mut dpn = Dpn::new();
        let mut first = None;
        for (i, &(rem, q)) in cohorts.iter().enumerate() {
            let r = dpn.add_cohort(SimTime::ZERO, Cohort {
                id: CohortId(i as u64),
                remaining: Duration::from_millis(rem),
                quantum: Duration::from_millis(q),
            });
            if let Some(t) = r { first = Some(t); }
        }
        let total: u64 = cohorts.iter().map(|&(rem, _)| rem).sum();
        for (id, at) in drain(&mut dpn, first) {
            let own = cohorts[id.0 as usize].0;
            prop_assert!(at >= SimTime::from_millis(own));
            prop_assert!(at <= SimTime::from_millis(total));
        }
    }

    #[test]
    fn equal_cohorts_finish_in_arrival_order(n in 2usize..12, work in 500u64..4000) {
        let mut dpn = Dpn::new();
        let mut first = None;
        for i in 0..n {
            let r = dpn.add_cohort(SimTime::ZERO, Cohort {
                id: CohortId(i as u64),
                remaining: Duration::from_millis(work),
                quantum: Duration::from_millis(250),
            });
            if let Some(t) = r { first = Some(t); }
        }
        let finished = drain(&mut dpn, first);
        let order: Vec<u64> = finished.iter().map(|(c, _)| c.0).collect();
        let expect: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(order, expect, "equal work must preserve FIFO fairness");
    }

    #[test]
    fn utilization_is_one_while_busy(cohorts in arb_cohorts()) {
        let mut dpn = Dpn::new();
        let mut first = None;
        for (i, &(rem, q)) in cohorts.iter().enumerate() {
            let r = dpn.add_cohort(SimTime::ZERO, Cohort {
                id: CohortId(i as u64),
                remaining: Duration::from_millis(rem),
                quantum: Duration::from_millis(q),
            });
            if let Some(t) = r { first = Some(t); }
        }
        let finished = drain(&mut dpn, first);
        let makespan = finished.last().unwrap().1;
        let u = dpn.utilization(makespan);
        prop_assert!((u - 1.0).abs() < 1e-9, "utilization {u} during saturation");
    }
}

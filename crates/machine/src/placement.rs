//! Data placement: home nodes and declustering.
//!
//! The paper's §4.1: a file `fileID` lives at home node
//! `fileID mod NumNodes`; with degree of declustering `DD` it is split
//! into `DD` partitions placed on the consecutive nodes
//! `home, home+1, …, home+DD−1 (mod NumNodes)`.

use bds_workload::FileId;
use std::fmt;

/// Identifier of a data-processing node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// The machine's data placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    num_nodes: u32,
    dd: u32,
}

impl Placement {
    /// A placement over `num_nodes` nodes with uniform declustering
    /// degree `dd`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ dd ≤ num_nodes`.
    pub fn new(num_nodes: u32, dd: u32) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(
            (1..=num_nodes).contains(&dd),
            "DD must be in 1..={num_nodes}, got {dd}"
        );
        Placement { num_nodes, dd }
    }

    /// Number of data-processing nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Degree of declustering.
    pub fn dd(&self) -> u32 {
        self.dd
    }

    /// The home node of a file: `fileID mod NumNodes`.
    pub fn home(&self, file: FileId) -> NodeId {
        NodeId(file.0 % self.num_nodes)
    }

    /// The nodes holding the file's partitions, starting at the home
    /// node: `home, home+1, …, home+DD−1 (mod NumNodes)`.
    pub fn nodes(&self, file: FileId) -> Vec<NodeId> {
        let home = self.home(file).0;
        (0..self.dd)
            .map(|i| NodeId((home + i) % self.num_nodes))
            .collect()
    }

    /// Objects scanned per cohort for a step of total cost `objects`:
    /// the scan is split evenly over the `DD` partitions.
    pub fn cohort_objects(&self, objects: f64) -> f64 {
        objects / self.dd as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn home_is_mod_num_nodes() {
        let p = Placement::new(8, 1);
        assert_eq!(p.home(f(0)), NodeId(0));
        assert_eq!(p.home(f(7)), NodeId(7));
        assert_eq!(p.home(f(8)), NodeId(0));
        assert_eq!(p.home(f(19)), NodeId(3));
    }

    #[test]
    fn dd1_uses_home_only() {
        let p = Placement::new(8, 1);
        assert_eq!(p.nodes(f(5)), vec![NodeId(5)]);
    }

    #[test]
    fn dd4_wraps_around() {
        let p = Placement::new(8, 4);
        assert_eq!(
            p.nodes(f(6)),
            vec![NodeId(6), NodeId(7), NodeId(0), NodeId(1)]
        );
    }

    #[test]
    fn dd8_covers_all_nodes() {
        let p = Placement::new(8, 8);
        let mut nodes = p.nodes(f(3));
        nodes.sort();
        assert_eq!(nodes, (0..8).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn cohort_objects_split_evenly() {
        let p = Placement::new(8, 4);
        assert!((p.cohort_objects(5.0) - 1.25).abs() < 1e-12);
        let p1 = Placement::new(8, 1);
        assert_eq!(p1.cohort_objects(5.0), 5.0);
    }

    #[test]
    fn load_is_balanced_across_homes() {
        // Files 0..16 over 8 nodes: each node is home to exactly 2 files.
        let p = Placement::new(8, 1);
        let mut counts = [0u32; 8];
        for i in 0..16 {
            counts[p.home(f(i)).0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    #[should_panic(expected = "DD must be in")]
    fn dd_larger_than_nodes_panics() {
        Placement::new(8, 9);
    }

    #[test]
    #[should_panic(expected = "DD must be in")]
    fn dd_zero_panics() {
        Placement::new(8, 0);
    }
}
